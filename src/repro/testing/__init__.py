"""Deterministic differential simulation testing.

The paper's headline claims are *equivalences* — delta virtualization is
guest-invisible versus full-copy cloning, content sharing is invisible
versus its ablation, containment bottles the epidemic without changing
what the attacker sees. This package generalizes the repo's hand-written
A/B tests into a fuzzing harness that hunts for divergences across the
whole configuration space:

* :mod:`repro.testing.scenario` — :class:`Scenario`, a serializable,
  bit-identically-replayable description of one randomized run, and
  :class:`ScenarioGenerator`, which synthesizes them from a root seed.
* :mod:`repro.testing.worlds` — build and run one scenario through a
  configured *world* (clone mode x containment x sharing, or the
  stateless-responder baseline), producing a plain-data
  :class:`WorldObservation`.
* :mod:`repro.testing.oracles` — pluggable invariants checked over the
  observations: conservation ledgers, equivalences, containment safety,
  clock monotonicity, and metric/trace self-consistency.
* :mod:`repro.testing.differential` — the runner that executes a
  scenario through the whole world matrix and applies every registered
  oracle.
* :mod:`repro.testing.shrink` — when an oracle fails, greedily minimize
  the scenario while re-verifying the failure, and emit a JSON repro
  plus a ready-to-paste pytest case.

Entry point: ``potemkin conform`` (see :mod:`repro.cli`).
"""

from repro.testing.differential import (
    ConformanceReport,
    DifferentialRunner,
    ScenarioVerdict,
    run_conformance,
)
from repro.testing.oracles import Oracle, OracleRegistry, Violation, default_registry
from repro.testing.scenario import Scenario, ScenarioGenerator, WormWave
from repro.testing.shrink import ShrinkResult, shrink_scenario
from repro.testing.worlds import WorldObservation, WorldSpec, run_world, world_matrix

__all__ = [
    "ConformanceReport",
    "DifferentialRunner",
    "Oracle",
    "OracleRegistry",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioVerdict",
    "ShrinkResult",
    "Violation",
    "WorldObservation",
    "WorldSpec",
    "WormWave",
    "default_registry",
    "run_conformance",
    "run_world",
    "shrink_scenario",
    "world_matrix",
]
