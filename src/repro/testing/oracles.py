"""Pluggable invariant oracles over differential-world observations.

Each oracle inspects the :class:`~repro.testing.worlds.WorldObservation`
map produced by one scenario's run through the world matrix and returns
:class:`Violation` records (empty list = invariant holds). Oracles never
raise on a violated invariant — a raise is an oracle bug, a returned
violation is a simulator bug — and they only read plain observation
data, so a violation can be serialized straight into a repro artifact.

Adding an oracle: subclass :class:`Oracle`, give it a unique ``name``,
implement ``check``, and register it (see ``default_registry`` and
``docs/TESTING.md``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Sequence

from repro.net.addr import IPAddress, Prefix
from repro.testing.scenario import Scenario
from repro.testing.worlds import WorldObservation
from repro.workloads.trace import TraceRecord

__all__ = [
    "Oracle",
    "OracleRegistry",
    "Violation",
    "default_registry",
]


@dataclass(frozen=True)
class Violation:
    """One invariant breach, attributable to a world (or cross-world)."""

    oracle: str
    world: str  # "" for cross-world violations
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "oracle": self.oracle,
            "world": self.world,
            "message": self.message,
            "details": self.details,
        }

    def __str__(self) -> str:
        where = f" [{self.world}]" if self.world else ""
        return f"{self.oracle}{where}: {self.message}"


class Oracle:
    """Base class for invariants. ``name`` must be unique per registry."""

    name = "oracle"

    def check(
        self,
        scenario: Scenario,
        observations: Dict[str, WorldObservation],
        trace: Sequence[TraceRecord],
    ) -> List[Violation]:
        raise NotImplementedError

    # Convenience for subclasses.
    def violation(self, world: str, message: str, **details: Any) -> Violation:
        return Violation(self.name, world, message, details)


def _farm_worlds(
    observations: Dict[str, WorldObservation]
) -> Iterator[WorldObservation]:
    for obs in observations.values():
        if obs.kind == "farm":
            yield obs


class PacketConservationOracle(Oracle):
    """Every inbound packet is delivered, refused, dropped-with-cause,
    or still pending — the gateway ledger balances in every world."""

    name = "packet-conservation"

    def check(self, scenario, observations, trace):
        violations = []
        for obs in _farm_worlds(observations):
            if obs.leaked != 0:
                violations.append(
                    self.violation(
                        obs.world,
                        f"packet ledger leaked {obs.leaked} packets",
                        packets_in=obs.packets_in,
                        delivered=obs.delivered,
                        refused=obs.refused,
                        dropped_by_cause=obs.dropped_by_cause,
                        still_pending=obs.still_pending,
                    )
                )
        return violations


class FrameLedgerOracle(Oracle):
    """Per-host memory frame accounting (used/free/shared refcounts)
    reconciles after the run."""

    name = "frame-ledger"

    def check(self, scenario, observations, trace):
        return [
            self.violation(obs.world, f"frame invariant violated: {obs.frame_error}")
            for obs in _farm_worlds(observations)
            if obs.frame_error is not None
        ]


class ContainmentSafetyOracle(Oracle):
    """Under any non-open policy, nothing honeypot-initiated escapes:
    the initiated-external counter stays zero and every packet that
    reached the external sink is a direct reply to an inbound trace
    packet (src/dst exactly swapped)."""

    name = "containment-safety"

    def check(self, scenario, observations, trace):
        violations = []
        trace_pairs = {(str(r.src), str(r.dst)) for r in trace}
        for obs in _farm_worlds(observations):
            if obs.containment == "open":
                continue
            # Adversary agents inject through the same front door the
            # trace uses; their probes are legitimate inbound traffic.
            inbound_pairs = trace_pairs | {
                tuple(pair) for pair in obs.adversary_injected_pairs
            }
            initiated = obs.counters.get("gateway.initiated_external_out", 0)
            if initiated != 0:
                violations.append(
                    self.violation(
                        obs.world,
                        f"{initiated} honeypot-initiated packets escaped under "
                        f"containment={obs.containment!r}",
                        initiated_external_out=initiated,
                    )
                )
            escapes = [
                key
                for key in obs.external_packets
                # A legitimate reply runs dst->src of some inbound packet.
                if (key[1], key[0]) not in inbound_pairs
            ]
            if escapes:
                violations.append(
                    self.violation(
                        obs.world,
                        f"{len(escapes)} external packets are not replies to "
                        "any inbound trace packet",
                        examples=[list(key) for key in escapes[:5]],
                    )
                )
        return violations


def _digest_diff(
    a: WorldObservation, b: WorldObservation
) -> Dict[str, Any]:
    """Compact description of how two guest-visible digests differ."""
    pkt_a, pkt_b = Counter(a.external_packets), Counter(b.external_packets)
    inf_a, inf_b = Counter(a.infections), Counter(b.infections)
    only_a = list((pkt_a - pkt_b).elements())
    only_b = list((pkt_b - pkt_a).elements())
    inf_only_a = list((inf_a - inf_b).elements())
    inf_only_b = list((inf_b - inf_a).elements())
    return {
        "external_only_in_" + a.world: [list(k) for k in only_a[:5]],
        "external_only_in_" + b.world: [list(k) for k in only_b[:5]],
        "external_delta": (len(only_a), len(only_b)),
        "infections_only_in_" + a.world: [list(k) for k in inf_only_a[:5]],
        "infections_only_in_" + b.world: [list(k) for k in inf_only_b[:5]],
        "infection_counts": (len(a.infections), len(b.infections)),
    }


class CloneEquivalenceOracle(Oracle):
    """Delta (flash-clone) virtualization is guest-invisible: the
    timing-free digest (external packet multiset + infection multiset)
    matches full-copy cloning on the same trace.

    Only claimed when the scenario is equivalence-eligible (roomy
    memory, no churn/faults/warm pool) and containment is feedback-free
    (drop-all / allow-dns): reflection feeds clone latency back into the
    in-farm epidemic, so timing differences legitimately change *which*
    in-farm infections occur.
    """

    name = "clone-equivalence"

    def check(self, scenario, observations, trace):
        if not scenario.equivalence_eligible:
            return []
        if scenario.containment not in ("drop-all", "allow-dns"):
            return []
        delta = observations.get("delta")
        fullcopy = observations.get("fullcopy")
        if delta is None or fullcopy is None:
            return []
        if delta.digest() == fullcopy.digest():
            return []
        return [
            self.violation(
                "",
                "delta and full-copy worlds diverged in guest-visible digest",
                **_digest_diff(delta, fullcopy),
            )
        ]


class SharingEquivalenceOracle(Oracle):
    """Content-based page sharing is an invisible ablation: with roomy
    memory (no pressure feedback) the sharing-flipped world matches the
    primary world *exactly* — counters, infections, and external
    packets, timing included.

    Fault events are excluded: placement selects hosts by free memory,
    sharing changes free memory, and a host crash turns that otherwise
    invisible placement difference into different VM casualties.
    """

    name = "sharing-equivalence"

    def check(self, scenario, observations, trace):
        if scenario.memory_profile != "roomy" or scenario.fault_events:
            return []
        delta = observations.get("delta")
        flipped = observations.get("sharing-flip")
        if delta is None or flipped is None:
            return []
        violations = []
        if delta.counters != flipped.counters:
            diff = {
                key: (delta.counters.get(key, 0), flipped.counters.get(key, 0))
                for key in set(delta.counters) | set(flipped.counters)
                if delta.counters.get(key, 0) != flipped.counters.get(key, 0)
            }
            violations.append(
                self.violation(
                    "",
                    "sharing flip changed metric counters under roomy memory",
                    counter_diff={k: list(v) for k, v in sorted(diff.items())},
                )
            )
        if delta.digest() != flipped.digest():
            violations.append(
                self.violation(
                    "",
                    "sharing flip changed the guest-visible digest",
                    **_digest_diff(delta, flipped),
                )
            )
        return violations


class LadderEquivalenceOracle(Oracle):
    """The fidelity ladder is guest-invisible: a promoted flow's replies
    (and the farm's captured infections) match the clone-always world on
    the same trace — the emulator tier answers byte-identically, and
    every would-infect packet promotes before the emulator can touch it.

    Gated like clone-equivalence, but tighter: only drop-all containment.
    Reflection feeds emulated stand-ins and clone timing back into the
    in-farm epidemic, and the ladder legitimately changes *when* clones
    happen — under drop-all none of that timing is guest-visible.
    """

    name = "ladder-equivalence"

    def check(self, scenario, observations, trace):
        if not scenario.equivalence_eligible:
            return []
        if scenario.containment != "drop-all":
            return []
        ladder = observations.get("ladder")
        delta = observations.get("delta")
        if ladder is None or delta is None:
            return []
        if ladder.digest() == delta.digest():
            return []
        return [
            self.violation(
                "",
                "ladder and clone-always worlds diverged in guest-visible "
                "digest",
                emulated=ladder.emulated,
                promotions=ladder.counters.get("ladder.promotions", 0),
                **_digest_diff(ladder, delta),
            )
        ]


class ClockMonotoneOracle(Oracle):
    """The simulation clock never runs backwards and always reaches the
    requested end time; recorded series and flight-recorder events are
    time-ordered within [0, end]."""

    name = "monotonic-clock"

    def check(self, scenario, observations, trace):
        violations = []
        for obs in _farm_worlds(observations):
            if obs.sim_now != obs.end_time:
                violations.append(
                    self.violation(
                        obs.world,
                        f"sim clock stopped at {obs.sim_now}, expected "
                        f"{obs.end_time}",
                    )
                )
            times = obs.series_times
            if any(b < a for a, b in zip(times, times[1:])):
                violations.append(
                    self.violation(obs.world, "live-VM series times went backwards")
                )
            if times and (times[0] < 0.0 or times[-1] > obs.end_time):
                violations.append(
                    self.violation(
                        obs.world,
                        f"series times outside [0, {obs.end_time}]: "
                        f"first={times[0]}, last={times[-1]}",
                    )
                )
            if not obs.event_times_monotone:
                violations.append(
                    self.violation(
                        obs.world, "flight-recorder event times went backwards"
                    )
                )
        return violations


class TraceConsistencyOracle(Oracle):
    """Flight-recorder event tallies agree with the metric counters they
    shadow (spawns, retirements, dispatch verdicts). Skipped when the
    recorder evicted events — tallies would under-count."""

    name = "trace-consistency"

    def check(self, scenario, observations, trace):
        violations = []
        for obs in _farm_worlds(observations):
            if obs.recorder_evicted:
                continue
            verdicts = obs.dispatch_verdicts
            pairs = [
                (
                    "dispatch delivered+flushed",
                    verdicts.get("delivered", 0) + verdicts.get("flushed", 0),
                    "gateway.delivered",
                ),
                ("dispatch stray", verdicts.get("stray", 0), "gateway.stray"),
                (
                    "dispatch emulated",
                    verdicts.get("emulated", 0),
                    "gateway.emulated",
                ),
                (
                    "dispatch ttl_expired",
                    verdicts.get("ttl_expired", 0),
                    "gateway.ttl_expired",
                ),
                (
                    "farm/vm_spawned events",
                    obs.event_counts.get(("farm", "vm_spawned"), 0),
                    "farm.vms_spawned",
                ),
                (
                    "farm/vm_retired events",
                    obs.event_counts.get(("farm", "vm_retired"), 0),
                    "farm.vms_reclaimed",
                ),
            ]
            for label, observed, counter in pairs:
                expected = obs.counters.get(counter, 0)
                if observed != expected:
                    violations.append(
                        self.violation(
                            obs.world,
                            f"{label} = {observed} but counter {counter} = "
                            f"{expected}",
                        )
                    )
        return violations


class ResponderFidelityOracle(Oracle):
    """The stateless-responder baseline sees every in-prefix trace
    packet, never captures anything, and upper-bounds the farm's
    generation-0 infections with its would-have-infected tally."""

    name = "responder-fidelity"

    def check(self, scenario, observations, trace):
        responder = observations.get("responder")
        if responder is None:
            return []
        violations = []
        prefix = Prefix.parse(scenario.prefix)
        covered = sum(1 for r in trace if prefix.contains(IPAddress.parse(r.dst)))
        if responder.packets_seen != covered:
            violations.append(
                self.violation(
                    responder.world,
                    f"responder saw {responder.packets_seen} packets, trace "
                    f"carries {covered} in-prefix packets",
                )
            )
        if responder.replies_sent > responder.packets_seen:
            violations.append(
                self.violation(
                    responder.world,
                    f"responder sent {responder.replies_sent} replies for only "
                    f"{responder.packets_seen} packets",
                )
            )
        delta = observations.get("delta")
        if delta is not None:
            # The responder replays only the shared trace, so infections
            # sourced by adversary agents fall outside its bound.
            gen0 = (
                sum(1 for __, __, gen in delta.infections if gen == 0)
                - delta.adversary_gen0_infections
            )
            if gen0 > responder.would_have_infected:
                violations.append(
                    self.violation(
                        "",
                        f"farm captured {gen0} generation-0 infections but the "
                        f"responder only counted "
                        f"{responder.would_have_infected} exploit attempts",
                    )
                )
        return violations


class FingerprintBlindnessOracle(Oracle):
    """Adversary agents behave sanely in every farm world: each reaches
    a deterministic terminal verdict, a scanner that aborted during
    recon committed no malware (so it cannot have been captured), and
    flipping the deception defense never costs the farm its safety
    invariants (the flip world's packet ledger still balances).

    Deliberately *not* asserted: zero identity/timing tells under
    deception — a small target sample can legitimately draw one
    personality for every probed address."""

    name = "fingerprint-blindness"

    def check(self, scenario, observations, trace):
        violations = []
        for obs in _farm_worlds(observations):
            for report in obs.adversary_reports:
                if report["verdict"] is None:
                    violations.append(
                        self.violation(
                            obs.world,
                            f"adversary {report['name']} never reached a "
                            "terminal verdict",
                            report=report,
                        )
                    )
                if (
                    report["kind"] == "fingerprint"
                    and report["abort_stage"] == "recon"
                    and report["captures"]
                ):
                    violations.append(
                        self.violation(
                            obs.world,
                            f"scanner {report['name']} aborted at recon yet "
                            f"was captured {len(report['captures'])} times",
                            report=report,
                        )
                    )
        flip = observations.get("deception-flip")
        if flip is not None and flip.leaked != 0:
            violations.append(
                self.violation(
                    flip.world,
                    f"deception flip leaked {flip.leaked} packets from the "
                    "conservation ledger",
                    packets_in=flip.packets_in,
                    delivered=flip.delivered,
                    still_pending=flip.still_pending,
                )
            )
        return violations


class CampaignLedgerOracle(Oracle):
    """Botnet campaigns cannot smuggle C2 traffic past containment: in
    any adversary-bearing farm world under a non-open policy, no packet
    whose payload marks it as C2 (check-in beacon or staged payload
    reply) reaches the external sink, and the world's packet ledger
    still balances."""

    name = "campaign-ledger"

    _C2_MARKERS = ("cnc:", "stage:")

    def check(self, scenario, observations, trace):
        violations = []
        for obs in _farm_worlds(observations):
            if not obs.adversary_reports:
                continue
            if obs.leaked != 0:
                violations.append(
                    self.violation(
                        obs.world,
                        f"adversary world leaked {obs.leaked} packets from "
                        "the conservation ledger",
                    )
                )
            if obs.containment == "open":
                continue
            c2_escapes = [
                key for key in obs.external_packets
                if key[6].startswith(self._C2_MARKERS)
            ]
            if c2_escapes:
                violations.append(
                    self.violation(
                        obs.world,
                        f"{len(c2_escapes)} C2 packets escaped under "
                        f"containment={obs.containment!r}",
                        examples=[list(key) for key in c2_escapes[:5]],
                    )
                )
        return violations


class OracleRegistry:
    """Ordered, name-unique collection of oracles."""

    def __init__(self) -> None:
        self._oracles: Dict[str, Oracle] = {}

    def register(self, oracle: Oracle) -> Oracle:
        if oracle.name in self._oracles:
            raise ValueError(f"duplicate oracle name: {oracle.name!r}")
        self._oracles[oracle.name] = oracle
        return oracle

    def unregister(self, name: str) -> None:
        del self._oracles[name]

    def names(self) -> List[str]:
        return list(self._oracles)

    def __iter__(self) -> Iterator[Oracle]:
        return iter(self._oracles.values())

    def __len__(self) -> int:
        return len(self._oracles)

    def check_all(
        self,
        scenario: Scenario,
        observations: Dict[str, WorldObservation],
        trace: Sequence[TraceRecord],
    ) -> List[Violation]:
        violations: List[Violation] = []
        for oracle in self:
            violations.extend(oracle.check(scenario, observations, trace))
        return violations


def default_registry() -> OracleRegistry:
    """The standard invariant suite, in check order."""
    registry = OracleRegistry()
    registry.register(PacketConservationOracle())
    registry.register(FrameLedgerOracle())
    registry.register(ContainmentSafetyOracle())
    registry.register(CloneEquivalenceOracle())
    registry.register(SharingEquivalenceOracle())
    registry.register(LadderEquivalenceOracle())
    registry.register(ClockMonotoneOracle())
    registry.register(TraceConsistencyOracle())
    registry.register(ResponderFidelityOracle())
    registry.register(FingerprintBlindnessOracle())
    registry.register(CampaignLedgerOracle())
    return registry
