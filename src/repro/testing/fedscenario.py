"""Serializable federated-run scenarios: both lanes from one JSON blob.

A :class:`FederationScenario` is the federated analogue of
:class:`~repro.testing.scenario.Scenario`: a frozen dataclass of knobs
from which every input to a federated run derives deterministically —
the per-shard farm configs, the epoch protocol constants, the
partitioned telescope workload, and the worm specs. One scenario builds
*both* lanes (:meth:`build_reference` for the in-process golden
federation, :meth:`build_parallel` for the multiprocess runner at any
worker count), which is what the worker-count invariance tests and
``benchmarks/bench_federation.py`` compare bit for bit.

Pinned scenarios live in ``tests/corpus/federation/`` (a subdirectory:
the top-level corpus glob replays plain :class:`Scenario` JSON and
would reject these fields).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import HoneyfarmConfig, LadderConfig
from repro.core.federation import FederatedHoneyfarm
from repro.core.intershard import InterShardConfig
from repro.sim.rand import SeedSequence
from repro.workloads.telescope import PartitionedTelescope, TelescopeConfig
from repro.workloads.worms import KNOWN_WORMS

__all__ = ["FederationScenario"]

#: Worm scan rates are capped inside the farm for the same reason
#: ``testing/worlds.py`` throttles them: epidemic growth must not swamp
#: a small test shard within one epoch.
_DEFAULT_WORM_RATE = 2.0


@dataclass(frozen=True)
class FederationScenario:
    """One federated run, fully specified. See module docstring.

    Attributes
    ----------
    shards / shard_bits:
        ``shards`` consecutive prefixes of size ``/shard_bits`` starting
        at ``10.16.0.0`` — ``shard_bits=16`` reproduces the paper's
        one-/16-per-gateway layout (``10.16.0.0/16``, ``10.17.0.0/16``,
        ...), larger values give the small shards tests want.
    latency / lookahead:
        The :class:`InterShardConfig` fields (``lookahead=None`` uses
        the full latency).
    telescope_rate:
        ``sources_per_second_per_slash16`` for every shard's partition;
        scale it up for small shards (the workload scales with shard
        size).
    worms:
        ``(name, scan_rate)`` pairs registered on every shard; names
        must be in :data:`~repro.workloads.worms.KNOWN_WORMS`.
    """

    seed: int
    shards: int = 2
    shard_bits: int = 24
    duration: float = 15.0
    latency: float = 0.5
    lookahead: Optional[float] = None
    telescope_rate: float = 256.0
    exploit_fraction: float = 0.35
    probes_max: int = 200
    max_packets_per_shard: int = 2000
    containment: str = "reflect"
    ladder: bool = False
    num_hosts: int = 2
    vm_image_mb: int = 8
    worms: Tuple[Tuple[str, float], ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError(f"shards must be positive: {self.shards!r}")
        if not (16 <= self.shard_bits <= 28):
            raise ValueError(f"shard_bits must be in [16, 28]: {self.shard_bits!r}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration!r}")
        if self.telescope_rate <= 0:
            raise ValueError(f"telescope_rate must be positive: {self.telescope_rate!r}")
        if not (0.0 <= self.exploit_fraction <= 1.0):
            raise ValueError(f"exploit_fraction must be in [0, 1]: {self.exploit_fraction!r}")
        if self.max_packets_per_shard <= 0:
            raise ValueError("max_packets_per_shard must be positive")
        if self.num_hosts <= 0 or self.vm_image_mb <= 0:
            raise ValueError("num_hosts and vm_image_mb must be positive")
        object.__setattr__(self, "worms", tuple(
            (str(name), float(rate)) for name, rate in self.worms
        ))
        for worm, __ in self.worms:
            if worm not in KNOWN_WORMS:
                raise ValueError(
                    f"unknown worm {worm!r}; known: {sorted(KNOWN_WORMS)}"
                )
        self.interlink()  # validate latency/lookahead eagerly

    # ------------------------------------------------------------------ #
    # Derived inputs
    # ------------------------------------------------------------------ #

    @property
    def addresses_per_shard(self) -> int:
        return 1 << (32 - self.shard_bits)

    def shard_prefix(self, shard: int) -> str:
        base = (10 << 24) | (16 << 16)
        value = base + shard * self.addresses_per_shard
        if value + self.addresses_per_shard > ((10 << 24) | (256 << 16)):
            raise ValueError(
                f"shard {shard} at /{self.shard_bits} runs past 10.255.255.255"
            )
        return (
            f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}"
            f".{(value >> 8) & 0xFF}.{value & 0xFF}/{self.shard_bits}"
        )

    def shard_prefixes(self) -> Tuple[Tuple[str, ...], ...]:
        return tuple((self.shard_prefix(i),) for i in range(self.shards))

    def shard_configs(self) -> List[HoneyfarmConfig]:
        """One farm config per shard. The per-shard seed derives from
        ``(seed, shard)`` so shard farms are independent streams and any
        process rebuilds the identical config."""
        seeds = SeedSequence(self.seed)
        image = self.vm_image_mb << 20
        configs = []
        for shard in range(self.shards):
            configs.append(HoneyfarmConfig(
                prefixes=(self.shard_prefix(shard),),
                num_hosts=self.num_hosts,
                host_memory_bytes=image * (self.addresses_per_shard + 16),
                max_vms_per_host=max(512, self.addresses_per_shard + 16),
                vm_image_bytes=image,
                idle_timeout_seconds=self.duration * 10.0,
                flow_idle_timeout_seconds=max(self.duration * 10.0, 30.0),
                containment=self.containment,
                clone_jitter=0.0,
                ladder=LadderConfig(enabled=True) if self.ladder else LadderConfig(),
                seed=seeds.spawn(f"shard-farm-{shard}").root_seed,
            ))
        return configs

    def interlink(self) -> InterShardConfig:
        return InterShardConfig(
            latency_seconds=self.latency, epoch_lookahead=self.lookahead
        )

    def telescope(self) -> PartitionedTelescope:
        return PartitionedTelescope(
            shard_prefixes=self.shard_prefixes(),
            duration=self.duration,
            config=TelescopeConfig(
                seed=SeedSequence(self.seed).spawn("fed-telescope").root_seed,
                sources_per_second_per_slash16=self.telescope_rate,
                exploit_source_fraction=self.exploit_fraction,
                probes_max=self.probes_max,
            ),
            max_records_per_shard=self.max_packets_per_shard,
        )

    # ------------------------------------------------------------------ #
    # Lane builders
    # ------------------------------------------------------------------ #

    def build_reference(self, batched: bool = True) -> FederatedHoneyfarm:
        """The in-process golden lane, workload attached, ready to run."""
        federation = FederatedHoneyfarm(
            self.shard_configs(),
            interlink=self.interlink(),
            worms=self.worms,
        )
        federation.attach_telescope(self.telescope(), batched=batched)
        return federation

    def build_parallel(self, workers: int, **kwargs):
        """The multiprocess lane at ``workers`` processes (same inputs)."""
        from repro.core.parallel import ParallelFederation

        return ParallelFederation(
            self.shard_configs(),
            self.interlink(),
            workers,
            telescope=self.telescope(),
            worms=self.worms,
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # Serialization (corpus pinning)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["worms"] = [list(pair) for pair in self.worms]
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FederationScenario":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"federation scenario has unknown fields: {sorted(unknown)}"
            )
        data = dict(data)
        data["worms"] = tuple(
            (pair[0], pair[1]) for pair in data.get("worms", ())
        )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "FederationScenario":
        return cls.from_dict(json.loads(text))

    def with_overrides(self, **kwargs) -> "FederationScenario":
        return replace(self, **kwargs)
