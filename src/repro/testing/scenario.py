"""Randomized, serializable, bit-identically-replayable scenarios.

A :class:`Scenario` is the unit of differential testing: a frozen
dataclass of configuration knobs (address-space size, cluster shape,
memory regime, containment, workload mix, fault events) from which
*everything else is derived deterministically* — the farm config for any
world, the packet trace that drives every world, and the fault plan.
Two processes given the same scenario JSON produce byte-identical runs.

:class:`ScenarioGenerator` synthesizes scenarios from a single root
seed, using the repo's named-stream :class:`~repro.sim.rand.SeedSequence`
so scenario ``i`` is independent of how many scenarios were drawn before
it.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import DeceptionConfig, HoneyfarmConfig, LadderConfig
from repro.faults.plan import FaultPlan, FaultSpec
from repro.net.addr import IPAddress, Prefix
from repro.sim.rand import RandomStream, SeedSequence
from repro.workloads.telescope import TelescopeConfig, TelescopeWorkload
from repro.workloads.trace import TraceRecord
from repro.workloads.worms import KNOWN_WORMS

__all__ = ["AdversarySpec", "WormWave", "Scenario", "ScenarioGenerator"]

#: Adversary agent kinds a scenario may schedule.
ADVERSARY_KINDS = ("fingerprint", "botnet")

#: Containment policies a scenario may select for its primary worlds.
SCENARIO_CONTAINMENTS = ("drop-all", "allow-dns", "reflect", "open")

#: Gap between a worm wave's connection-opening SYN and its exploit
#: payload (mirrors the telescope generator's burst model).
_EXPLOIT_PAYLOAD_DELAY = 0.3


@dataclass(frozen=True)
class WormWave:
    """One externally-driven worm wave: ``sources`` infected Internet
    hosts each scanning the dark space at ``rate`` scans/s over
    ``[start, start + duration)``."""

    worm: str
    start: float
    duration: float
    sources: int = 1
    rate: float = 2.0

    def __post_init__(self) -> None:
        if self.worm not in KNOWN_WORMS:
            raise ValueError(f"unknown worm {self.worm!r}; known: {sorted(KNOWN_WORMS)}")
        if self.start < 0:
            raise ValueError(f"wave start must be >= 0: {self.start!r}")
        if self.duration <= 0:
            raise ValueError(f"wave duration must be positive: {self.duration!r}")
        if self.sources <= 0:
            raise ValueError(f"wave sources must be positive: {self.sources!r}")
        if self.rate <= 0:
            raise ValueError(f"wave rate must be positive: {self.rate!r}")


@dataclass(frozen=True)
class AdversarySpec:
    """One closed-loop adversary agent attached to every farm world.

    ``kind`` selects the agent class
    (:class:`~repro.adversary.fingerprint.FingerprintScanner` or
    :class:`~repro.adversary.botnet.BotnetCampaign`); ``tier`` is the
    scanner's sophistication and ignored for botnets."""

    kind: str
    start: float = 0.5
    tier: int = 0
    num_targets: int = 4
    worm: str = "slammer"

    def __post_init__(self) -> None:
        if self.kind not in ADVERSARY_KINDS:
            raise ValueError(f"unknown adversary kind {self.kind!r}")
        if self.start < 0:
            raise ValueError(f"adversary start must be >= 0: {self.start!r}")
        if not (0 <= self.tier <= 3):
            raise ValueError(f"adversary tier must be in [0, 3]: {self.tier!r}")
        if self.num_targets < 3:
            # Identity/timing tells need >= 3 probed addresses.
            raise ValueError(
                f"adversary num_targets must be >= 3: {self.num_targets!r}"
            )
        if self.worm not in KNOWN_WORMS:
            raise ValueError(f"unknown worm {self.worm!r}")


@dataclass(frozen=True)
class Scenario:
    """One randomized differential-testing scenario. See module docstring.

    Attributes
    ----------
    seed:
        Root seed: farm seed and the root of every derived stream
        (telescope arrivals, worm-wave schedules, fault-plan jitter).
    prefix_bits:
        Dark-space size as a prefix length on ``10.16.0.0`` (24 = 256
        addresses ... 28 = 16 addresses).
    duration:
        Trace-generation window in simulated seconds. Worlds run for
        ``duration`` plus the runner's cool-down so in-flight clones
        finish in every clone mode before observations are compared.
    memory_profile:
        ``roomy`` sizes each host to hold a full-copy clone of every
        dark address (equivalence claims apply); ``tight`` sizes hosts
        to roughly a third of that and arms the pressure policy (the
        conservation and safety oracles still apply).
    churn:
        When True, the idle timeout is a quarter of the duration so
        reclamation races the workload; when False it is ten times the
        duration so no VM is reclaimed mid-run.
    fault_events:
        JSON dicts in the :class:`~repro.faults.plan.FaultSpec` schema
        (validated eagerly); scheduled by a
        :class:`~repro.faults.injectors.ChaosController` in every farm
        world.
    """

    seed: int
    prefix_bits: int = 24
    duration: float = 10.0
    num_hosts: int = 1
    vm_image_mb: int = 8
    containment: str = "drop-all"
    content_sharing: bool = True
    warm_pool_size: int = 0
    pending_timeout: Optional[float] = None
    memory_profile: str = "roomy"
    churn: bool = False
    telescope_rate: float = 8.0
    exploit_fraction: float = 0.35
    max_packets: int = 400
    worm_waves: Tuple[WormWave, ...] = ()
    fault_events: Tuple[Dict[str, Any], ...] = ()
    adversaries: Tuple[AdversarySpec, ...] = ()
    deception: bool = False
    name: str = ""

    def __post_init__(self) -> None:
        if not (16 <= self.prefix_bits <= 28):
            raise ValueError(f"prefix_bits must be in [16, 28]: {self.prefix_bits!r}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration!r}")
        if self.num_hosts <= 0:
            raise ValueError(f"num_hosts must be positive: {self.num_hosts!r}")
        if self.vm_image_mb <= 0:
            raise ValueError(f"vm_image_mb must be positive: {self.vm_image_mb!r}")
        if self.containment not in SCENARIO_CONTAINMENTS:
            raise ValueError(f"unknown containment {self.containment!r}")
        if self.memory_profile not in ("roomy", "tight"):
            raise ValueError(f"memory_profile must be roomy|tight: {self.memory_profile!r}")
        if self.warm_pool_size < 0:
            raise ValueError(f"warm_pool_size must be >= 0: {self.warm_pool_size!r}")
        if self.telescope_rate <= 0:
            raise ValueError(f"telescope_rate must be positive: {self.telescope_rate!r}")
        if not (0.0 <= self.exploit_fraction <= 1.0):
            raise ValueError(f"exploit_fraction must be in [0, 1]: {self.exploit_fraction!r}")
        if self.max_packets <= 0:
            raise ValueError(f"max_packets must be positive: {self.max_packets!r}")
        object.__setattr__(self, "worm_waves", tuple(
            w if isinstance(w, WormWave) else WormWave(**w) for w in self.worm_waves
        ))
        object.__setattr__(self, "fault_events", tuple(
            dict(e) for e in self.fault_events
        ))
        object.__setattr__(self, "adversaries", tuple(
            a if isinstance(a, AdversarySpec) else AdversarySpec(**a)
            for a in self.adversaries
        ))
        for event in self.fault_events:
            FaultSpec.from_dict(event)  # validate eagerly; raises on bad specs

    # ------------------------------------------------------------------ #
    # Derived configuration
    # ------------------------------------------------------------------ #

    @property
    def prefix(self) -> str:
        return f"10.16.0.0/{self.prefix_bits}"

    @property
    def address_count(self) -> int:
        return 1 << (32 - self.prefix_bits)

    @property
    def idle_timeout(self) -> float:
        if self.churn:
            return max(2.0, self.duration / 4.0)
        return self.duration * 10.0

    @property
    def host_memory_bytes(self) -> int:
        image = self.vm_image_mb << 20
        if self.memory_profile == "roomy":
            # Every dark address full-copied plus headroom still fits.
            return image * (self.address_count + 16)
        return image * max(12, self.address_count // 3)

    @property
    def equivalence_eligible(self) -> bool:
        """True when the delta-vs-full-copy and sharing-flip worlds are
        *expected* to be guest-visibly identical: unconstrained memory,
        no reclamation racing the workload, no injected faults, and no
        warm pool (pool refill timing differs across clone modes and
        permutes guest seed assignment)."""
        return (
            self.memory_profile == "roomy"
            and not self.churn
            and not self.fault_events
            and self.warm_pool_size == 0
        )

    def farm_config(
        self,
        clone_mode: str = "flash",
        containment: Optional[str] = None,
        content_sharing: Optional[bool] = None,
        ladder: bool = False,
        deception: Optional[bool] = None,
    ) -> HoneyfarmConfig:
        """The farm configuration for one world of this scenario."""
        deceive = self.deception if deception is None else deception
        return HoneyfarmConfig(
            ladder=LadderConfig(enabled=True) if ladder else LadderConfig(),
            deception=DeceptionConfig(enabled=True) if deceive else DeceptionConfig(),
            prefixes=(self.prefix,),
            num_hosts=self.num_hosts,
            host_memory_bytes=self.host_memory_bytes,
            max_vms_per_host=max(512, self.address_count + 16),
            vm_image_bytes=self.vm_image_mb << 20,
            idle_timeout_seconds=self.idle_timeout,
            flow_idle_timeout_seconds=max(self.idle_timeout, 30.0),
            sweep_interval_seconds=1.0,
            memory_pressure_threshold=0.9 if self.memory_profile == "tight" else None,
            containment=self.containment if containment is None else containment,
            content_sharing=(
                self.content_sharing if content_sharing is None else content_sharing
            ),
            warm_pool_size=self.warm_pool_size,
            pending_timeout_seconds=self.pending_timeout,
            clone_mode=clone_mode,
            clone_jitter=0.0,
            seed=self.seed,
        )

    def fault_plan(self) -> FaultPlan:
        """The scenario's fault plan (empty plan when no events)."""
        return FaultPlan(
            events=tuple(FaultSpec.from_dict(e) for e in self.fault_events),
            seed=SeedSequence(self.seed).spawn("faults").root_seed,
        )

    # ------------------------------------------------------------------ #
    # Trace synthesis (the one input every world shares)
    # ------------------------------------------------------------------ #

    def build_trace(self) -> List[TraceRecord]:
        """The deterministic packet trace driving every world.

        Telescope background radiation plus the scenario's worm waves,
        merged in time order and capped at ``max_packets``. Bit-identical
        across calls and processes for a given scenario.
        """
        telescope_seed = SeedSequence(self.seed).spawn("telescope").root_seed
        workload = TelescopeWorkload(
            [Prefix.parse(self.prefix)],
            TelescopeConfig(
                seed=telescope_seed,
                sources_per_second_per_slash16=self.telescope_rate * (
                    65536.0 / self.address_count
                ),
                exploit_source_fraction=self.exploit_fraction,
                probes_max=200,
            ),
        )
        records = workload.generate(self.duration, max_records=self.max_packets)
        records.extend(self._wave_records())
        records.sort(key=lambda r: r.time)
        return records[: self.max_packets]

    def _wave_records(self) -> List[TraceRecord]:
        from repro.net.packet import PROTO_UDP

        inventory_prefix = Prefix.parse(self.prefix)
        seeds = SeedSequence(self.seed).spawn("worm-waves")
        records: List[TraceRecord] = []
        for index, wave in enumerate(self.worm_waves):
            spec = KNOWN_WORMS[wave.worm]
            for source_index in range(wave.sources):
                rng = seeds.stream(f"wave-{index}-source-{source_index}")
                source = self._external_address(rng, inventory_prefix)
                src_port = 1024 + rng.randint(0, 60000)
                t = wave.start
                end = min(wave.start + wave.duration, self.duration)
                while t < end:
                    dst = IPAddress(
                        inventory_prefix.network.value
                        + rng.randint(0, self.address_count - 1)
                    )
                    if spec.protocol == PROTO_UDP:
                        records.append(TraceRecord(
                            time=t, src=str(source), dst=str(dst),
                            protocol=spec.protocol, src_port=src_port,
                            dst_port=spec.port, payload=spec.exploit_tag,
                            size=40 + spec.payload_size,
                        ))
                    else:
                        records.append(TraceRecord(
                            time=t, src=str(source), dst=str(dst),
                            protocol=spec.protocol, src_port=src_port,
                            dst_port=spec.port, size=40,
                        ))
                        records.append(TraceRecord(
                            time=t + _EXPLOIT_PAYLOAD_DELAY, src=str(source),
                            dst=str(dst), protocol=spec.protocol,
                            src_port=src_port, dst_port=spec.port,
                            payload=spec.exploit_tag,
                            size=40 + spec.payload_size,
                        ))
                    t += rng.exponential(wave.rate)
        return [r for r in records if r.time < self.duration]

    @staticmethod
    def _external_address(rng: RandomStream, prefix: Prefix) -> IPAddress:
        while True:
            addr = IPAddress(rng.randint(0x01000000, 0xDFFFFFFF))
            if not prefix.contains(addr):
                return addr

    # ------------------------------------------------------------------ #
    # Size (shrinker metric) and serialization
    # ------------------------------------------------------------------ #

    def size(self) -> int:
        """A monotone complexity score: every shrink transformation
        strictly reduces it, so greedy minimization terminates."""
        return (
            self.max_packets
            + int(self.duration * 10)
            + self.address_count // 4
            + self.num_hosts * 8
            + len(self.worm_waves) * 30
            + sum(w.sources for w in self.worm_waves) * 5
            + len(self.fault_events) * 40
            + len(self.adversaries) * 30
            + sum(a.tier + a.num_targets for a in self.adversaries)
            + (8 if self.deception else 0)
            + self.warm_pool_size * 2
            + (4 if self.pending_timeout is not None else 0)
            + (6 if self.churn else 0)
            + (10 if self.memory_profile == "tight" else 0)
            + int(self.telescope_rate * 2)
        )

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["worm_waves"] = [asdict(w) for w in self.worm_waves]
        data["fault_events"] = [dict(e) for e in self.fault_events]
        data["adversaries"] = [asdict(a) for a in self.adversaries]
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"scenario has unknown fields: {sorted(unknown)}")
        data = dict(data)
        data["worm_waves"] = tuple(
            WormWave(**w) for w in data.get("worm_waves", ())
        )
        data["fault_events"] = tuple(data.get("fault_events", ()))
        data["adversaries"] = tuple(
            AdversarySpec(**a) for a in data.get("adversaries", ())
        )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def with_overrides(self, **kwargs) -> "Scenario":
        return replace(self, **kwargs)


class ScenarioGenerator:
    """Synthesizes random scenarios from a single root seed.

    Scenario ``i`` depends only on ``(root_seed, i)``, so a failing
    scenario reported as ``seed=S index=I`` is regenerated exactly by
    ``ScenarioGenerator(S).scenario(I)`` — no state to replay.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._seeds = SeedSequence(self.root_seed)

    def scenario(self, index: int) -> Scenario:
        rng = self._seeds.stream(f"scenario-{index}")
        prefix_bits = rng.choice([24, 25, 25, 26, 26])
        duration = round(rng.uniform(6.0, 14.0), 1)
        num_hosts = rng.choice([1, 1, 2, 2])
        containment = rng.weighted_choice(
            ["drop-all", "allow-dns", "reflect", "open"],
            [0.40, 0.20, 0.30, 0.10],
        )
        memory_profile = "roomy" if rng.bernoulli(0.7) else "tight"
        churn = rng.bernoulli(0.25)
        warm_pool = rng.choice([0, 0, 0, 4])
        pending_timeout = rng.choice([None, None, None, 5.0])
        waves = self._waves(rng, duration)
        faults = self._faults(rng, duration, num_hosts)
        # Draws below stay in this order so older scenarios regenerate
        # identically; the adversary/deception draws append at the end.
        seed = rng.randint(0, 2**31 - 1)
        vm_image_mb = rng.choice([4, 8])
        content_sharing = rng.bernoulli(0.75)
        telescope_rate = round(rng.uniform(4.0, 12.0), 2)
        exploit_fraction = round(rng.uniform(0.2, 0.5), 2)
        max_packets = rng.randint(200, 700)
        adversaries = self._adversaries(rng, duration)
        deception = rng.bernoulli(0.35 if adversaries else 0.1)
        return Scenario(
            seed=seed,
            prefix_bits=prefix_bits,
            duration=duration,
            num_hosts=num_hosts,
            vm_image_mb=vm_image_mb,
            containment=containment,
            content_sharing=content_sharing,
            warm_pool_size=warm_pool,
            pending_timeout=pending_timeout,
            memory_profile=memory_profile,
            churn=churn,
            telescope_rate=telescope_rate,
            exploit_fraction=exploit_fraction,
            max_packets=max_packets,
            worm_waves=waves,
            fault_events=faults,
            adversaries=adversaries,
            deception=deception,
            name=f"gen-{self.root_seed}-{index}",
        )

    def _waves(self, rng: RandomStream, duration: float) -> Tuple[WormWave, ...]:
        count = rng.choice([0, 1, 1, 2])
        waves = []
        for __ in range(count):
            start = round(rng.uniform(0.0, duration * 0.5), 1)
            waves.append(WormWave(
                worm=rng.choice(["codered", "slammer", "sasser", "blaster"]),
                start=start,
                duration=round(rng.uniform(2.0, duration - start), 1),
                sources=rng.randint(1, 3),
                rate=round(rng.uniform(1.0, 4.0), 1),
            ))
        return tuple(waves)

    def _adversaries(
        self, rng: RandomStream, duration: float
    ) -> Tuple[AdversarySpec, ...]:
        count = rng.choice([0, 0, 0, 1, 1, 2])
        specs = []
        for __ in range(count):
            kind = "fingerprint" if rng.bernoulli(0.7) else "botnet"
            specs.append(AdversarySpec(
                kind=kind,
                # Early enough that the recon/analyze/echo stages fit
                # inside the run window plus cool-down.
                start=round(rng.uniform(0.2, max(0.3, duration * 0.4)), 1),
                tier=rng.randint(0, 3) if kind == "fingerprint" else 0,
                num_targets=rng.randint(3, 6),
                worm=rng.choice(["slammer", "codered"]),
            ))
        return tuple(specs)

    def _faults(
        self, rng: RandomStream, duration: float, num_hosts: int
    ) -> Tuple[Dict[str, Any], ...]:
        events: List[Dict[str, Any]] = []
        if num_hosts >= 2 and rng.bernoulli(0.3):
            events.append({
                "kind": "host_crash",
                "at": round(rng.uniform(duration * 0.2, duration * 0.6), 1),
                "target": str(rng.randint(0, num_hosts - 1)),
                "duration": round(rng.uniform(2.0, 8.0), 1),
            })
        if rng.bernoulli(0.15):
            events.append({
                "kind": "clone_faults",
                "at": round(rng.uniform(0.0, duration * 0.5), 1),
                "duration": round(rng.uniform(2.0, 6.0), 1),
                "rate": round(rng.uniform(0.2, 0.5), 2),
            })
        return tuple(events)

    def generate(self, count: int, start_index: int = 0) -> List[Scenario]:
        return [self.scenario(start_index + i) for i in range(count)]
