"""The differential runner: one scenario, N worlds, every oracle.

This is the harness core: build the scenario's trace once, replay it
through the whole world matrix (delta / sharing flip / full-copy /
alternate containment / fidelity ladder / responder baseline), then hand
the observation map to the oracle registry. A scenario *passes* when every oracle
returns zero violations.

``run_conformance`` is the fuzzing entry point used by ``potemkin
conform`` and CI: generate ``runs`` scenarios from a root seed and run
each through the matrix, collecting per-scenario verdicts. Everything is
deterministic — the same root seed replays the identical campaign.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.testing.oracles import OracleRegistry, Violation, default_registry
from repro.testing.scenario import Scenario, ScenarioGenerator
from repro.testing.worlds import WorldObservation, WorldSpec, run_world, world_matrix

__all__ = [
    "ConformanceReport",
    "DifferentialRunner",
    "ScenarioVerdict",
    "run_conformance",
]


@dataclass
class ScenarioVerdict:
    """Outcome of one scenario's trip through the world matrix."""

    scenario: Scenario
    violations: List[Violation]
    world_summaries: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.violations

    @property
    def failing_oracles(self) -> List[str]:
        seen: List[str] = []
        for violation in self.violations:
            if violation.oracle not in seen:
                seen.append(violation.oracle)
        return seen

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario.to_dict(),
            "passed": self.passed,
            "violations": [v.to_dict() for v in self.violations],
            "worlds": self.world_summaries,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


@dataclass
class ConformanceReport:
    """A whole fuzzing campaign: root seed plus per-scenario verdicts."""

    root_seed: int
    verdicts: List[ScenarioVerdict] = field(default_factory=list)
    oracle_names: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.verdicts)

    @property
    def failures(self) -> List[ScenarioVerdict]:
        return [v for v in self.verdicts if not v.passed]

    @property
    def scenarios_run(self) -> int:
        return len(self.verdicts)

    @property
    def worlds_per_scenario(self) -> int:
        if not self.verdicts:
            return 0
        return max(len(v.world_summaries) for v in self.verdicts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root_seed": self.root_seed,
            "scenarios_run": self.scenarios_run,
            "passed": self.passed,
            "oracles": self.oracle_names,
            "failures": [v.to_dict() for v in self.failures],
        }


class DifferentialRunner:
    """Executes scenarios through a world matrix and an oracle registry.

    ``worlds`` overrides the matrix (callable scenario -> specs) — the
    shrinker narrows it to the worlds implicated in a failure, and tests
    inject single-world matrices.
    """

    def __init__(
        self,
        registry: Optional[OracleRegistry] = None,
        worlds: Optional[Callable[[Scenario], Sequence[WorldSpec]]] = None,
        recorder_capacity: int = 400_000,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.worlds = worlds if worlds is not None else world_matrix
        self.recorder_capacity = recorder_capacity

    def observe(self, scenario: Scenario) -> Dict[str, WorldObservation]:
        """Run every world on the scenario's (shared) trace."""
        trace = scenario.build_trace()
        return {
            spec.name: run_world(
                scenario, spec, trace=trace,
                recorder_capacity=self.recorder_capacity,
            )
            for spec in self.worlds(scenario)
        }

    def run_scenario(self, scenario: Scenario) -> ScenarioVerdict:
        started = time.perf_counter()
        trace = scenario.build_trace()
        observations = {
            spec.name: run_world(
                scenario, spec, trace=trace,
                recorder_capacity=self.recorder_capacity,
            )
            for spec in self.worlds(scenario)
        }
        violations = self.registry.check_all(scenario, observations, trace)
        return ScenarioVerdict(
            scenario=scenario,
            violations=violations,
            world_summaries={
                name: obs.summary() for name, obs in observations.items()
            },
            elapsed_seconds=time.perf_counter() - started,
        )


def run_conformance(
    root_seed: int,
    runs: int,
    registry: Optional[OracleRegistry] = None,
    start_index: int = 0,
    on_verdict: Optional[Callable[[int, ScenarioVerdict], None]] = None,
) -> ConformanceReport:
    """Fuzz ``runs`` generated scenarios; deterministic in ``root_seed``.

    ``on_verdict(index, verdict)`` fires after each scenario — the CLI
    uses it for progress lines and early artifact writes.
    """
    runner = DifferentialRunner(registry=registry)
    generator = ScenarioGenerator(root_seed)
    report = ConformanceReport(
        root_seed=root_seed, oracle_names=runner.registry.names()
    )
    for index in range(start_index, start_index + runs):
        verdict = runner.run_scenario(generator.scenario(index))
        report.verdicts.append(verdict)
        if on_verdict is not None:
            on_verdict(index, verdict)
    return report
