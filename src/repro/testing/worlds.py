"""Build and run one scenario through one configured *world*.

A world is a full farm (clone mode x containment x content sharing) or
the stateless-responder baseline, driven by the scenario's shared packet
trace. Running a world yields a :class:`WorldObservation` — plain data
only (counters, digests, ledgers, recorder tallies), never live farm
objects — so oracles compare observations without keeping simulation
state alive, and observations serialize into failure artifacts.

The guest-visible *digest* is deliberately timing-free: the multiset of
packets the outside world received (addresses, ports, flags, payloads)
plus the multiset of infections (victim, worm, generation). Clone modes
legitimately differ in latency; the paper's claim is that the attacker
sees the same *content*, which is exactly what the digest captures.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.adversary.base import AdversaryAgent
from repro.adversary.botnet import BotnetCampaign
from repro.adversary.fingerprint import FingerprintScanner
from repro.analysis.recovery import packet_ledger
from repro.baselines.responder import StatelessResponder
from repro.core.federation import FederatedHoneyfarm
from repro.core.honeyfarm import Honeyfarm
from repro.core.intershard import InterShardConfig
from repro.faults.injectors import ChaosController
from repro.net.addr import AddressSpaceInventory, IPAddress, Prefix
from repro.obs import FlightRecorder, install, uninstall
from repro.services.personality import default_registry
from repro.sim.rand import SeedSequence
from repro.testing.scenario import Scenario
from repro.workloads.trace import TraceRecord, replay_into_farm
from repro.workloads.worms import KNOWN_WORMS

__all__ = [
    "COOLDOWN_SECONDS",
    "WorldObservation",
    "WorldSpec",
    "run_world",
    "world_matrix",
]

#: Simulated seconds every world runs past the trace window, so clones
#: in flight at the window's edge finish in every clone mode (full-copy
#: is the slowest at ~1.1 s) and their queued packets flush before the
#: worlds' observations are compared.
COOLDOWN_SECONDS = 5.0

#: In-farm scan-rate throttle for captured worms (simulation-budget
#: knob, mirrors the chaos drill; containment behaviour is
#: rate-independent).
IN_FARM_SCAN_RATE = 2.0

#: Cross-shard hop latency for the federation world: generous relative
#: to scenario durations so each run exercises several lockstep epochs
#: without dominating the packet timings the digest ignores anyway.
FEDERATION_LATENCY = 0.5

#: A timing-free packet identity: (src, dst, protocol, src_port,
#: dst_port, flags, payload).
PacketKey = Tuple[str, str, int, int, int, int, str]


@dataclass(frozen=True)
class WorldSpec:
    """One column of the differential matrix.

    ``containment``/``content_sharing`` of None inherit the scenario's
    own values, so a spec like ``WorldSpec("fullcopy",
    clone_mode="full-copy")`` differs from the primary world in exactly
    one dimension.
    """

    name: str
    kind: str = "farm"  # "farm" | "responder" | "federation"
    clone_mode: str = "flash"
    containment: Optional[str] = None
    content_sharing: Optional[bool] = None
    ladder: bool = False
    #: Feed the trace through the batched arrival stream
    #: (:class:`~repro.sim.batch.PacketArrivalStream`) instead of one
    #: scheduled event per packet. The batched loop is contractually
    #: bit-identical, so a batched world must digest-match its
    #: per-event siblings — running one world batched keeps the whole
    #: conformance matrix as a standing cross-check of that contract.
    batched: bool = False
    #: None inherits the scenario's ``deception`` flag; True/False force
    #: the deception arm, so the flip world differs from the primary in
    #: exactly the personality/jitter randomization.
    deception: Optional[bool] = None


def world_matrix(scenario: Scenario) -> List[WorldSpec]:
    """The default matrix: the scenario's primary delta world (driven
    through the batched event loop — see :attr:`WorldSpec.batched`), its
    sharing flip, its full-copy ablation, one alternate containment
    policy (so every run diffs >= 2 policies), the fidelity-ladder
    variant, and the responder baseline."""
    alternate = "reflect" if scenario.containment == "drop-all" else "drop-all"
    specs = [
        WorldSpec("delta", batched=True),
        WorldSpec("sharing-flip", content_sharing=not scenario.content_sharing),
        WorldSpec("fullcopy", clone_mode="full-copy"),
        WorldSpec(f"alt-{alternate}", containment=alternate),
        WorldSpec("ladder", ladder=True),
    ]
    if scenario.adversaries or scenario.deception:
        # Ablate the deception defense whenever it matters: adversary
        # verdicts may legitimately differ across the flip, but the
        # containment/conservation oracles must hold on both sides.
        specs.append(WorldSpec("deception-flip", deception=not scenario.deception))
    specs.append(WorldSpec("responder", kind="responder"))
    return specs


@dataclass
class WorldObservation:
    """Everything the oracles may look at after one world's run."""

    world: str
    kind: str
    clone_mode: str
    containment: str
    content_sharing: bool
    sim_now: float = 0.0
    end_time: float = 0.0
    live_vms: int = 0
    counters: Dict[str, int] = field(default_factory=dict)
    #: Sorted multiset of (victim, worm, generation).
    infections: List[Tuple[str, str, int]] = field(default_factory=list)
    #: Sorted multiset of PacketKey for packets that left the farm.
    external_packets: List[PacketKey] = field(default_factory=list)
    #: farm.live_vms_series sample times (clock-monotonicity evidence).
    series_times: List[float] = field(default_factory=list)
    #: Flight-recorder (subsystem, event) tallies.
    event_counts: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: Flight-recorder gateway dispatch verdict tallies.
    dispatch_verdicts: Dict[str, int] = field(default_factory=dict)
    event_times_monotone: bool = True
    recorder_evicted: int = 0
    frame_error: Optional[str] = None
    pressure_evictions: int = 0
    # Packet-conservation ledger fields (farm worlds).
    packets_in: int = 0
    delivered: int = 0
    refused: int = 0
    dropped_by_cause: Dict[str, int] = field(default_factory=dict)
    still_pending: int = 0
    leaked: int = 0
    emulated: int = 0
    # Responder-only tallies.
    packets_seen: int = 0
    replies_sent: int = 0
    would_have_infected: int = 0
    # Adversary-agent observations (farm worlds with scenario adversaries).
    deception: bool = False
    adversary_reports: List[Dict[str, Any]] = field(default_factory=list)
    #: Sorted (src, dst) pairs the agents injected — legitimate inbound
    #: traffic the containment-safety oracle must whitelist.
    adversary_injected_pairs: List[Tuple[str, str]] = field(default_factory=list)
    #: Generation-0 infections sourced by agents (not the shared trace),
    #: for the responder-fidelity bound.
    adversary_gen0_infections: int = 0

    def digest(self) -> Tuple[Tuple[PacketKey, ...], Tuple[Tuple[str, str, int], ...]]:
        """The guest-visible observation: what left the farm plus what
        was captured, timing excluded."""
        return (tuple(self.external_packets), tuple(self.infections))

    def summary(self) -> Dict[str, Any]:
        """JSON-ready condensed view for failure artifacts."""
        return {
            "world": self.world,
            "kind": self.kind,
            "clone_mode": self.clone_mode,
            "containment": self.containment,
            "content_sharing": self.content_sharing,
            "packets_in": self.packets_in,
            "delivered": self.delivered,
            "leaked": self.leaked,
            "infections": len(self.infections),
            "external_packets": len(self.external_packets),
            "live_vms": self.live_vms,
            "pressure_evictions": self.pressure_evictions,
            "frame_error": self.frame_error,
        }


def _packet_key(packet) -> PacketKey:
    return (
        str(packet.src),
        str(packet.dst),
        packet.protocol,
        packet.src_port,
        packet.dst_port,
        int(packet.flags) if packet.is_tcp else 0,
        packet.payload,
    )


def run_world(
    scenario: Scenario,
    spec: WorldSpec,
    trace: Optional[List[TraceRecord]] = None,
    recorder_capacity: int = 400_000,
) -> WorldObservation:
    """Execute ``scenario`` through the world described by ``spec``."""
    if trace is None:
        trace = scenario.build_trace()
    if spec.kind == "responder":
        return _run_responder(scenario, spec, trace)
    if spec.kind == "federation":
        return _run_federation(scenario, spec, trace)
    return _run_farm(scenario, spec, trace, recorder_capacity)


def _run_farm(
    scenario: Scenario,
    spec: WorldSpec,
    trace: List[TraceRecord],
    recorder_capacity: int,
) -> WorldObservation:
    config = scenario.farm_config(
        clone_mode=spec.clone_mode,
        containment=spec.containment,
        content_sharing=spec.content_sharing,
        ladder=spec.ladder,
        deception=spec.deception,
    )
    farm = Honeyfarm(config)
    dns = farm.config.dns_address()
    for worm in KNOWN_WORMS.values():
        throttled = worm.with_scan_rate(min(worm.scan_rate, IN_FARM_SCAN_RATE))
        farm.register_worm(throttled.behavior(dns))

    escaped: List[PacketKey] = []
    farm.gateway.external_sink = lambda packet: escaped.append(_packet_key(packet))

    # Adversary agents chain-wrap the sink just installed, so the
    # escaped collector keeps seeing every egress packet.
    agents = _build_adversaries(scenario, farm)
    for agent in agents:
        agent.attach()

    plan = scenario.fault_plan()
    controller = ChaosController(farm, plan) if plan else None

    end_time = scenario.duration + COOLDOWN_SECONDS
    recorder = FlightRecorder(capacity=recorder_capacity)
    install(recorder)
    try:
        replay_into_farm(farm, trace, batched=spec.batched)
        if controller is not None:
            controller.start()
        farm.run(until=end_time)
    finally:
        uninstall()

    obs = WorldObservation(
        world=spec.name,
        kind="farm",
        clone_mode=config.clone_mode,
        containment=config.containment,
        content_sharing=config.content_sharing,
        sim_now=farm.sim.now,
        end_time=end_time,
        live_vms=farm.live_vms,
        counters=dict(farm.metrics.counters()),
    )
    obs.infections = sorted(
        (str(r.victim), r.worm_name, r.generation) for r in farm.infections
    )
    obs.external_packets = sorted(escaped)
    obs.series_times = list(farm.metrics.series("farm.live_vms_series").times)

    event_counts: Counter = Counter()
    verdicts: Counter = Counter()
    last_t = float("-inf")
    monotone = True
    for t, __, subsystem, event, fields in recorder.events:
        if t < last_t:
            monotone = False
        last_t = t
        event_counts[(subsystem, event)] += 1
        if subsystem == "gateway" and event == "dispatch":
            verdicts[fields.get("verdict", "?")] += 1
    obs.event_counts = dict(event_counts)
    obs.dispatch_verdicts = dict(verdicts)
    obs.event_times_monotone = monotone
    obs.recorder_evicted = recorder.evicted

    try:
        for host in farm.hosts:
            host.memory.check_frame_invariant()
    except Exception as exc:  # the oracle reports, never raises
        obs.frame_error = f"{type(exc).__name__}: {exc}"

    obs.deception = config.deception.enabled
    obs.adversary_reports = [agent.report.summary() for agent in agents]
    obs.adversary_injected_pairs = sorted(
        {pair for agent in agents for pair in agent.injected_pairs}
    )
    sources = {agent.source for agent in agents}
    obs.adversary_gen0_infections = sum(
        1 for r in farm.infections
        if r.generation == 0 and r.source in sources
    )

    obs.pressure_evictions = obs.counters.get("farm.pressure_evictions", 0)
    ledger = packet_ledger(farm)
    obs.packets_in = ledger.packets_in
    obs.delivered = ledger.delivered
    obs.refused = ledger.refused
    obs.dropped_by_cause = dict(ledger.dropped_by_cause)
    obs.still_pending = ledger.still_pending
    obs.leaked = ledger.leaked
    obs.emulated = ledger.emulated
    return obs


def _build_adversaries(scenario: Scenario, farm: Honeyfarm) -> List[AdversaryAgent]:
    """Instantiate the scenario's adversary agents against one farm.

    Everything — sources, targets, per-agent rng — derives from the
    scenario alone, so every farm world faces the identical campaign.
    """
    if not scenario.adversaries:
        return []
    seeds = SeedSequence(scenario.seed).spawn("adversary")
    prefix = Prefix.parse(scenario.prefix)
    # Inside the run window so the deadline backstop's terminal verdict
    # lands before the sim stops.
    deadline = scenario.duration + COOLDOWN_SECONDS - 0.5
    agents: List[AdversaryAgent] = []
    for i, spec in enumerate(scenario.adversaries):
        step = max(1, scenario.address_count // (spec.num_targets + 1))
        targets = tuple(
            prefix.address_at(1 + j * step) for j in range(spec.num_targets)
        )
        common = dict(
            farm=farm,
            rng=seeds.stream(f"agent-{i}"),
            source=IPAddress.parse(f"198.51.100.{10 + i}"),
            targets=targets,
            start=spec.start,
            deadline=deadline,
            name=f"adv-{i}-{spec.kind}",
        )
        if spec.kind == "fingerprint":
            agents.append(
                FingerprintScanner(tier=spec.tier, worm=spec.worm, **common)
            )
        else:
            agents.append(BotnetCampaign(worm=spec.worm, **common))
    return agents


def _run_federation(
    scenario: Scenario, spec: WorldSpec, trace: List[TraceRecord]
) -> WorldObservation:
    """Run the scenario through a two-shard interlinked federation.

    The scenario's prefix splits into two half-shards, each owned by its
    own :class:`~repro.core.intershard.ShardRunner`, with the shared
    trace routed record-by-record to the owning shard. Not part of the
    default matrix (cross-shard hop latency legitimately shifts packet
    timings, and the private per-shard clocks would trip the recorder's
    global-monotonicity oracle), but differential drills can pit it
    against the single-farm worlds on the timing-free digest.
    """
    whole = Prefix.parse(scenario.prefix)
    if whole.length > 30:
        raise ValueError(f"prefix {whole} too small to split into shards")
    halves = (
        Prefix(whole.first, whole.length + 1),
        Prefix(whole.first.offset(whole.size // 2), whole.length + 1),
    )
    base = scenario.farm_config(
        clone_mode=spec.clone_mode,
        containment=spec.containment,
        content_sharing=spec.content_sharing,
        ladder=spec.ladder,
    )
    configs = [
        replace(base, prefixes=(str(half),), seed=base.seed + shard)
        for shard, half in enumerate(halves)
    ]
    worms = tuple(
        (name, min(worm.scan_rate, IN_FARM_SCAN_RATE))
        for name, worm in sorted(KNOWN_WORMS.items())
    )
    federation = FederatedHoneyfarm(
        configs,
        interlink=InterShardConfig(latency_seconds=FEDERATION_LATENCY),
        worms=worms,
    )

    escaped: List[PacketKey] = []
    for member in federation.members:
        member.gateway.external_sink = (
            lambda packet: escaped.append(_packet_key(packet))
        )

    shard_records: List[List[TraceRecord]] = [[], []]
    for record in trace:
        dst = IPAddress.parse(record.dst)
        for shard, half in enumerate(halves):
            if half.contains(dst):
                shard_records[shard].append(record)
                break
    for shard, records in enumerate(shard_records):
        federation.attach_shard_records(shard, records, batched=spec.batched)

    end_time = scenario.duration + COOLDOWN_SECONDS
    federation.run(until=end_time)

    obs = WorldObservation(
        world=spec.name,
        kind="federation",
        clone_mode=base.clone_mode,
        containment=base.containment,
        content_sharing=base.content_sharing,
        sim_now=federation.now,
        end_time=end_time,
        live_vms=federation.live_vms,
        counters=federation.aggregate_counters(),
    )
    obs.infections = sorted(
        (str(r.victim), r.worm_name, r.generation)
        for r in federation.infections()
    )
    obs.external_packets = sorted(escaped)
    try:
        ledger = federation.assert_packet_conservation()
    except AssertionError as exc:  # the oracle reports, never raises
        obs.frame_error = f"{type(exc).__name__}: {exc}"
        ledger = federation.federation_ledger()
    obs.packets_in = ledger.packets_in
    obs.delivered = ledger.delivered
    obs.refused = ledger.refused
    obs.dropped_by_cause = dict(ledger.dropped_by_cause)
    obs.still_pending = ledger.still_pending
    obs.leaked = sum(l.leaked for l in federation.member_ledgers())
    obs.emulated = ledger.emulated
    obs.pressure_evictions = obs.counters.get("farm.pressure_evictions", 0)
    return obs


def _run_responder(
    scenario: Scenario, spec: WorldSpec, trace: List[TraceRecord]
) -> WorldObservation:
    inventory = AddressSpaceInventory([Prefix.parse(scenario.prefix)])
    # Same per-address personality assignment as the farm worlds, so the
    # responder is a fidelity baseline, not a different population.
    config = scenario.farm_config()
    prefix = Prefix.parse(scenario.prefix)
    responder = StatelessResponder(
        inventory,
        default_registry(),
        personality_for=lambda addr: config.personality_for_address(prefix, addr),
    )
    replies: List[PacketKey] = []
    for record in trace:
        for reply in responder.handle_packet(record.to_packet()):
            replies.append(_packet_key(reply))
    return WorldObservation(
        world=spec.name,
        kind="responder",
        clone_mode="none",
        containment="none",
        content_sharing=False,
        sim_now=scenario.duration,
        end_time=scenario.duration,
        external_packets=sorted(replies),
        packets_seen=responder.packets_seen,
        replies_sent=responder.replies_sent,
        would_have_infected=responder.would_have_infected,
    )
