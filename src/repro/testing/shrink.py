"""Greedy scenario minimization for failing conformance runs.

Given a failing scenario and a ``fails`` predicate (re-running the
differential matrix and asking "do the same oracles still fire?"), the
shrinker repeatedly tries size-reducing transformations — drop a fault
event, drop a worm wave, halve the packet budget or duration, shrink the
address space, collapse to one host — keeping a candidate only when the
failure reproduces on it. ``Scenario.size()`` is a strictly-monotone
cost metric, so the greedy loop terminates.

The result carries a JSON repro artifact and a ready-to-paste pytest
case: paste it into ``tests/test_conformance.py``, watch it fail until
the bug is fixed, keep it as the regression pin.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.testing.differential import DifferentialRunner
from repro.testing.scenario import Scenario

__all__ = [
    "ShrinkResult",
    "failure_predicate",
    "pytest_case",
    "shrink_candidates",
    "shrink_scenario",
]


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    original: Scenario
    minimized: Scenario
    failing_oracles: List[str]
    steps: List[Tuple[str, int]] = field(default_factory=list)  # (transform, new size)
    evaluations: int = 0

    @property
    def shrank(self) -> bool:
        return self.minimized.size() < self.original.size()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "failing_oracles": self.failing_oracles,
            "original_size": self.original.size(),
            "minimized_size": self.minimized.size(),
            "evaluations": self.evaluations,
            "steps": [list(step) for step in self.steps],
            "original": self.original.to_dict(),
            "minimized": self.minimized.to_dict(),
        }


def failure_predicate(
    oracle_names: Sequence[str],
    runner: Optional[DifferentialRunner] = None,
) -> Callable[[Scenario], bool]:
    """``fails(candidate)`` = "at least one of the originally-failing
    oracles still fires" — the shrinker must preserve the *same* bug,
    not trade it for a different one."""
    runner = runner if runner is not None else DifferentialRunner()
    wanted = set(oracle_names)

    def fails(candidate: Scenario) -> bool:
        verdict = runner.run_scenario(candidate)
        return bool(wanted.intersection(verdict.failing_oracles))

    return fails


def shrink_candidates(scenario: Scenario) -> Iterable[Tuple[str, Scenario]]:
    """Yield (transform-name, candidate) pairs, each strictly smaller
    than ``scenario`` by the ``size()`` metric."""
    for i in range(len(scenario.fault_events)):
        events = scenario.fault_events[:i] + scenario.fault_events[i + 1:]
        yield f"drop-fault-{i}", scenario.with_overrides(fault_events=events)
    for i in range(len(scenario.worm_waves)):
        waves = scenario.worm_waves[:i] + scenario.worm_waves[i + 1:]
        yield f"drop-wave-{i}", scenario.with_overrides(worm_waves=waves)
    for i, wave in enumerate(scenario.worm_waves):
        if wave.sources > 1:
            waves = (
                scenario.worm_waves[:i]
                + (dataclasses.replace(wave, sources=1),)
                + scenario.worm_waves[i + 1:]
            )
            yield f"wave-{i}-single-source", scenario.with_overrides(worm_waves=waves)
    if scenario.max_packets >= 40:
        yield "halve-packets", scenario.with_overrides(
            max_packets=max(20, scenario.max_packets // 2)
        )
    if scenario.duration >= 4.0:
        yield "halve-duration", scenario.with_overrides(
            duration=max(2.0, scenario.duration / 2.0)
        )
    if scenario.prefix_bits < 28:
        yield "shrink-prefix", scenario.with_overrides(
            prefix_bits=scenario.prefix_bits + 1
        )
    if scenario.num_hosts > 1 and not scenario.fault_events:
        # Host-targeted faults need their hosts; only collapse when the
        # fault plan is already gone.
        yield "single-host", scenario.with_overrides(num_hosts=1)
    if scenario.warm_pool_size > 0:
        yield "no-warm-pool", scenario.with_overrides(warm_pool_size=0)
    if scenario.pending_timeout is not None:
        yield "no-pending-timeout", scenario.with_overrides(pending_timeout=None)
    if scenario.telescope_rate >= 1.0:
        yield "halve-telescope", scenario.with_overrides(
            telescope_rate=max(0.5, scenario.telescope_rate / 2.0)
        )
    if scenario.churn:
        yield "no-churn", scenario.with_overrides(churn=False)
    if scenario.memory_profile == "tight":
        yield "roomy-memory", scenario.with_overrides(memory_profile="roomy")


def shrink_scenario(
    scenario: Scenario,
    fails: Callable[[Scenario], bool],
    failing_oracles: Sequence[str] = (),
    max_evaluations: int = 200,
) -> ShrinkResult:
    """Greedily minimize ``scenario`` while ``fails`` keeps returning
    True. Every accepted step strictly reduces ``Scenario.size()``, so
    the loop terminates; ``max_evaluations`` bounds wall time on
    expensive predicates."""
    result = ShrinkResult(
        original=scenario,
        minimized=scenario,
        failing_oracles=list(failing_oracles),
    )
    current = scenario
    progress = True
    while progress and result.evaluations < max_evaluations:
        progress = False
        candidates = [
            (name, candidate)
            for name, candidate in shrink_candidates(current)
            if candidate.size() < current.size()
        ]
        # Try the biggest reductions first: fewer evaluations to the
        # bottom when aggressive cuts keep failing.
        candidates.sort(key=lambda pair: pair[1].size())
        for name, candidate in candidates:
            if result.evaluations >= max_evaluations:
                break
            result.evaluations += 1
            if fails(candidate):
                current = candidate
                result.steps.append((name, candidate.size()))
                progress = True
                break
    result.minimized = current.with_overrides(
        name=(scenario.name + "-min") if scenario.name else "minimized"
    )
    return result


def pytest_case(
    scenario: Scenario, failing_oracles: Sequence[str], test_name: str = "test_shrunk_repro"
) -> str:
    """A ready-to-paste regression test: fails while the bug lives,
    pins the scenario once it is fixed."""
    oracle_list = ", ".join(repr(name) for name in failing_oracles)
    scenario_json = scenario.to_json()
    return f'''def {test_name}():
    """Minimized repro (oracles that fired: {oracle_list or "unknown"})."""
    from repro.testing import DifferentialRunner, Scenario

    scenario = Scenario.from_json(r"""{scenario_json}""")
    verdict = DifferentialRunner().run_scenario(scenario)
    assert verdict.passed, "\\n".join(str(v) for v in verdict.violations)
'''
