"""A stateless low-interaction responder (honeyd / iSink class).

The scalable-but-shallow end of the design space the paper positions
Potemkin against: a single process that answers probes to an arbitrary
amount of address space with canned protocol responses. It needs no VMs,
no cloning, and no per-address memory — and it can never actually be
*infected*, so it observes scans but captures no malware behaviour.

The class mirrors the guest's reply logic closely enough that fidelity
comparisons are apples-to-apples at the packet level; the difference is
that exploits bounce off (``would_have_infected`` counts the missed
captures) and no second-stage behaviour ever occurs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.addr import AddressSpaceInventory
from repro.net.packet import (
    ICMP_ECHO_REQUEST,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    TcpFlags,
)
from repro.services.personality import Personality
from repro.services.vulnerabilities import EXPLOIT_PREFIX

__all__ = ["StatelessResponder"]


class StatelessResponder:
    """Answers probes to a whole dark space with one personality's
    canned responses, keeping no per-address state."""

    def __init__(self, inventory: AddressSpaceInventory, personality: Personality) -> None:
        self.inventory = inventory
        self.personality = personality
        self.packets_seen = 0
        self.replies_sent = 0
        self.would_have_infected = 0
        self.exploit_attempts_by_tag: Dict[str, int] = {}

    def handle_packet(self, packet: Packet) -> List[Packet]:
        """Reply to one probe; mirrors the guest's synchronous behaviour
        minus infection and memory effects."""
        if not self.inventory.covers(packet.dst):
            return []
        self.packets_seen += 1
        if packet.payload.startswith(EXPLOIT_PREFIX):
            self.exploit_attempts_by_tag[packet.payload] = (
                self.exploit_attempts_by_tag.get(packet.payload, 0) + 1
            )
            self.would_have_infected += 1
        reply = self._reply_for(packet)
        if reply is None:
            return []
        self.replies_sent += 1
        return [reply]

    def _reply_for(self, packet: Packet) -> Optional[Packet]:
        if packet.is_icmp:
            if packet.icmp_type == ICMP_ECHO_REQUEST:
                return packet.reply_template(size=packet.size)
            return None
        if packet.is_tcp:
            service = self.personality.service_at(PROTO_TCP, packet.dst_port)
            reply = packet.reply_template()
            if packet.flags.is_syn:
                reply.flags = (
                    TcpFlags.SYN | TcpFlags.ACK
                    if service is not None
                    else TcpFlags.RST | TcpFlags.ACK
                )
                return reply
            if service is not None and packet.payload and service.banner:
                banner = packet.reply_template(payload=f"banner:{service.banner}")
                banner.flags = TcpFlags.PSH | TcpFlags.ACK
                return banner
            return None
        if packet.is_udp:
            service = self.personality.service_at(PROTO_UDP, packet.dst_port)
            if service is None:
                unreachable = packet.reply_template()
                unreachable.protocol = 1
                unreachable.icmp_type = 3
                return unreachable
            if service.banner:
                return packet.reply_template(payload=f"banner:{service.banner}")
        return None

    @property
    def capture_count(self) -> int:
        """Malware captures: always zero — the point of the comparison."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StatelessResponder seen={self.packets_seen}"
            f" missed_captures={self.would_have_infected}>"
        )
