"""A stateless low-interaction responder (honeyd / iSink class).

The scalable-but-shallow end of the design space the paper positions
Potemkin against: a single process that answers probes to an arbitrary
amount of address space with canned protocol responses. It needs no VMs,
no cloning, and no per-address memory — and it can never actually be
*infected*, so it observes scans but captures no malware behaviour.

Replies come from the fidelity ladder's :func:`emulator_replies` — the
same guest-parity reply function the emulator tier uses — and each dark
address answers with the personality the farm config would assign it,
via a :class:`PersonalityRegistry` plus an optional address→name lookup.
That keeps fidelity comparisons apples-to-apples at the packet level:
the difference from a farm is that exploits bounce off
(``would_have_infected`` counts the missed captures) and no second-stage
behaviour ever occurs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.fidelity.emulator import emulator_replies
from repro.net.addr import AddressSpaceInventory, IPAddress
from repro.net.packet import Packet
from repro.services.personality import Personality, PersonalityRegistry
from repro.services.vulnerabilities import EXPLOIT_PREFIX

__all__ = ["StatelessResponder"]


class StatelessResponder:
    """Answers probes to a whole dark space with per-address personality
    responses, keeping no per-address state.

    ``personality_for`` maps a dark address to a personality name (e.g.
    ``config.personality_for_address`` partially applied); when omitted,
    every address presents ``default_personality``.
    """

    def __init__(
        self,
        inventory: AddressSpaceInventory,
        personalities: PersonalityRegistry,
        personality_for: Optional[Callable[[IPAddress], str]] = None,
        default_personality: str = "windows-default",
    ) -> None:
        self.inventory = inventory
        self.personalities = personalities
        self.personality_for = personality_for
        self.default_personality = default_personality
        self.packets_seen = 0
        self.replies_sent = 0
        self.would_have_infected = 0
        self.exploit_attempts_by_tag: Dict[str, int] = {}

    def personality_at(self, addr: IPAddress) -> Personality:
        """The personality impersonating one dark address."""
        if self.personality_for is not None:
            return self.personalities.get(self.personality_for(addr))
        return self.personalities.get(self.default_personality)

    def handle_packet(self, packet: Packet) -> List[Packet]:
        """Reply to one probe; mirrors the guest's synchronous behaviour
        minus infection and memory effects."""
        if not self.inventory.covers(packet.dst):
            return []
        self.packets_seen += 1
        if packet.payload.startswith(EXPLOIT_PREFIX):
            self.exploit_attempts_by_tag[packet.payload] = (
                self.exploit_attempts_by_tag.get(packet.payload, 0) + 1
            )
            self.would_have_infected += 1
        replies = emulator_replies(self.personality_at(packet.dst), packet)
        self.replies_sent += len(replies)
        return replies

    @property
    def capture_count(self) -> int:
        """Malware captures: always zero — the point of the comparison."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<StatelessResponder seen={self.packets_seen}"
            f" missed_captures={self.would_have_infected}>"
        )
