"""Baselines the paper compares against (or implies as the status quo).

* :mod:`repro.baselines.dedicated` — the conventional honeyfarm: one
  cold-booted, full-memory VM per address. Shows why on-demand cloning
  is necessary (boot latency loses the scanner; memory caps coverage at
  a handful of VMs per host).
* :mod:`repro.baselines.fullcopy` — cloning without delta
  virtualization: fast-ish instantiation but full per-VM memory (the
  A-ABL1 ablation).
* :mod:`repro.baselines.responder` — the opposite end of the fidelity
  spectrum: a stateless low-interaction responder (honeyd/iSink-class)
  that scales to arbitrary address space but can never be infected, so
  it yields no malware capture at all.
"""

from repro.baselines.dedicated import dedicated_farm, dedicated_vms_per_host
from repro.baselines.fullcopy import full_copy_farm
from repro.baselines.responder import StatelessResponder

__all__ = [
    "StatelessResponder",
    "dedicated_farm",
    "dedicated_vms_per_host",
    "full_copy_farm",
]
