"""The dedicated-honeypot baseline: one booted VM per address.

Before flash cloning, backing an address with a high-fidelity honeypot
meant booting a whole VM for it and keeping its full memory resident.
This module configures the standard :class:`~repro.core.honeyfarm.
Honeyfarm` into exactly that deployment (``clone_mode="boot"``) and
provides the closed-form capacity math the scalability comparison
(F-SCALE) tabulates.

Two effects the experiments surface:

* **Latency** — a cold boot takes ~43 s; a scanner's follow-up exploit
  packets arrive within seconds and hit a VM that is still booting
  (queued at best, dropped at worst), so most capture opportunities are
  lost.
* **Memory** — each VM charges its full image, so a 2 GiB host holds
  ~15 concurrent 128 MiB honeypots versus hundreds under delta
  virtualization.
"""

from __future__ import annotations

from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm

__all__ = ["dedicated_farm", "dedicated_vms_per_host"]


def dedicated_farm(config: HoneyfarmConfig) -> Honeyfarm:
    """A farm whose VMs are cold-booted with private memory images."""
    return Honeyfarm(config.with_overrides(clone_mode="boot"))


def dedicated_vms_per_host(
    host_memory_bytes: int,
    image_bytes: int,
    reserved_fraction: float = 0.05,
) -> int:
    """How many always-on full-memory honeypots one host can hold."""
    if image_bytes <= 0:
        raise ValueError(f"image_bytes must be positive: {image_bytes!r}")
    usable = host_memory_bytes * (1.0 - reserved_fraction)
    return int(usable // image_bytes)
