"""The full-copy cloning ablation (A-ABL1).

Clone-on-demand *without* delta virtualization: a new VM still skips the
guest boot (it is forked from the reference snapshot), but its memory is
eagerly copied rather than CoW-shared. Isolates the two halves of the
paper's scalability claim — latency (flash cloning) and memory (delta
virtualization) — by keeping the first and removing the second.
"""

from __future__ import annotations

from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm

__all__ = ["full_copy_farm"]


def full_copy_farm(config: HoneyfarmConfig) -> Honeyfarm:
    """A farm that clones by copying the entire memory image."""
    return Honeyfarm(config.with_overrides(clone_mode="full-copy"))
