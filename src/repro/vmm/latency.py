"""Control-plane cost model for cloning, booting, and copying.

The paper's Table 1 breaks flash-clone latency into control-plane stages
and reports a total of roughly half a second — dominated not by memory
work (delta virtualization makes that nearly free) but by the management
toolstack and device plumbing. We encode that breakdown as a
:class:`CloneCostModel` whose stage costs are *simulated* milliseconds
charged on the event clock, with small lognormal jitter so latency
histograms have realistic spread.

Calibration: the default stage costs below sum to 521 ms, the headline
flash-clone figure, apportioned to match the paper's qualitative
breakdown (toolstack overhead largest; raw hypervisor domain creation and
CoW page-table setup small). The boot-from-scratch comparator is tens of
seconds, and the full-copy ablation adds a per-page memcpy term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.rand import RandomStream

__all__ = [
    "BOOT_FROM_SCRATCH_SECONDS",
    "DEFAULT_STAGE_COSTS_MS",
    "FULL_COPY_BYTES_PER_SECOND",
    "StageCost",
    "CloneCostModel",
]

BOOT_FROM_SCRATCH_SECONDS = 43.0
"""Time to cold-boot a honeypot VM (dedicated-VM baseline); the paper
motivates flash cloning against boots of this order."""

FULL_COPY_BYTES_PER_SECOND = 2.0e9
"""Memory copy bandwidth for the full-copy ablation (~2 GB/s memcpy)."""

#: Default flash-clone stage costs in milliseconds, totalling 521 ms.
#: Stage names follow the clone pipeline:
#:   domain_create     — hypervisor creates the empty domain
#:   memory_cow_setup  — delta virtualization: mark parent pages CoW,
#:                       build the child's page-table overlay
#:   device_setup      — attach CoW block device and virtual NIC
#:   network_reconfig  — rewrite the clone's IP/MAC and refresh ARP state
#:   toolstack         — management-daemon overhead (Xend in the paper),
#:                       the dominant cost
DEFAULT_STAGE_COSTS_MS: Dict[str, float] = {
    "domain_create": 24.0,
    "memory_cow_setup": 31.0,
    "device_setup": 135.0,
    "network_reconfig": 52.0,
    "toolstack": 279.0,
}


@dataclass(frozen=True)
class StageCost:
    """One stage's charge for a single clone operation."""

    stage: str
    seconds: float


class CloneCostModel:
    """Produces per-stage latency charges for VM lifecycle operations.

    Parameters
    ----------
    stage_costs_ms:
        Mean cost per flash-clone stage, in milliseconds.
    jitter:
        Coefficient of variation applied lognormally per stage; 0 disables
        jitter (used by the latency-breakdown bench, which reports means).
    rng:
        Random stream for jitter; required when ``jitter > 0``.
    """

    def __init__(
        self,
        stage_costs_ms: Optional[Dict[str, float]] = None,
        jitter: float = 0.05,
        rng: Optional[RandomStream] = None,
        boot_seconds: float = BOOT_FROM_SCRATCH_SECONDS,
        copy_bytes_per_second: float = FULL_COPY_BYTES_PER_SECOND,
    ) -> None:
        self.stage_costs_ms = dict(stage_costs_ms or DEFAULT_STAGE_COSTS_MS)
        for stage, cost in self.stage_costs_ms.items():
            if cost < 0:
                raise ValueError(f"stage {stage!r} has negative cost {cost!r}")
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0: {jitter!r}")
        if jitter > 0 and rng is None:
            raise ValueError("jitter > 0 requires an rng")
        self.jitter = jitter
        self.rng = rng
        self.boot_seconds = boot_seconds
        self.copy_bytes_per_second = copy_bytes_per_second

    # ------------------------------------------------------------------ #

    def _jittered(self, mean_seconds: float) -> float:
        if self.jitter == 0 or self.rng is None or mean_seconds == 0:
            return mean_seconds
        # Lognormal with unit median scaled to the mean keeps costs positive.
        factor = self.rng.lognormal(0.0, self.jitter)
        return mean_seconds * factor

    def flash_clone_stages(self) -> List[StageCost]:
        """Per-stage charges for one flash-clone, in pipeline order."""
        return [
            StageCost(stage, self._jittered(ms / 1000.0))
            for stage, ms in self.stage_costs_ms.items()
        ]

    def flash_clone_total(self) -> float:
        """Total seconds for one flash clone."""
        return sum(s.seconds for s in self.flash_clone_stages())

    def mean_flash_clone_seconds(self) -> float:
        """The jitter-free total, for capacity planning."""
        return sum(self.stage_costs_ms.values()) / 1000.0

    def full_copy_stages(self, image_bytes: int) -> List[StageCost]:
        """Stages for the full-copy ablation: the flash-clone pipeline with
        ``memory_cow_setup`` replaced by an eager copy of the whole image."""
        stages = []
        for stage, ms in self.stage_costs_ms.items():
            if stage == "memory_cow_setup":
                copy_seconds = image_bytes / self.copy_bytes_per_second
                stages.append(StageCost("memory_full_copy", self._jittered(copy_seconds)))
            else:
                stages.append(StageCost(stage, self._jittered(ms / 1000.0)))
        return stages

    def full_copy_total(self, image_bytes: int) -> float:
        return sum(s.seconds for s in self.full_copy_stages(image_bytes))

    def reassign_stages(self) -> List[StageCost]:
        """Stages for binding a pre-created (warm-pool) VM to an address:
        only the network identity swap and a small dispatch overhead —
        the domain, memory, and devices already exist."""
        return [
            StageCost(
                "network_reconfig",
                self._jittered(self.stage_costs_ms["network_reconfig"] / 1000.0),
            ),
            StageCost("pool_dispatch", self._jittered(0.010)),
        ]

    def reassign_total(self) -> float:
        return sum(s.seconds for s in self.reassign_stages())

    def boot_stages(self) -> List[StageCost]:
        """Stages for a cold boot (dedicated-VM baseline): domain creation
        and device setup still apply, then the guest OS boot dwarfs them."""
        return [
            StageCost("domain_create", self._jittered(self.stage_costs_ms["domain_create"] / 1000.0)),
            StageCost("device_setup", self._jittered(self.stage_costs_ms["device_setup"] / 1000.0)),
            StageCost("guest_boot", self._jittered(self.boot_seconds)),
        ]

    def boot_total(self) -> float:
        return sum(s.seconds for s in self.boot_stages())

    def destroy_seconds(self) -> float:
        """Teardown charge: freeing overlay frames and detaching devices is
        far cheaper than creation; modelled as a flat 25 ms."""
        return self._jittered(0.025)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CloneCostModel total={self.mean_flash_clone_seconds()*1000:.0f}ms"
            f" jitter={self.jitter}>"
        )
