"""Simulated virtual machine monitor (the Xen stand-in).

The real Potemkin modifies Xen 3.0 so that new honeypot VMs are *forked*
from a live reference VM and share its memory copy-on-write. This package
reproduces that machinery at the level the paper's results depend on —
page-granular memory with exact sharing accounting, VM lifecycle, virtual
devices, and per-host capacity — with a calibrated latency model standing
in for the measured control-plane costs.

Modules
-------
* :mod:`repro.vmm.memory` — physical frame pool, reference images, and
  copy-on-write guest address spaces (the delta-virtualization mechanism).
* :mod:`repro.vmm.snapshot` — frozen reference snapshots taken from a
  booted reference VM.
* :mod:`repro.vmm.vm` — VM lifecycle (cloning → running → destroyed),
  network identity, activity tracking.
* :mod:`repro.vmm.devices` — virtual NICs and copy-on-write block devices.
* :mod:`repro.vmm.host` — a physical server: memory pool, VM slots, and
  admission control.
* :mod:`repro.vmm.latency` — the clone/boot/copy cost model, calibrated to
  the paper's reported stage costs.
"""

from repro.vmm.devices import VirtualBlockDevice, VirtualInterface
from repro.vmm.host import HostCapacityError, PhysicalHost
from repro.vmm.latency import BOOT_FROM_SCRATCH_SECONDS, CloneCostModel, StageCost
from repro.vmm.memory import (
    PAGE_SIZE,
    GuestAddressSpace,
    MachineMemory,
    OutOfMemoryError,
    ReferenceImage,
)
from repro.vmm.snapshot import ReferenceSnapshot
from repro.vmm.vm import VirtualMachine, VMState

__all__ = [
    "BOOT_FROM_SCRATCH_SECONDS",
    "CloneCostModel",
    "GuestAddressSpace",
    "HostCapacityError",
    "MachineMemory",
    "OutOfMemoryError",
    "PAGE_SIZE",
    "PhysicalHost",
    "ReferenceImage",
    "ReferenceSnapshot",
    "StageCost",
    "VMState",
    "VirtualBlockDevice",
    "VirtualInterface",
    "VirtualMachine",
]
