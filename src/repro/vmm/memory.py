"""Page-granular memory with copy-on-write sharing (delta virtualization).

This module is the mechanism behind the paper's key memory result: a
flash-cloned VM initially shares *every* page with its reference image and
pays physical memory only for pages it subsequently dirties, so hundreds
of honeypot VMs fit in the RAM that would conventionally hold a handful.

Representation
--------------
A clone's address space is a **base + overlay**:

* the *base* is an immutable :class:`ReferenceImage` whose frames were
  allocated once, when the reference snapshot was taken;
* the *overlay* is a per-VM dict mapping page number → private frame,
  populated on first write to each page (the CoW fault).

This makes clone creation O(1) in pages — exactly the property that makes
flash cloning fast in the real system, where only page tables are touched
— and makes the host's physical memory usage

    resident = image frames + Σ(per-VM overlay frames)

an exact quantity rather than an estimate. Frame *contents* are modelled
as integer version tags: the experiments depend on which pages are
private, not on their bytes, but tags let tests verify CoW isolation
(writer sees its own value, sharers still see the original).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "PAGE_SIZE",
    "OutOfMemoryError",
    "MachineMemory",
    "ReferenceImage",
    "GuestAddressSpace",
]

PAGE_SIZE = 4096
"""Bytes per page; delta virtualization operates at this granularity."""

_content_versions = itertools.count(1)


class OutOfMemoryError(Exception):
    """Raised when a host's physical frame pool is exhausted.

    The reclamation layer treats this as the signal to evict idle VMs
    (memory pressure is one of the paper's reclamation triggers).
    """


class MachineMemory:
    """A host's pool of physical page frames.

    Tracks allocation against a hard capacity; the honeyfarm's
    VMs-per-host results come directly from this accounting.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {capacity_bytes!r}")
        self.capacity_frames = capacity_bytes // PAGE_SIZE
        self.allocated_frames = 0
        self.peak_allocated_frames = 0
        self.allocation_failures = 0

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_frames * PAGE_SIZE

    @property
    def allocated_bytes(self) -> int:
        return self.allocated_frames * PAGE_SIZE

    @property
    def free_frames(self) -> int:
        return self.capacity_frames - self.allocated_frames

    def allocate(self, frames: int) -> None:
        """Claim ``frames`` physical frames or raise :class:`OutOfMemoryError`."""
        if frames < 0:
            raise ValueError(f"cannot allocate a negative frame count: {frames!r}")
        if self.allocated_frames + frames > self.capacity_frames:
            self.allocation_failures += 1
            raise OutOfMemoryError(
                f"requested {frames} frames, only {self.free_frames} free"
                f" of {self.capacity_frames}"
            )
        self.allocated_frames += frames
        if self.allocated_frames > self.peak_allocated_frames:
            self.peak_allocated_frames = self.allocated_frames

    def free(self, frames: int) -> None:
        """Return ``frames`` physical frames to the pool."""
        if frames < 0:
            raise ValueError(f"cannot free a negative frame count: {frames!r}")
        if frames > self.allocated_frames:
            raise ValueError(
                f"freeing {frames} frames but only {self.allocated_frames} allocated"
            )
        self.allocated_frames -= frames

    def can_fit(self, frames: int) -> bool:
        return self.allocated_frames + frames <= self.capacity_frames

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MachineMemory {self.allocated_frames}/{self.capacity_frames} frames"
            f" ({self.allocated_bytes // (1 << 20)} MiB used)>"
        )


class ReferenceImage:
    """The frozen memory image of a booted reference VM.

    Allocated once on a host; every clone's base layer. ``sharers`` counts
    attached address spaces so the image cannot be released while clones
    still depend on it.
    """

    def __init__(self, memory: MachineMemory, page_count: int, name: str = "reference") -> None:
        if page_count <= 0:
            raise ValueError(f"page_count must be positive: {page_count!r}")
        memory.allocate(page_count)
        self.memory = memory
        self.page_count = page_count
        self.name = name
        self.sharers = 0
        self.released = False
        # Base contents: version tag per page, fixed at snapshot time.
        base_version = next(_content_versions)
        self._contents: Dict[int, int] = {}
        self._default_version = base_version

    def content_of(self, page: int) -> int:
        """Version tag of ``page`` in the frozen image."""
        self._check_page(page)
        return self._contents.get(page, self._default_version)

    def stamp_page(self, page: int) -> None:
        """Give ``page`` a distinct content tag (used when building a
        snapshot whose pages must be distinguishable in tests)."""
        self._check_page(page)
        if self.released:
            raise ValueError("cannot modify a released reference image")
        self._contents[page] = next(_content_versions)

    def _check_page(self, page: int) -> None:
        if not (0 <= page < self.page_count):
            raise IndexError(f"page {page} outside image of {self.page_count} pages")

    def attach(self) -> None:
        if self.released:
            raise ValueError("cannot attach to a released reference image")
        self.sharers += 1

    def detach(self) -> None:
        if self.sharers <= 0:
            raise ValueError("detach without matching attach")
        self.sharers -= 1

    def release(self) -> None:
        """Free the image's frames; only legal once no clones remain."""
        if self.released:
            return
        if self.sharers > 0:
            raise ValueError(f"cannot release image with {self.sharers} sharers")
        self.memory.free(self.page_count)
        self.released = True

    @property
    def bytes(self) -> int:
        return self.page_count * PAGE_SIZE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReferenceImage {self.name!r} pages={self.page_count}"
            f" sharers={self.sharers}>"
        )


class GuestAddressSpace:
    """A VM's memory: a reference image plus a private CoW overlay.

    Two construction modes mirror the system under test and its ablation:

    * ``GuestAddressSpace(image)`` — **delta virtualization**: O(1)
      creation, zero initial private frames.
    * ``GuestAddressSpace(image, eager_copy=True)`` — the **full-copy
      baseline**: every page is copied (and charged) up front, as a
      conventional clone would.
    """

    def __init__(self, image: ReferenceImage, eager_copy: bool = False) -> None:
        image.attach()
        self.image = image
        self.memory = image.memory
        self.eager_copy = eager_copy
        self._overlay: Dict[int, int] = {}
        self.cow_faults = 0
        self.destroyed = False
        if eager_copy:
            try:
                self.memory.allocate(image.page_count)
            except OutOfMemoryError:
                image.detach()
                raise
            for page in range(image.page_count):
                self._overlay[page] = next(_content_versions)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def page_count(self) -> int:
        return self.image.page_count

    def read(self, page: int) -> int:
        """Content tag visible at ``page`` (overlay wins over base)."""
        self._check_alive()
        self.image._check_page(page)
        if page in self._overlay:
            return self._overlay[page]
        return self.image.content_of(page)

    def write(self, page: int, content: Optional[int] = None) -> int:
        """Dirty ``page``, taking a CoW fault (and a private frame) on the
        first write; returns the new content tag.

        ``content`` pins the page's content tag: two pages (in any VMs)
        written with the same tag hold identical bytes. Malware bodies
        use this — the same worm writes the same code everywhere — which
        is what content-based sharing analysis (future work in the paper,
        quantified by :mod:`repro.analysis.dedup`) keys on. ``None``
        means freshly generated, globally unique content.
        """
        self._check_alive()
        self.image._check_page(page)
        if page not in self._overlay:
            self.memory.allocate(1)
            self.cow_faults += 1
        tag = next(_content_versions) if content is None else content
        self._overlay[page] = tag
        return tag

    def private_page_contents(self) -> Iterator[Tuple[int, int]]:
        """Iterate (page number, content tag) over the private overlay."""
        return iter(self._overlay.items())

    def is_private(self, page: int) -> bool:
        """Whether ``page`` is backed by a private frame."""
        self.image._check_page(page)
        return page in self._overlay

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    @property
    def private_pages(self) -> int:
        """Pages backed by private frames — the VM's marginal footprint."""
        return len(self._overlay)

    @property
    def shared_pages(self) -> int:
        return self.image.page_count - len(self._overlay)

    @property
    def private_bytes(self) -> int:
        return self.private_pages * PAGE_SIZE

    def sharing_ratio(self) -> float:
        """Fraction of this VM's pages still shared with the image."""
        return self.shared_pages / self.image.page_count

    def private_page_numbers(self) -> Iterator[int]:
        return iter(self._overlay.keys())

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #

    def destroy(self) -> int:
        """Release all private frames and detach from the image.

        Returns the number of frames freed. Idempotent.
        """
        if self.destroyed:
            return 0
        freed = len(self._overlay)
        self.memory.free(freed)
        self._overlay.clear()
        self.image.detach()
        self.destroyed = True
        return freed

    def _check_alive(self) -> None:
        if self.destroyed:
            raise ValueError("address space has been destroyed")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<GuestAddressSpace private={self.private_pages}"
            f"/{self.image.page_count} pages>"
        )
