"""Page-granular memory with copy-on-write and content-based sharing.

This module is the mechanism behind the paper's key memory result: a
flash-cloned VM initially shares *every* page with its reference image and
pays physical memory only for pages it subsequently dirties, so hundreds
of honeypot VMs fit in the RAM that would conventionally hold a handful.

Representation
--------------
A clone's address space is a **base + overlay**:

* the *base* is an immutable :class:`ReferenceImage` whose frames were
  allocated once, when the reference snapshot was taken;
* the *overlay* is a per-VM dict mapping page number → content tag,
  populated on first write to each page (the CoW fault).

This makes clone creation O(1) in pages — exactly the property that makes
flash cloning fast in the real system, where only page tables are touched.
Frame *contents* are modelled as integer version tags: the experiments
depend on which pages are private, not on their bytes, but tags let tests
verify CoW isolation (writer sees its own value, sharers still see the
original).

Content-based sharing
---------------------
Delta virtualization collapses pages that were *never modified*. The
paper names the next multiplier — collapsing pages whose contents happen
to be identical even though they were written independently (ESX-style
transparent page sharing; Waldspurger, OSDI 2002). In a honeyfarm that
redundancy is enormous: every victim of the same worm carries the same
worm body.

When sharing is enabled (the default; ``content_sharing=False`` is the
ablation), each :class:`MachineMemory` owns a :class:`SharedFrameStore`
— a content tag → refcounted frame table. A dirty write interns its tag:
the first writer of a tag pays one physical frame, every later writer of
the same tag (any VM on the host) shares it at zero frame cost, and the
frame returns to the pool only when its last reference is rewritten or
destroyed. Every operation is O(1), so the host's physical usage

    resident = image frames + distinct private contents

stays an exact, cheaply-queryable quantity rather than a scanner result.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "PAGE_SIZE",
    "OutOfMemoryError",
    "MachineMemory",
    "SharedFrameStore",
    "ReferenceImage",
    "GuestAddressSpace",
]

PAGE_SIZE = 4096
"""Bytes per page; delta virtualization operates at this granularity."""

_content_versions = itertools.count(1)


class OutOfMemoryError(Exception):
    """Raised when a host's physical frame pool is exhausted.

    The reclamation layer treats this as the signal to evict idle VMs
    (memory pressure is one of the paper's reclamation triggers).
    """


class _SharedEntry:
    """One physical frame in the shared store: its reference count and,
    per holding address space, how many of that space's pages map it."""

    __slots__ = ("refs", "holders")

    def __init__(self) -> None:
        self.refs = 0
        self.holders: Dict["GuestAddressSpace", int] = {}


class SharedFrameStore:
    """Content tag → refcounted physical frame (transparent page sharing).

    One store per :class:`MachineMemory`; all overlay writes on the host
    go through it. Interning a tag either allocates a fresh frame (first
    sight of that content) or bumps the refcount of the existing frame
    (a *hit* — the sharing win). Releasing drops the refcount and frees
    the frame when it reaches zero.

    Invariants (checked by :meth:`audit` and the hypothesis ledger test):

    * ``total_refs`` == Σ over live address spaces of their overlay size;
    * ``distinct_frames`` == physical frames the store holds
      == the owning memory's ``private_frames``;
    * ``shared_frames`` == entries with ``refs >= 2``;
    * ``savings_frames`` == ``total_refs - distinct_frames`` — frames a
      sharing-off host would additionally need for the same contents.

    Every mutation also maintains each holder's ``_exclusive_frames``
    (frames only that space references), which is what makes reclamation
    projection O(1): destroying a VM returns exactly its exclusive
    frames, because shared frames outlive it.
    """

    def __init__(self, memory: "MachineMemory") -> None:
        self.memory = memory
        self._entries: Dict[int, _SharedEntry] = {}
        self.total_refs = 0
        self.shared_frames = 0     # entries currently referenced >= 2 times
        self.attach_hits = 0       # interns that matched an existing frame
        self.frames_recycled = 0   # sole-owner rewrites that reused the frame

    # ------------------------------------------------------------------ #
    # Accounting views
    # ------------------------------------------------------------------ #

    @property
    def distinct_frames(self) -> int:
        """Physical frames currently backing the store."""
        return len(self._entries)

    @property
    def savings_frames(self) -> int:
        """Frames avoided versus a no-sharing host with the same contents."""
        return self.total_refs - len(self._entries)

    def refs_of(self, tag: int) -> int:
        """Current reference count of ``tag`` (0 if not resident)."""
        entry = self._entries.get(tag)
        return entry.refs if entry is not None else 0

    # ------------------------------------------------------------------ #
    # Mutation — all O(1)
    # ------------------------------------------------------------------ #

    def intern(self, space: "GuestAddressSpace", tag: int) -> None:
        """Map one page of ``space`` to the frame holding ``tag``,
        allocating the frame if this content is new to the host.

        Raises :class:`OutOfMemoryError` (with no state change) when a
        fresh frame is needed and the pool is exhausted.
        """
        entry = self._entries.get(tag)
        if entry is None:
            self.memory._allocate_private(1)  # may raise; nothing mutated yet
            entry = _SharedEntry()
            self._entries[tag] = entry
            space._exclusive_frames += 1
        else:
            self.attach_hits += 1
            holders = entry.holders
            if len(holders) == 1 and space not in holders:
                # The sole current holder is gaining a co-sharer.
                next(iter(holders))._exclusive_frames -= 1
            if entry.refs == 1:
                self.shared_frames += 1
        entry.refs += 1
        entry.holders[space] = entry.holders.get(space, 0) + 1
        self.total_refs += 1

    def release(self, space: "GuestAddressSpace", tag: int) -> None:
        """Drop one of ``space``'s references to ``tag``, freeing the
        frame when the last reference anywhere goes."""
        entry = self._entries[tag]
        holders = entry.holders
        count = holders[space]
        entry.refs -= 1
        self.total_refs -= 1
        if entry.refs == 1:
            self.shared_frames -= 1
        if count == 1:
            del holders[space]
            if not holders:
                del self._entries[tag]
                self.memory._free_private(1)
                space._exclusive_frames -= 1
            elif len(holders) == 1:
                # Down to one surviving holder: it owns the frame now.
                next(iter(holders))._exclusive_frames += 1
        else:
            holders[space] = count - 1

    def exchange(self, space: "GuestAddressSpace", old_tag: int, new_tag: int) -> None:
        """Rewrite one of ``space``'s pages from ``old_tag`` to
        ``new_tag`` without ever dropping the old mapping on failure.

        The common case — a sole owner dirtying to content nobody else
        holds — reuses the existing frame in place: no allocator
        round-trip and no transient over-allocation. Otherwise the new
        tag is interned *first* (so an OOM leaves the page intact) and
        the old reference released after.
        """
        if old_tag == new_tag:
            return
        old_entry = self._entries[old_tag]
        if old_entry.refs == 1 and new_tag not in self._entries:
            del self._entries[old_tag]
            self._entries[new_tag] = old_entry
            self.frames_recycled += 1
            return
        self.intern(space, new_tag)  # may raise; old mapping still intact
        self.release(space, old_tag)

    # ------------------------------------------------------------------ #
    # Verification (tests and the sweep's ledger check)
    # ------------------------------------------------------------------ #

    def audit(self) -> None:
        """Recount every counter from the raw entries; raise
        :class:`AssertionError` on any drift. O(entries) — for tests and
        debugging, not the hot path."""
        refs = sum(e.refs for e in self._entries.values())
        if refs != self.total_refs:
            raise AssertionError(
                f"shared store drift: total_refs={self.total_refs} but entries sum to {refs}"
            )
        shared = sum(1 for e in self._entries.values() if e.refs >= 2)
        if shared != self.shared_frames:
            raise AssertionError(
                f"shared store drift: shared_frames={self.shared_frames}, recount {shared}"
            )
        for tag, entry in self._entries.items():
            if entry.refs != sum(entry.holders.values()):
                raise AssertionError(f"entry {tag}: refs disagree with holder multiset")
            if entry.refs <= 0:
                raise AssertionError(f"entry {tag}: resident with refs={entry.refs}")
        exclusive: Dict["GuestAddressSpace", int] = {}
        for entry in self._entries.values():
            if len(entry.holders) == 1:
                holder = next(iter(entry.holders))
                exclusive[holder] = exclusive.get(holder, 0) + 1
        for space, expect in exclusive.items():
            if space._exclusive_frames != expect:
                raise AssertionError(
                    f"space {space!r}: _exclusive_frames={space._exclusive_frames},"
                    f" recount {expect}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SharedFrameStore frames={self.distinct_frames}"
            f" refs={self.total_refs} shared={self.shared_frames}"
            f" saved={self.savings_frames}>"
        )


class MachineMemory:
    """A host's pool of physical page frames.

    Tracks allocation against a hard capacity; the honeyfarm's
    VMs-per-host results come directly from this accounting. The pool is
    split into invariant-checked sub-ledgers — ``image_frames`` (frozen
    reference images) and ``private_frames`` (VM overlays, deduplicated
    by the :class:`SharedFrameStore` when ``content_sharing`` is on).
    """

    def __init__(self, capacity_bytes: int, content_sharing: bool = True) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive: {capacity_bytes!r}")
        self.capacity_frames = capacity_bytes // PAGE_SIZE
        self.allocated_frames = 0
        self.peak_allocated_frames = 0
        self.allocation_failures = 0
        self.image_frames = 0
        self.private_frames = 0
        self.content_sharing = bool(content_sharing)
        self.sharing: Optional[SharedFrameStore] = (
            SharedFrameStore(self) if content_sharing else None
        )

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_frames * PAGE_SIZE

    @property
    def allocated_bytes(self) -> int:
        return self.allocated_frames * PAGE_SIZE

    @property
    def free_frames(self) -> int:
        return self.capacity_frames - self.allocated_frames

    @property
    def shared_frames(self) -> int:
        """Frames currently mapped by two or more page references."""
        return self.sharing.shared_frames if self.sharing is not None else 0

    @property
    def sharing_savings_frames(self) -> int:
        """Frames content sharing is saving right now (0 when disabled)."""
        return self.sharing.savings_frames if self.sharing is not None else 0

    def allocate(self, frames: int) -> None:
        """Claim ``frames`` physical frames or raise :class:`OutOfMemoryError`."""
        if frames < 0:
            raise ValueError(f"cannot allocate a negative frame count: {frames!r}")
        if self.allocated_frames + frames > self.capacity_frames:
            self.allocation_failures += 1
            raise OutOfMemoryError(
                f"requested {frames} frames, only {self.free_frames} free"
                f" of {self.capacity_frames}"
            )
        self.allocated_frames += frames
        if self.allocated_frames > self.peak_allocated_frames:
            self.peak_allocated_frames = self.allocated_frames

    def free(self, frames: int) -> None:
        """Return ``frames`` physical frames to the pool."""
        if frames < 0:
            raise ValueError(f"cannot free a negative frame count: {frames!r}")
        if frames > self.allocated_frames:
            raise ValueError(
                f"freeing {frames} frames but only {self.allocated_frames} allocated"
            )
        self.allocated_frames -= frames

    def can_fit(self, frames: int) -> bool:
        return self.allocated_frames + frames <= self.capacity_frames

    # ------------------------------------------------------------------ #
    # Sub-ledgers (image vs private); all frames flow through these so
    # the frame invariant below stays exact.
    # ------------------------------------------------------------------ #

    def _allocate_image(self, frames: int) -> None:
        self.allocate(frames)
        self.image_frames += frames

    def _free_image(self, frames: int) -> None:
        self.free(frames)
        self.image_frames -= frames

    def _allocate_private(self, frames: int) -> None:
        self.allocate(frames)
        self.private_frames += frames

    def _free_private(self, frames: int) -> None:
        self.free(frames)
        self.private_frames -= frames

    def check_frame_invariant(self) -> None:
        """Assert the frame ledger balances; O(1).

        ``allocated == image + private`` always, and with sharing on the
        private ledger must equal the store's distinct frame count (every
        private frame is owned by exactly one store entry).
        """
        if self.image_frames + self.private_frames != self.allocated_frames:
            raise AssertionError(
                f"frame ledger drift: image={self.image_frames}"
                f" + private={self.private_frames}"
                f" != allocated={self.allocated_frames}"
            )
        if self.sharing is not None and self.sharing.distinct_frames != self.private_frames:
            raise AssertionError(
                f"frame ledger drift: store holds {self.sharing.distinct_frames}"
                f" frames but private ledger says {self.private_frames}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MachineMemory {self.allocated_frames}/{self.capacity_frames} frames"
            f" ({self.allocated_bytes // (1 << 20)} MiB used)"
            f" sharing={'on' if self.sharing is not None else 'off'}>"
        )


class ReferenceImage:
    """The frozen memory image of a booted reference VM.

    Allocated once on a host; every clone's base layer. ``sharers`` counts
    attached address spaces so the image cannot be released while clones
    still depend on it.
    """

    def __init__(self, memory: MachineMemory, page_count: int, name: str = "reference") -> None:
        if page_count <= 0:
            raise ValueError(f"page_count must be positive: {page_count!r}")
        memory._allocate_image(page_count)
        self.memory = memory
        self.page_count = page_count
        self.name = name
        self.sharers = 0
        self.released = False
        # Base contents: version tag per page, fixed at snapshot time.
        base_version = next(_content_versions)
        self._contents: Dict[int, int] = {}
        self._default_version = base_version

    def content_of(self, page: int) -> int:
        """Version tag of ``page`` in the frozen image."""
        self._check_page(page)
        return self._contents.get(page, self._default_version)

    def stamp_page(self, page: int) -> None:
        """Give ``page`` a distinct content tag (used when building a
        snapshot whose pages must be distinguishable in tests)."""
        self._check_page(page)
        if self.released:
            raise ValueError("cannot modify a released reference image")
        self._contents[page] = next(_content_versions)

    def _check_page(self, page: int) -> None:
        if not (0 <= page < self.page_count):
            raise IndexError(f"page {page} outside image of {self.page_count} pages")

    def attach(self) -> None:
        if self.released:
            raise ValueError("cannot attach to a released reference image")
        self.sharers += 1

    def detach(self) -> None:
        if self.sharers <= 0:
            raise ValueError("detach without matching attach")
        self.sharers -= 1

    def release(self) -> None:
        """Free the image's frames; only legal once no clones remain."""
        if self.released:
            return
        if self.sharers > 0:
            raise ValueError(f"cannot release image with {self.sharers} sharers")
        self.memory._free_image(self.page_count)
        self.released = True

    @property
    def bytes(self) -> int:
        return self.page_count * PAGE_SIZE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReferenceImage {self.name!r} pages={self.page_count}"
            f" sharers={self.sharers}>"
        )


class GuestAddressSpace:
    """A VM's memory: a reference image plus a private CoW overlay.

    Two construction modes mirror the system under test and its ablation:

    * ``GuestAddressSpace(image)`` — **delta virtualization**: O(1)
      creation, zero initial private frames.
    * ``GuestAddressSpace(image, eager_copy=True)`` — the **full-copy
      baseline**: every page is copied (and charged) up front, as a
      conventional clone would.

    When the host memory has content sharing enabled, every overlay
    write routes through its :class:`SharedFrameStore`, so identical
    contents across (or within) VMs cost one frame.
    """

    def __init__(self, image: ReferenceImage, eager_copy: bool = False) -> None:
        image.attach()
        self.image = image
        self.memory = image.memory
        self._store = self.memory.sharing
        self.eager_copy = eager_copy
        self._overlay: Dict[int, int] = {}
        self.cow_faults = 0
        # Frames only this space references; maintained by the store.
        # Equals len(_overlay) when sharing is off.
        self._exclusive_frames = 0
        self.destroyed = False
        if eager_copy:
            try:
                if self._store is not None:
                    for page in range(image.page_count):
                        tag = next(_content_versions)
                        self._store.intern(self, tag)
                        self._overlay[page] = tag
                else:
                    self.memory._allocate_private(image.page_count)
                    for page in range(image.page_count):
                        self._overlay[page] = next(_content_versions)
            except OutOfMemoryError:
                # Roll back the partial copy; the caller sees a clean failure.
                for tag in self._overlay.values():
                    self._store.release(self, tag)
                self._overlay.clear()
                image.detach()
                raise

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    @property
    def page_count(self) -> int:
        return self.image.page_count

    def read(self, page: int) -> int:
        """Content tag visible at ``page`` (overlay wins over base)."""
        self._check_alive()
        self.image._check_page(page)
        if page in self._overlay:
            return self._overlay[page]
        return self.image.content_of(page)

    def write(self, page: int, content: Optional[int] = None) -> int:
        """Dirty ``page``, taking a CoW fault on the first write; returns
        the new content tag.

        ``content`` pins the page's content tag: two pages (in any VMs)
        written with the same tag hold identical bytes. Malware bodies
        use this — the same worm writes the same code everywhere — which
        is exactly what the shared-frame store collapses: with sharing
        on, only the first write of a tag on the host pays a frame.
        ``None`` means freshly generated, globally unique content.
        """
        self._check_alive()
        self.image._check_page(page)
        tag = next(_content_versions) if content is None else content
        store = self._store
        if page in self._overlay:
            if store is not None:
                store.exchange(self, self._overlay[page], tag)
        else:
            if store is not None:
                store.intern(self, tag)
            else:
                self.memory._allocate_private(1)
            self.cow_faults += 1
        self._overlay[page] = tag
        return tag

    def private_page_contents(self) -> Iterator[Tuple[int, int]]:
        """Iterate (page number, content tag) over the private overlay."""
        return iter(self._overlay.items())

    def is_private(self, page: int) -> bool:
        """Whether ``page`` has been dirtied away from the image."""
        self.image._check_page(page)
        return page in self._overlay

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    @property
    def private_pages(self) -> int:
        """Pages dirtied away from the image (logical overlay size)."""
        return len(self._overlay)

    @property
    def shared_pages(self) -> int:
        return self.image.page_count - len(self._overlay)

    @property
    def private_bytes(self) -> int:
        return self.private_pages * PAGE_SIZE

    @property
    def reclaimable_frames(self) -> int:
        """Physical frames destroying this space returns to the pool.

        Under content sharing only *exclusively held* frames come back —
        frames shared with other spaces survive the teardown — so this,
        not :attr:`private_pages`, is what reclamation must project.
        """
        if self._store is not None:
            return self._exclusive_frames
        return len(self._overlay)

    def sharing_ratio(self) -> float:
        """Fraction of this VM's pages still shared with the image."""
        return self.shared_pages / self.image.page_count

    def private_page_numbers(self) -> Iterator[int]:
        return iter(self._overlay.keys())

    # ------------------------------------------------------------------ #
    # Teardown
    # ------------------------------------------------------------------ #

    def destroy(self) -> int:
        """Release all private references and detach from the image.

        Returns the number of physical frames freed (under sharing this
        can be less than the overlay size). Idempotent.
        """
        if self.destroyed:
            return 0
        store = self._store
        if store is not None:
            before = self.memory.allocated_frames
            for tag in self._overlay.values():
                store.release(self, tag)
            freed = before - self.memory.allocated_frames
        else:
            freed = len(self._overlay)
            self.memory._free_private(freed)
        self._overlay.clear()
        self.image.detach()
        self.destroyed = True
        return freed

    def _check_alive(self) -> None:
        if self.destroyed:
            raise ValueError("address space has been destroyed")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<GuestAddressSpace private={self.private_pages}"
            f"/{self.image.page_count} pages>"
        )
