"""Virtual machine lifecycle and identity.

A :class:`VirtualMachine` ties together the mechanisms the other vmm
modules provide — a CoW address space, a virtual NIC, a CoW block device —
with the lifecycle the honeyfarm manages:

    CLONING -> RUNNING -> DESTROYED
                 |
                 v
               PAUSED -> RUNNING

``CLONING`` covers the flash-clone pipeline (the gateway queues packets
for the VM until it reaches ``RUNNING``). ``PAUSED`` models the paper's
option of detaining an interesting (e.g. infected) VM for later forensic
inspection instead of recycling it.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

from repro.net.addr import IPAddress
from repro.vmm.devices import VirtualBlockDevice, VirtualInterface
from repro.vmm.memory import GuestAddressSpace
from repro.vmm.snapshot import ReferenceSnapshot

__all__ = ["VMState", "VirtualMachine"]

_vm_ids = itertools.count(1)


class VMState(enum.Enum):
    """Lifecycle states; see module docstring for the transition graph."""

    CLONING = "cloning"
    RUNNING = "running"
    PAUSED = "paused"
    DESTROYED = "destroyed"


class VirtualMachine:
    """One honeypot VM instance.

    Not constructed directly by users — the flash-cloning engine
    (:mod:`repro.core.flash_clone`) builds VMs from snapshots, and the
    dedicated baseline builds them the slow way. ``guest`` is the
    behavioural model (:class:`repro.services.guest.GuestHost`) attached
    once the VM is running.
    """

    def __init__(
        self,
        snapshot: ReferenceSnapshot,
        address_space: GuestAddressSpace,
        ip: IPAddress,
        created_at: float,
        host_id: Optional[int] = None,
    ) -> None:
        self.vm_id = next(_vm_ids)
        self.snapshot = snapshot
        self.address_space = address_space
        self.vif = VirtualInterface(ip)
        self.disk = VirtualBlockDevice(snapshot.disk)
        self.state = VMState.CLONING
        self.created_at = created_at
        self.started_at: Optional[float] = None
        self.destroyed_at: Optional[float] = None
        self.last_activity = created_at
        self.host_id = host_id
        self.guest: Any = None
        self.detained = False
        self.parked = False  # waiting in the warm pool, exempt from reclamation

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    @property
    def ip(self) -> IPAddress:
        assert self.vif.ip is not None
        return self.vif.ip

    @property
    def personality(self) -> str:
        return self.snapshot.personality

    # ------------------------------------------------------------------ #
    # Lifecycle transitions
    # ------------------------------------------------------------------ #

    def start(self, now: float) -> None:
        """CLONING -> RUNNING (the clone pipeline finished)."""
        self._require_state(VMState.CLONING, "start")
        self.state = VMState.RUNNING
        self.started_at = now
        self.last_activity = now

    def pause(self, now: float) -> None:
        """RUNNING -> PAUSED (detain for inspection)."""
        self._require_state(VMState.RUNNING, "pause")
        self.state = VMState.PAUSED
        self.last_activity = now

    def begin_reassignment(self, ip: IPAddress, now: float) -> None:
        """RUNNING -> CLONING with a new network identity.

        The warm-pool path: a pre-created, pristine VM is bound to the
        address a packet just arrived for. The VM re-enters CLONING for
        the (short) identity-swap pipeline and :meth:`start` fires when
        it completes.
        """
        self._require_state(VMState.RUNNING, "reassign")
        self.state = VMState.CLONING
        self.vif.assign_ip(ip)
        self.last_activity = now

    def resume(self, now: float) -> None:
        """PAUSED -> RUNNING."""
        self._require_state(VMState.PAUSED, "resume")
        self.state = VMState.RUNNING
        self.last_activity = now

    def destroy(self, now: float) -> int:
        """Any live state -> DESTROYED; releases memory and devices.

        Returns the number of private frames freed. Idempotent.
        """
        if self.state is VMState.DESTROYED:
            return 0
        self.state = VMState.DESTROYED
        self.destroyed_at = now
        freed = self.address_space.destroy()
        self.disk.detach()
        return freed

    def _require_state(self, expected: VMState, action: str) -> None:
        if self.state is not expected:
            raise ValueError(
                f"cannot {action} VM {self.vm_id} in state {self.state.value}"
                f" (expected {expected.value})"
            )

    # ------------------------------------------------------------------ #
    # Activity tracking (drives idle-timeout reclamation)
    # ------------------------------------------------------------------ #

    def touch(self, now: float) -> None:
        """Record network activity at ``now``."""
        self.last_activity = now

    def idle_for(self, now: float) -> float:
        return now - self.last_activity

    @property
    def is_live(self) -> bool:
        return self.state in (VMState.CLONING, VMState.RUNNING, VMState.PAUSED)

    @property
    def private_pages(self) -> int:
        return self.address_space.private_pages

    @property
    def private_bytes(self) -> int:
        return self.address_space.private_bytes

    @property
    def reclaimable_frames(self) -> int:
        """Physical frames destroying this VM frees (excludes frames the
        content-sharing store still shares with other VMs)."""
        return self.address_space.reclaimable_frames

    def lifetime(self, now: float) -> float:
        """Seconds alive so far (or total, if destroyed)."""
        end = self.destroyed_at if self.destroyed_at is not None else now
        return end - self.created_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<VM {self.vm_id} ip={self.vif.ip} {self.state.value}"
            f" private={self.private_pages}p>"
        )
