"""Virtual devices: network interfaces and copy-on-write block devices.

Flash cloning must give each clone a working set of devices without
per-clone state of any size: the NIC is just an identity (MAC + IP,
rewritten at clone time — the step the paper's network_reconfig stage pays
for), and the disk is a CoW overlay over a shared base image, the block
analogue of delta virtualization.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Set

from repro.net.addr import IPAddress

__all__ = ["VirtualInterface", "VirtualBlockDevice", "DiskImage"]

_mac_counter = itertools.count(1)

BLOCK_SIZE = 4096
"""Bytes per disk block; CoW granularity for the block device."""


def _generate_mac(index: int) -> str:
    """Locally-administered MAC in the honeyfarm's range."""
    return "02:70:6b:{:02x}:{:02x}:{:02x}".format(
        (index >> 16) & 0xFF, (index >> 8) & 0xFF, index & 0xFF
    )


class VirtualInterface:
    """A clone's virtual NIC: its impersonated network identity.

    The IP address is mutable — that's the whole point: the gateway
    assigns the clone whichever dark address the triggering packet
    targeted, after the VM was forked from a reference with a placeholder
    address.
    """

    def __init__(self, ip: Optional[IPAddress] = None) -> None:
        self.mac = _generate_mac(next(_mac_counter))
        self.ip = ip
        self.packets_in = 0
        self.packets_out = 0
        self.bytes_in = 0
        self.bytes_out = 0

    def assign_ip(self, ip: IPAddress) -> None:
        """Rewrite the interface's IP (the clone-time identity swap)."""
        self.ip = ip

    def account_in(self, size: int) -> None:
        self.packets_in += 1
        self.bytes_in += size

    def account_out(self, size: int) -> None:
        self.packets_out += 1
        self.bytes_out += size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VirtualInterface ip={self.ip} mac={self.mac}>"


class DiskImage:
    """A shared, read-only base disk image.

    ``sharers`` mirrors :class:`~repro.vmm.memory.ReferenceImage`; the
    image cannot be retired while clones still overlay it.
    """

    def __init__(self, block_count: int, name: str = "base-disk") -> None:
        if block_count <= 0:
            raise ValueError(f"block_count must be positive: {block_count!r}")
        self.block_count = block_count
        self.name = name
        self.sharers = 0

    @property
    def bytes(self) -> int:
        return self.block_count * BLOCK_SIZE

    def attach(self) -> None:
        self.sharers += 1

    def detach(self) -> None:
        if self.sharers <= 0:
            raise ValueError("detach without matching attach")
        self.sharers -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DiskImage {self.name!r} blocks={self.block_count} sharers={self.sharers}>"


class VirtualBlockDevice:
    """A clone's disk: CoW overlay over a shared :class:`DiskImage`.

    Tracks which blocks the clone has written; ``private_blocks`` is the
    clone's marginal disk footprint, reported by the memory-economics
    experiment alongside private memory pages.
    """

    def __init__(self, image: DiskImage) -> None:
        image.attach()
        self.image = image
        self._dirty: Set[int] = set()
        self.reads = 0
        self.writes = 0
        self.detached = False

    def read(self, block: int) -> bool:
        """Read one block; returns True if served from the private overlay."""
        self._check(block)
        self.reads += 1
        return block in self._dirty

    def write(self, block: int) -> bool:
        """Write one block; returns True if this was the first write (a CoW
        block allocation)."""
        self._check(block)
        self.writes += 1
        if block in self._dirty:
            return False
        self._dirty.add(block)
        return True

    @property
    def private_blocks(self) -> int:
        return len(self._dirty)

    def dirty_block_numbers(self):
        """Iterator over the blocks this clone has written (forensics)."""
        return iter(self._dirty)

    @property
    def private_bytes(self) -> int:
        return self.private_blocks * BLOCK_SIZE

    def detach(self) -> None:
        """Drop the overlay and release the base image reference."""
        if self.detached:
            return
        self._dirty.clear()
        self.image.detach()
        self.detached = True

    def _check(self, block: int) -> None:
        if self.detached:
            raise ValueError("block device has been detached")
        if not (0 <= block < self.image.block_count):
            raise IndexError(f"block {block} outside image of {self.image.block_count}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VirtualBlockDevice private={self.private_blocks} blocks>"
