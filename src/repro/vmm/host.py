"""Physical honeyfarm servers.

A :class:`PhysicalHost` owns a frame pool, the reference snapshots resident
on it, and the set of live VMs. It enforces the two admission limits the
paper discusses: physical memory (the binding constraint once delta
virtualization is on) and a VM-count ceiling standing in for other
per-domain costs (hypervisor structures, shadow page tables, CPU).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional

from repro.vmm.memory import MachineMemory
from repro.vmm.snapshot import ReferenceSnapshot
from repro.vmm.vm import VirtualMachine, VMState

__all__ = ["HostCapacityError", "PhysicalHost"]

_host_ids = itertools.count(1)

DEFAULT_HOST_MEMORY_BYTES = 2 * (1 << 30)
"""2 GiB, matching the class of server in the paper's testbed."""

DEFAULT_MAX_VMS = 512
"""Per-host domain ceiling; the paper demonstrated 116 concurrent VMs and
argues ~10x headroom with further toolstack work, so the simulator's
default ceiling is set above the demonstrated figure."""


class HostCapacityError(Exception):
    """Raised when a host cannot admit another VM (memory or VM ceiling).

    The honeyfarm orchestrator catches this to trigger reclamation or to
    spill the clone onto another host.
    """


class PhysicalHost:
    """One server in the honeyfarm cluster."""

    def __init__(
        self,
        memory_bytes: int = DEFAULT_HOST_MEMORY_BYTES,
        max_vms: int = DEFAULT_MAX_VMS,
        name: Optional[str] = None,
        host_id: Optional[int] = None,
        content_sharing: bool = True,
    ) -> None:
        if max_vms <= 0:
            raise ValueError(f"max_vms must be positive: {max_vms!r}")
        # Callers that own a cluster (the Honeyfarm) pass farm-local ids so
        # two identically-seeded farms in one process build identical
        # clusters; the process-global counter is only the standalone
        # fallback.
        self.host_id = next(_host_ids) if host_id is None else int(host_id)
        self.name = name or f"host-{self.host_id}"
        self.memory = MachineMemory(memory_bytes, content_sharing=content_sharing)
        self.max_vms = max_vms
        self.snapshots: Dict[str, ReferenceSnapshot] = {}
        self._vms: Dict[int, VirtualMachine] = {}
        self.vms_created_total = 0
        self.vms_destroyed_total = 0
        self.peak_live_vms = 0
        self.failed = False
        self.failures_total = 0
        self.repairs_total = 0

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #

    def install_snapshot(self, snapshot: ReferenceSnapshot) -> None:
        """Make a reference snapshot resident (frames already charged to
        this host's pool by the snapshot's constructor)."""
        if snapshot.image.memory is not self.memory:
            raise ValueError(
                f"snapshot {snapshot.name!r} was built against a different host's memory"
            )
        if snapshot.personality in self.snapshots:
            raise ValueError(
                f"host {self.name} already has a snapshot for {snapshot.personality!r}"
            )
        self.snapshots[snapshot.personality] = snapshot

    def snapshot_for(self, personality: str) -> ReferenceSnapshot:
        """The resident snapshot for ``personality`` (KeyError if absent)."""
        return self.snapshots[personality]

    # ------------------------------------------------------------------ #
    # VM admission and tracking
    # ------------------------------------------------------------------ #

    @property
    def live_vms(self) -> int:
        return len(self._vms)

    def has_vm_slot(self) -> bool:
        return not self.failed and self.live_vms < self.max_vms

    def admit(self, vm: VirtualMachine) -> None:
        """Register a newly created VM on this host."""
        if self.failed:
            raise HostCapacityError(f"{self.name} is down; repair it first")
        if not self.has_vm_slot():
            raise HostCapacityError(
                f"{self.name} at VM ceiling ({self.max_vms}); reclaim first"
            )
        vm.host_id = self.host_id
        self._vms[vm.vm_id] = vm
        self.vms_created_total += 1
        if self.live_vms > self.peak_live_vms:
            self.peak_live_vms = self.live_vms

    def evict(self, vm: VirtualMachine, now: float) -> int:
        """Destroy and deregister a VM; returns frames freed."""
        if vm.vm_id not in self._vms:
            raise KeyError(f"VM {vm.vm_id} is not on {self.name}")
        freed = vm.destroy(now)
        del self._vms[vm.vm_id]
        self.vms_destroyed_total += 1
        return freed

    def get_vm(self, vm_id: int) -> Optional[VirtualMachine]:
        return self._vms.get(vm_id)

    def vms(self) -> Iterator[VirtualMachine]:
        """Iterate live VMs (snapshot list, safe to evict while iterating)."""
        return iter(list(self._vms.values()))

    def idle_vms(self, now: float, threshold: float) -> List[VirtualMachine]:
        """Running VMs idle for at least ``threshold`` seconds, most idle
        first — the reclamation order the idle-timeout policy uses."""
        idle = [
            vm
            for vm in self._vms.values()
            if vm.state is VMState.RUNNING
            and not vm.parked
            and vm.idle_for(now) >= threshold
        ]
        idle.sort(key=lambda vm: vm.last_activity)
        return idle

    # ------------------------------------------------------------------ #
    # Crash and repair (the chaos subsystem's mechanism layer)
    # ------------------------------------------------------------------ #

    def fail(self, now: float) -> List[VirtualMachine]:
        """Crash the host: every resident VM is destroyed and admission
        is refused until :meth:`repair`.

        Returns the destroyed VMs so the orchestrator can unwind the
        state bound to them (gateway maps, pending queues, pool slots).
        The reference snapshots stay accounted against the frame pool: a
        repair models a reboot that re-imports the same images.
        """
        if self.failed:
            raise ValueError(f"{self.name} is already down")
        self.failed = True
        self.failures_total += 1
        victims = list(self._vms.values())
        for vm in victims:
            vm.destroy(now)
        self._vms.clear()
        self.vms_destroyed_total += len(victims)
        return victims

    def repair(self) -> None:
        """Bring a crashed host back into admission rotation."""
        if not self.failed:
            raise ValueError(f"{self.name} is not down")
        self.failed = False
        self.repairs_total += 1

    # ------------------------------------------------------------------ #
    # Capacity reporting
    # ------------------------------------------------------------------ #

    @property
    def memory_utilization(self) -> float:
        return self.memory.allocated_frames / self.memory.capacity_frames

    def total_private_pages(self) -> int:
        return sum(vm.private_pages for vm in self._vms.values())

    def total_reclaimable_frames(self) -> int:
        """Physical frames evicting every resident VM would return —
        less than :meth:`total_private_pages` once content sharing has
        collapsed duplicates."""
        return sum(vm.reclaimable_frames for vm in self._vms.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PhysicalHost {self.name!r} vms={self.live_vms}/{self.max_vms}"
            f" mem={self.memory.allocated_frames}/{self.memory.capacity_frames}f>"
        )
