"""Reference snapshots: the live template every honeypot is forked from.

A reference VM is booted once per host per personality (e.g. an unpatched
Windows web server), brought to a quiescent state with services listening,
then frozen. The snapshot owns a :class:`~repro.vmm.memory.ReferenceImage`
(physical frames stay resident) and a shared base
:class:`~repro.vmm.devices.DiskImage`; flash cloning forks both
copy-on-write.
"""

from __future__ import annotations

from typing import Optional

from repro.vmm.devices import DiskImage
from repro.vmm.memory import MachineMemory, PAGE_SIZE, ReferenceImage

__all__ = ["ReferenceSnapshot", "DEFAULT_IMAGE_BYTES", "DEFAULT_DISK_BLOCKS"]

DEFAULT_IMAGE_BYTES = 128 * (1 << 20)
"""Default guest memory size: 128 MiB, the configuration the paper's
memory-economics results are stated against."""

DEFAULT_DISK_BLOCKS = 512 * 1024
"""Default base disk: 512K blocks of 4 KiB = 2 GiB."""


class ReferenceSnapshot:
    """A frozen reference VM image on one host.

    Parameters
    ----------
    memory:
        The host frame pool the image's frames live in.
    personality:
        Name of the guest personality this snapshot was built from
        (resolved against :mod:`repro.services.personality` when clones
        are given behaviour).
    image_bytes:
        Guest physical memory size; rounded down to whole pages.
    """

    def __init__(
        self,
        memory: MachineMemory,
        personality: str = "windows-default",
        image_bytes: int = DEFAULT_IMAGE_BYTES,
        disk_blocks: int = DEFAULT_DISK_BLOCKS,
        name: Optional[str] = None,
    ) -> None:
        page_count = image_bytes // PAGE_SIZE
        if page_count <= 0:
            raise ValueError(f"image too small for one page: {image_bytes!r} bytes")
        self.personality = personality
        self.name = name or f"snapshot-{personality}"
        self.image = ReferenceImage(memory, page_count, name=self.name)
        self.disk = DiskImage(disk_blocks, name=f"{self.name}-disk")
        self.clones_created = 0

    @property
    def page_count(self) -> int:
        return self.image.page_count

    @property
    def image_bytes(self) -> int:
        return self.image.bytes

    @property
    def active_clones(self) -> int:
        """Clones whose address spaces still share this image."""
        return self.image.sharers

    def release(self) -> None:
        """Free the snapshot's resident frames (only once clone-free)."""
        self.image.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReferenceSnapshot {self.name!r} {self.image_bytes >> 20} MiB"
            f" clones={self.active_clones}>"
        )
