"""Flow keys and the gateway's flow table.

The gateway tracks flows for two reasons the paper calls out:

* **Dispatch** — subsequent packets of a flow must reach the same VM that
  handled the first packet, even if the address→VM binding has since been
  recycled.
* **Containment accounting** — outbound policy (rate limits, "one response
  flow per inbound flow") is stated in terms of flows, not packets.

Flows are identified by the canonical (sorted) 5-tuple so both directions
of a conversation map to the same record. Records expire after a
configurable idle interval; expiry is checked lazily on access and via an
explicit :meth:`FlowTable.expire_idle` sweep, so no timer per flow exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.addr import IPAddress
from repro.net.packet import Packet

__all__ = ["FlowKey", "FlowRecord", "FlowTable"]


@dataclass(frozen=True)
class FlowKey:
    """Direction-independent 5-tuple identifying a conversation."""

    addr_low: IPAddress
    port_low: int
    addr_high: IPAddress
    port_high: int
    protocol: int

    @classmethod
    def from_packet(cls, packet: Packet) -> "FlowKey":
        """Canonical key: endpoints ordered by (address, port)."""
        a = (packet.src, packet.src_port)
        b = (packet.dst, packet.dst_port)
        if (a[0].value, a[1]) <= (b[0].value, b[1]):
            low, high = a, b
        else:
            low, high = b, a
        return cls(
            addr_low=low[0],
            port_low=low[1],
            addr_high=high[0],
            port_high=high[1],
            protocol=packet.protocol,
        )

    def __str__(self) -> str:
        return (
            f"{self.addr_low}:{self.port_low}<->{self.addr_high}:{self.port_high}"
            f"/{self.protocol}"
        )


@dataclass
class FlowRecord:
    """Mutable per-flow state kept by the gateway."""

    key: FlowKey
    first_seen: float
    last_seen: float
    initiator: IPAddress
    packets: int = 0
    bytes: int = 0
    vm_id: Optional[int] = None
    tunnel_key: Optional[int] = None

    def touch(self, packet: Packet, now: float) -> None:
        """Account one more packet on this flow."""
        self.last_seen = now
        self.packets += 1
        self.bytes += packet.size

    def idle_for(self, now: float) -> float:
        return now - self.last_seen


class FlowTable:
    """Dictionary of live flows with idle-based expiry.

    ``idle_timeout`` matches the gateway's flow-inactivity horizon; once a
    flow has been silent that long it is forgotten, and a new packet on the
    same 5-tuple starts a fresh record (and may be dispatched to a new VM).
    """

    def __init__(self, idle_timeout: float = 60.0) -> None:
        if idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive: {idle_timeout!r}")
        self.idle_timeout = idle_timeout
        self._flows: Dict[FlowKey, FlowRecord] = {}
        self.expired_total = 0

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._flows

    def lookup(self, packet: Packet, now: float) -> Optional[FlowRecord]:
        """The live record for this packet's flow, or None.

        A record past its idle timeout is treated as absent (and removed),
        so callers never observe stale flows regardless of sweep timing.
        """
        key = FlowKey.from_packet(packet)
        record = self._flows.get(key)
        if record is None:
            return None
        if record.idle_for(now) > self.idle_timeout:
            del self._flows[key]
            self.expired_total += 1
            return None
        return record

    def observe(self, packet: Packet, now: float) -> Tuple[FlowRecord, bool]:
        """Account ``packet``; returns ``(record, is_new_flow)``."""
        record = self.lookup(packet, now)
        created = record is None
        if record is None:
            key = FlowKey.from_packet(packet)
            record = FlowRecord(
                key=key,
                first_seen=now,
                last_seen=now,
                initiator=packet.src,
            )
            self._flows[key] = record
        record.touch(packet, now)
        return record, created

    def expire_idle(self, now: float) -> List[FlowRecord]:
        """Remove and return every flow idle past the timeout."""
        expired = [
            record
            for record in self._flows.values()
            if record.idle_for(now) > self.idle_timeout
        ]
        for record in expired:
            del self._flows[record.key]
        self.expired_total += len(expired)
        return expired

    def flows_for_vm(self, vm_id: int) -> List[FlowRecord]:
        """All live flows currently bound to ``vm_id`` (used when a VM is
        reclaimed, to drop its residual flow state)."""
        return [r for r in self._flows.values() if r.vm_id == vm_id]

    def drop_vm(self, vm_id: int) -> int:
        """Forget all flows bound to a reclaimed VM; returns count dropped."""
        doomed = self.flows_for_vm(vm_id)
        for record in doomed:
            del self._flows[record.key]
        return len(doomed)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(list(self._flows.values()))
