"""Flow keys and the gateway's flow table.

The gateway tracks flows for two reasons the paper calls out:

* **Dispatch** — subsequent packets of a flow must reach the same VM that
  handled the first packet, even if the address→VM binding has since been
  recycled.
* **Containment accounting** — outbound policy (rate limits, "one response
  flow per inbound flow") is stated in terms of flows, not packets.

Flows are identified by the canonical (sorted) 5-tuple so both directions
of a conversation map to the same record. Records expire after a
configurable idle interval; expiry is checked lazily on access and via an
explicit :meth:`FlowTable.expire_idle` sweep, so no timer per flow exists.

This module sits on the gateway's per-packet fast path, so the table keeps
two auxiliary indexes updated in O(1) per operation instead of scanning
every live flow:

* a **per-VM index** (``vm_id`` → flows) so reclaiming a VM drops its
  residual flow state without touching unrelated flows, and
* **last-seen buckets** (coarse time buckets over ``last_seen``) so
  :meth:`expire_idle` visits only flows old enough to possibly be idle.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.addr import IPAddress
from repro.net.packet import Packet

__all__ = ["FlowKey", "FlowRecord", "FlowTable"]


class FlowKey:
    """Direction-independent 5-tuple identifying a conversation.

    Treat instances as immutable; the hash is computed once at
    construction (keys are hashed at least twice per packet).
    """

    __slots__ = ("addr_low", "port_low", "addr_high", "port_high", "protocol", "_hash")

    def __init__(
        self,
        addr_low: IPAddress,
        port_low: int,
        addr_high: IPAddress,
        port_high: int,
        protocol: int,
    ) -> None:
        self.addr_low = addr_low
        self.port_low = port_low
        self.addr_high = addr_high
        self.port_high = port_high
        self.protocol = protocol
        self._hash = hash(
            (addr_low.value, port_low, addr_high.value, port_high, protocol)
        )

    @classmethod
    def from_packet(cls, packet: Packet) -> "FlowKey":
        """Canonical key: endpoints ordered by (address, port)."""
        src, dst = packet.src, packet.dst
        src_port, dst_port = packet.src_port, packet.dst_port
        if (src.value, src_port) <= (dst.value, dst_port):
            return cls(src, src_port, dst, dst_port, packet.protocol)
        return cls(dst, dst_port, src, src_port, packet.protocol)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlowKey):
            return NotImplemented
        # Raw-int field compares: this runs on every flow-dict hit, and
        # going through IPAddress.__eq__ costs a method call per endpoint.
        return (
            self._hash == other._hash
            and self.port_low == other.port_low
            and self.port_high == other.port_high
            and self.protocol == other.protocol
            and self.addr_low.value == other.addr_low.value
            and self.addr_high.value == other.addr_high.value
        )

    def __str__(self) -> str:
        return (
            f"{self.addr_low}:{self.port_low}<->{self.addr_high}:{self.port_high}"
            f"/{self.protocol}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlowKey(addr_low={self.addr_low!r}, port_low={self.port_low},"
            f" addr_high={self.addr_high!r}, port_high={self.port_high},"
            f" protocol={self.protocol})"
        )


class FlowRecord:
    """Mutable per-flow state kept by the gateway.

    Binding a record to a VM (``record.vm_id = ...``) keeps the owning
    table's per-VM index consistent automatically; records detached from a
    table (expired, dropped, or constructed standalone) update only the
    attribute.
    """

    __slots__ = (
        "key",
        "first_seen",
        "last_seen",
        "initiator",
        "packets",
        "bytes",
        "tunnel_key",
        "_vm_id",
        "_table",
        "_bucket",
    )

    def __init__(
        self,
        key: FlowKey,
        first_seen: float,
        last_seen: float,
        initiator: IPAddress,
        packets: int = 0,
        bytes: int = 0,
        vm_id: Optional[int] = None,
        tunnel_key: Optional[int] = None,
    ) -> None:
        self.key = key
        self.first_seen = first_seen
        self.last_seen = last_seen
        self.initiator = initiator
        self.packets = packets
        self.bytes = bytes
        self.tunnel_key = tunnel_key
        self._vm_id = vm_id
        self._table: Optional["FlowTable"] = None
        self._bucket: Optional[int] = None

    @property
    def vm_id(self) -> Optional[int]:
        return self._vm_id

    @vm_id.setter
    def vm_id(self, value: Optional[int]) -> None:
        old = self._vm_id
        if value == old:
            return
        self._vm_id = value
        table = self._table
        if table is not None:
            table._rebind_vm(self, old, value)

    def touch(self, packet: Packet, now: float) -> None:
        """Account one more packet on this flow."""
        self.last_seen = now
        self.packets += 1
        self.bytes += packet.size

    def idle_for(self, now: float) -> float:
        return now - self.last_seen

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FlowRecord(key={self.key!r}, first_seen={self.first_seen},"
            f" last_seen={self.last_seen}, initiator={self.initiator!r},"
            f" packets={self.packets}, bytes={self.bytes}, vm_id={self._vm_id},"
            f" tunnel_key={self.tunnel_key})"
        )


class FlowTable:
    """Dictionary of live flows with idle-based expiry.

    ``idle_timeout`` matches the gateway's flow-inactivity horizon; once a
    flow has been silent that long it is forgotten, and a new packet on the
    same 5-tuple starts a fresh record (and may be dispatched to a new VM).
    """

    #: Buckets per idle-timeout window; coarser buckets mean fewer moves,
    #: finer buckets mean tighter expiry scans. 8 keeps both trivial.
    _BUCKETS_PER_TIMEOUT = 8

    def __init__(self, idle_timeout: float = 60.0) -> None:
        if idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive: {idle_timeout!r}")
        self.idle_timeout = idle_timeout
        self._flows: Dict[FlowKey, FlowRecord] = {}
        self._by_vm: Dict[int, Dict[FlowKey, FlowRecord]] = {}
        self._buckets: Dict[int, Dict[FlowKey, FlowRecord]] = {}
        self._granularity = max(idle_timeout / self._BUCKETS_PER_TIMEOUT, 1e-9)
        self.expired_total = 0

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, key: FlowKey) -> bool:
        return key in self._flows

    # ------------------------------------------------------------------ #
    # Index maintenance
    # ------------------------------------------------------------------ #

    def _rebind_vm(
        self, record: FlowRecord, old: Optional[int], new: Optional[int]
    ) -> None:
        if old is not None:
            flows = self._by_vm.get(old)
            if flows is not None:
                flows.pop(record.key, None)
                if not flows:
                    del self._by_vm[old]
        if new is not None:
            self._by_vm.setdefault(new, {})[record.key] = record

    def _place_in_bucket(self, record: FlowRecord, now: float) -> None:
        bucket = int(now / self._granularity)
        if bucket != record._bucket:
            if record._bucket is not None:
                old_bucket = self._buckets.get(record._bucket)
                if old_bucket is not None:
                    old_bucket.pop(record.key, None)
                    if not old_bucket:
                        del self._buckets[record._bucket]
            self._buckets.setdefault(bucket, {})[record.key] = record
            record._bucket = bucket

    def _remove(self, record: FlowRecord) -> None:
        del self._flows[record.key]
        if record._bucket is not None:
            bucket = self._buckets.get(record._bucket)
            if bucket is not None:
                bucket.pop(record.key, None)
                if not bucket:
                    del self._buckets[record._bucket]
        if record._vm_id is not None:
            flows = self._by_vm.get(record._vm_id)
            if flows is not None:
                flows.pop(record.key, None)
                if not flows:
                    del self._by_vm[record._vm_id]
        # Detach so later vm_id writes on the dead record cannot touch
        # the table's indexes.
        record._table = None
        record._bucket = None

    # ------------------------------------------------------------------ #
    # Per-packet operations
    # ------------------------------------------------------------------ #

    def lookup(self, packet: Packet, now: float) -> Optional[FlowRecord]:
        """The live record for this packet's flow, or None.

        A record past its idle timeout is treated as absent (and removed),
        so callers never observe stale flows regardless of sweep timing.
        """
        record = self._flows.get(FlowKey.from_packet(packet))
        if record is None:
            return None
        if now - record.last_seen > self.idle_timeout:
            self._remove(record)
            self.expired_total += 1
            return None
        return record

    def observe(self, packet: Packet, now: float) -> Tuple[FlowRecord, bool]:
        """Account ``packet``; returns ``(record, is_new_flow)``."""
        return self.observe_keyed(FlowKey.from_packet(packet), packet, now)

    def observe_keyed(
        self, key: FlowKey, packet: Packet, now: float
    ) -> Tuple[FlowRecord, bool]:
        """:meth:`observe` with the canonical key already in hand.

        The gateway's batched lane computes each packet's key exactly once
        and threads it through the flow table, the fidelity ladder, and
        same-flow reply routing — key construction (two tuple hashes) is
        otherwise the single largest per-packet allocation.
        """
        record = self._flows.get(key)
        if record is not None and now - record.last_seen > self.idle_timeout:
            self._remove(record)
            self.expired_total += 1
            record = None
        created = record is None
        if created:
            record = FlowRecord(
                key=key,
                first_seen=now,
                last_seen=now,
                initiator=packet.src,
            )
            record._table = self
            self._flows[key] = record
        record.touch(packet, now)
        self._place_in_bucket(record, now)
        return record, created

    def live_record(self, key: FlowKey, now: float) -> Optional[FlowRecord]:
        """The record under ``key`` if it is still live at ``now``.

        Applies exactly :meth:`observe_keyed`'s lazy-expiry rule (strict
        ``now - last_seen > idle_timeout``, counted in ``expired_total``)
        without touching the record — the gateway's span lane reads the
        table through this so its expiry accounting stays bit-identical
        to the per-event path's.
        """
        record = self._flows.get(key)
        if record is not None and now - record.last_seen > self.idle_timeout:
            self._remove(record)
            self.expired_total += 1
            return None
        return record

    def create(self, key: FlowKey, initiator: IPAddress, now: float) -> FlowRecord:
        """Register a brand-new flow record (no packet accounted yet).

        Mirrors the creation half of :meth:`observe_keyed`: the record is
        indexed and bucketed at ``now`` but carries zero packets/bytes —
        the span lane applies per-packet touch arithmetic itself. The
        record is built field-by-field and bucketed inline: this runs
        once per unique flow of a batched replay, where constructor and
        method-call overhead dominates.
        """
        record = FlowRecord.__new__(FlowRecord)
        record.key = key
        record.first_seen = now
        record.last_seen = now
        record.initiator = initiator
        record.packets = 0
        record.bytes = 0
        record.tunnel_key = None
        record._vm_id = None
        record._table = self
        bucket = int(now / self._granularity)
        record._bucket = bucket
        slot = self._buckets.get(bucket)
        if slot is None:
            slot = self._buckets[bucket] = {}
        slot[key] = record
        self._flows[key] = record
        return record

    # ------------------------------------------------------------------ #
    # Sweeps and reclamation
    # ------------------------------------------------------------------ #

    def discard(self, record: FlowRecord) -> None:
        """Forget ``record`` if it is live in this table (no-op otherwise).

        Used by the gateway to unwind a record created for a packet that
        was then refused (e.g. pending-queue overflow) — the flow never
        reached a VM, so it must not linger in the table.
        """
        if record._table is self:
            self._remove(record)

    def expire_idle(self, now: float) -> List[FlowRecord]:
        """Remove and return every flow idle past the timeout.

        Incremental: only buckets whose entire time range is old enough to
        contain expired flows are visited, so a sweep's cost tracks the
        number of *expirable* flows, not the number of live ones.
        """
        threshold = now - self.idle_timeout
        boundary = int(threshold / self._granularity)
        expired: List[FlowRecord] = []
        for index in sorted(b for b in self._buckets if b <= boundary):
            for record in list(self._buckets[index].values()):
                if now - record.last_seen > self.idle_timeout:
                    self._remove(record)
                    expired.append(record)
                else:
                    # Self-heal: a record touched outside observe() may sit
                    # in a stale bucket; refile it under its true last_seen.
                    self._place_in_bucket(record, record.last_seen)
        self.expired_total += len(expired)
        return expired

    def flows_for_vm(self, vm_id: int) -> List[FlowRecord]:
        """All live flows currently bound to ``vm_id`` (used when a VM is
        reclaimed, to drop its residual flow state)."""
        return list(self._by_vm.get(vm_id, {}).values())

    def drop_vm(self, vm_id: int) -> int:
        """Forget all flows bound to a reclaimed VM; returns count dropped."""
        doomed = self.flows_for_vm(vm_id)
        for record in doomed:
            self._remove(record)
        return len(doomed)

    def __iter__(self) -> Iterator[FlowRecord]:
        return iter(list(self._flows.values()))
