"""Point-to-point links with propagation delay, bandwidth, and loss.

Links connect border routers to the gateway and the gateway to honeyfarm
servers. The model is intentionally simple — fixed propagation delay plus
store-and-forward serialization at the configured bandwidth, with i.i.d.
random loss — because the paper's results are dominated by control-plane
latencies (cloning) and policy, not by queueing; but the serialization
term matters for the gateway-throughput experiment, so it is kept.

On top of the static parameters, a link carries optional *time-varying
impairment state* for the chaos subsystem (:mod:`repro.faults`): outage
windows (nothing delivered), loss bursts (extra loss layered on the base
rate), and latency spikes (extra propagation delay). Windows start at
the current sim time, expire lazily, and cost an un-impaired link a
single flag check per delivery. FIFO ordering is preserved across
impairment transitions: a packet submitted during a latency spike can
delay later packets, but never lets them overtake it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.rand import RandomStream

__all__ = ["Link"]


class Link:
    """Unidirectional link delivering objects to a sink callback.

    ``deliver(obj, size)`` schedules ``sink(obj)`` after
    ``propagation_delay + size / bandwidth`` seconds, unless the packet is
    lost. ``bandwidth`` is in bytes/second; ``None`` means infinite (no
    serialization delay). Deliveries on one link maintain FIFO order: a
    packet is never delivered before one submitted earlier (the link
    tracks when its transmitter frees up, and clamps arrivals so
    time-varying latency spikes cannot reorder in-flight packets).
    """

    def __init__(
        self,
        sim: Simulator,
        sink: Callable[[Any], None],
        propagation_delay: float = 0.0005,
        bandwidth: Optional[float] = 125_000_000.0,  # 1 Gb/s in bytes/s
        loss_rate: float = 0.0,
        rng: Optional[RandomStream] = None,
        name: str = "",
    ) -> None:
        if propagation_delay < 0:
            raise ValueError(f"propagation_delay must be >= 0: {propagation_delay!r}")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive or None: {bandwidth!r}")
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate!r}")
        if loss_rate > 0.0 and rng is None:
            raise ValueError("a lossy link needs an rng for loss decisions")
        self.sim = sim
        self.sink = sink
        self.propagation_delay = propagation_delay
        self.bandwidth = bandwidth
        self.loss_rate = loss_rate
        self.rng = rng
        self.name = name
        self.delivered = 0
        self.lost = 0
        self.lost_burst = 0
        self.lost_outage = 0
        self.bytes_delivered = 0
        self._transmitter_free_at = 0.0
        self._last_arrival = 0.0
        # Impairment windows (absolute sim times); `_impaired` is the
        # fast-path flag so a healthy link pays one falsy check.
        self._impaired = False
        self._down_until = 0.0
        self._burst_until = 0.0
        self._burst_loss_rate = 0.0
        self._delay_until = 0.0
        self._extra_delay = 0.0

    # ------------------------------------------------------------------ #
    # Impairment control (the chaos subsystem's surface)
    # ------------------------------------------------------------------ #

    def impair(
        self,
        duration: float,
        down: bool = False,
        loss_rate: Optional[float] = None,
        extra_delay: Optional[float] = None,
    ) -> None:
        """Open an impairment window of ``duration`` seconds from now.

        ``down`` blacks the link out entirely; ``loss_rate`` adds a loss
        burst on top of the base rate (1.0 = drop everything, usable
        without an rng); ``extra_delay`` adds a latency spike. Multiple
        calls extend or re-parameterize windows; they expire lazily on
        the next delivery after their end time.
        """
        if duration <= 0:
            raise ValueError(f"impairment duration must be positive: {duration!r}")
        until = self.sim.now + duration
        if down:
            self._down_until = max(self._down_until, until)
        if loss_rate is not None:
            if not (0.0 < loss_rate <= 1.0):
                raise ValueError(f"burst loss_rate must be in (0, 1]: {loss_rate!r}")
            if loss_rate < 1.0 and self.rng is None:
                raise ValueError("a loss burst below 1.0 needs an rng on the link")
            self._burst_loss_rate = loss_rate
            self._burst_until = max(self._burst_until, until)
        if extra_delay is not None:
            if extra_delay <= 0:
                raise ValueError(f"extra_delay must be positive: {extra_delay!r}")
            self._extra_delay = extra_delay
            self._delay_until = max(self._delay_until, until)
        if not (down or loss_rate is not None or extra_delay is not None):
            raise ValueError("impair() needs down, loss_rate, or extra_delay")
        self._impaired = True

    def clear_impairments(self) -> None:
        """Cancel every active impairment window immediately."""
        self._impaired = False
        self._down_until = self._burst_until = self._delay_until = 0.0
        self._burst_loss_rate = self._extra_delay = 0.0

    @property
    def impaired(self) -> bool:
        """Whether any impairment window covers the current sim time."""
        if not self._impaired:
            return False
        now = self.sim.now
        return now < self._down_until or now < self._burst_until or now < self._delay_until

    # ------------------------------------------------------------------ #
    # Delivery
    # ------------------------------------------------------------------ #

    def deliver(self, obj: Any, size: int) -> bool:
        """Submit ``obj`` (``size`` bytes) for delivery.

        Returns False if the packet was dropped (loss process, loss
        burst, or outage window).
        """
        loss = self.loss_rate
        extra = 0.0
        in_burst = False
        if self._impaired:
            now = self.sim.now
            if (
                now >= self._down_until
                and now >= self._burst_until
                and now >= self._delay_until
            ):
                self.clear_impairments()
            else:
                if now < self._down_until:
                    self.lost_outage += 1
                    return False
                if now < self._burst_until:
                    loss = min(1.0, loss + self._burst_loss_rate)
                    in_burst = True
                if now < self._delay_until:
                    extra = self._extra_delay
        if loss > 0.0 and (
            loss >= 1.0 or (self.rng is not None and self.rng.bernoulli(loss))
        ):
            if in_burst:
                self.lost_burst += 1
            else:
                self.lost += 1
            return False
        start = max(self.sim.now, self._transmitter_free_at)
        serialization = (size / self.bandwidth) if self.bandwidth is not None else 0.0
        self._transmitter_free_at = start + serialization
        arrival = self._transmitter_free_at + self.propagation_delay + extra
        # FIFO clamp: a latency spike on an earlier packet must delay this
        # one rather than let it overtake.
        if arrival < self._last_arrival:
            arrival = self._last_arrival
        self._last_arrival = arrival
        self.sim.schedule_at(arrival, self._arrive, obj, size)
        return True

    def _arrive(self, obj: Any, size: int) -> None:
        self.delivered += 1
        self.bytes_delivered += size
        self.sink(obj)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Link {self.name!r} delivered={self.delivered} lost={self.lost}"
            f" lost_burst={self.lost_burst} lost_outage={self.lost_outage}>"
        )
