"""Point-to-point links with propagation delay, bandwidth, and loss.

Links connect border routers to the gateway and the gateway to honeyfarm
servers. The model is intentionally simple — fixed propagation delay plus
store-and-forward serialization at the configured bandwidth, with i.i.d.
random loss — because the paper's results are dominated by control-plane
latencies (cloning) and policy, not by queueing; but the serialization
term matters for the gateway-throughput experiment, so it is kept.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.rand import RandomStream

__all__ = ["Link"]


class Link:
    """Unidirectional link delivering objects to a sink callback.

    ``deliver(obj, size)`` schedules ``sink(obj)`` after
    ``propagation_delay + size / bandwidth`` seconds, unless the packet is
    lost. ``bandwidth`` is in bytes/second; ``None`` means infinite (no
    serialization delay). Deliveries on one link maintain FIFO order: a
    packet is never delivered before one submitted earlier (the link
    tracks when its transmitter frees up).
    """

    def __init__(
        self,
        sim: Simulator,
        sink: Callable[[Any], None],
        propagation_delay: float = 0.0005,
        bandwidth: Optional[float] = 125_000_000.0,  # 1 Gb/s in bytes/s
        loss_rate: float = 0.0,
        rng: Optional[RandomStream] = None,
        name: str = "",
    ) -> None:
        if propagation_delay < 0:
            raise ValueError(f"propagation_delay must be >= 0: {propagation_delay!r}")
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive or None: {bandwidth!r}")
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError(f"loss_rate must be in [0, 1): {loss_rate!r}")
        if loss_rate > 0.0 and rng is None:
            raise ValueError("a lossy link needs an rng for loss decisions")
        self.sim = sim
        self.sink = sink
        self.propagation_delay = propagation_delay
        self.bandwidth = bandwidth
        self.loss_rate = loss_rate
        self.rng = rng
        self.name = name
        self.delivered = 0
        self.lost = 0
        self.bytes_delivered = 0
        self._transmitter_free_at = 0.0

    def deliver(self, obj: Any, size: int) -> bool:
        """Submit ``obj`` (``size`` bytes) for delivery.

        Returns False if the packet was dropped by the loss process.
        """
        if self.loss_rate > 0.0 and self.rng is not None and self.rng.bernoulli(self.loss_rate):
            self.lost += 1
            return False
        start = max(self.sim.now, self._transmitter_free_at)
        serialization = (size / self.bandwidth) if self.bandwidth is not None else 0.0
        self._transmitter_free_at = start + serialization
        arrival = self._transmitter_free_at + self.propagation_delay
        self.sim.schedule_at(arrival, self._arrive, obj, size)
        return True

    def _arrive(self, obj: Any, size: int) -> None:
        self.delivered += 1
        self.bytes_delivered += size
        self.sink(obj)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.name!r} delivered={self.delivered} lost={self.lost}>"
