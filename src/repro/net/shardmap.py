"""Shard routing over prefixes: which federation member owns an address.

The federation partitions the dark space by prefix; every gateway needs
a constant-time answer to "is this destination mine, a sibling shard's,
or the real Internet?" — the same divert decision the paper's upstream
routers make with per-/16 GRE tunnels. :class:`ShardMap` is that routing
table: per-shard prefix lists flattened into globally-disjoint sorted
integer ranges (the same bisect layout as
:class:`~repro.net.addr.AddressSpaceInventory`), looked up by address.

The map is deliberately built from *prefix strings*, so the identical
map can be reconstructed in every worker process from a plain picklable
spec — all shards, in all processes, must agree on the routing table and
on the registration order of the federation-wide inventory (the
reflection policy hashes into that flat index space; see
docs/FEDERATION.md).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

from repro.net.addr import AddressSpaceInventory, IPAddress, Prefix

__all__ = ["ShardMap"]


class ShardMap:
    """Maps dark addresses to the shard that owns them.

    Parameters
    ----------
    shard_prefixes:
        One sequence of prefix strings per shard, in shard order. The
        prefixes must be mutually disjoint across the whole federation;
        shard order is global protocol state (it fixes both shard
        indices and the federation inventory's flat-index layout), so
        every process must build the map from the same spec.
    """

    def __init__(self, shard_prefixes: Sequence[Sequence[str]]) -> None:
        if not shard_prefixes:
            raise ValueError("a shard map needs at least one shard")
        self.shard_prefixes: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(prefixes) for prefixes in shard_prefixes
        )
        parsed: List[Tuple[Prefix, int]] = []
        for shard, prefixes in enumerate(self.shard_prefixes):
            if not prefixes:
                raise ValueError(f"shard {shard} owns no prefixes")
            for text in prefixes:
                parsed.append((Prefix.parse(text), shard))
        # One federation-wide inventory validates global disjointness and
        # fixes the flat-index layout (registration order = shard order).
        self._inventory = AddressSpaceInventory([p for p, __ in parsed])
        ranges = sorted(
            (prefix.first.value, prefix.last.value, shard)
            for prefix, shard in parsed
        )
        self._starts = [r[0] for r in ranges]
        self._ends = [r[1] for r in ranges]
        self._shards = [r[2] for r in ranges]

    @property
    def shard_count(self) -> int:
        return len(self.shard_prefixes)

    @property
    def global_inventory(self) -> AddressSpaceInventory:
        """Every shard's prefixes as one inventory, in shard order.

        This is the address space a federation-aware reflection policy
        hashes over: the flat-index layout is identical in every process
        because it derives from the shard spec alone.
        """
        return self._inventory

    def shard_for(self, addr: IPAddress) -> Optional[int]:
        """The shard owning ``addr`` (None = outside every shard)."""
        idx = bisect_right(self._starts, addr.value) - 1
        if idx < 0 or addr.value > self._ends[idx]:
            return None
        return self._shards[idx]

    def covers(self, addr: IPAddress) -> bool:
        return self.shard_for(addr) is not None

    def addresses_of(self, shard: int) -> int:
        """Dark addresses owned by ``shard`` (the placement load metric)."""
        return sum(
            Prefix.parse(text).size for text in self.shard_prefixes[shard]
        )

    def spec(self) -> Tuple[Tuple[str, ...], ...]:
        """The plain-string spec this map was built from (picklable; a
        worker reconstructs the identical map with ``ShardMap(spec)``)."""
        return self.shard_prefixes

    @classmethod
    def from_configs(cls, shard_configs: Sequence) -> "ShardMap":
        """Build from per-shard :class:`HoneyfarmConfig` objects."""
        return cls([config.prefixes for config in shard_configs])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ShardMap shards={self.shard_count}"
            f" addresses={self._inventory.total_addresses}>"
        )
