"""Border routers that divert dark-space traffic into the honeyfarm.

Each participating network runs a border router configured with the dark
prefixes it contributes. Inbound packets destined for those prefixes are
GRE-encapsulated and forwarded over a link to the gateway; everything else
follows the normal routing path (modelled as a counter — the simulator
does not carry production traffic). In the reverse direction the router
decapsulates honeypot replies arriving from the gateway and emits them
toward the original remote host.

The router is where the illusion starts: from the outside, replies appear
to come from the dark addresses themselves.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.net.addr import IPAddress, Prefix
from repro.net.gre import GrePacket, GreTunnel, decapsulate, encapsulate
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.metrics import MetricRegistry

__all__ = ["BorderRouter"]


class BorderRouter:
    """A border router contributing dark prefixes to the honeyfarm.

    Parameters
    ----------
    tunnel:
        The GRE tunnel descriptor naming this router and the gateway.
    dark_prefixes:
        Prefixes whose traffic is diverted.
    uplink:
        Link carrying GRE packets to the gateway.
    external_sink:
        Callback receiving decapsulated honeypot replies headed back to
        the Internet (the workload layer observes these to close loops,
        e.g. a scanner noticing its probe was answered).
    """

    def __init__(
        self,
        tunnel: GreTunnel,
        dark_prefixes: Iterable[Prefix],
        uplink: Link,
        external_sink: Optional[Callable[[Packet], None]] = None,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self.tunnel = tunnel
        self.dark_prefixes: List[Prefix] = list(dark_prefixes)
        if not self.dark_prefixes:
            raise ValueError("a border router must contribute at least one prefix")
        self.uplink = uplink
        self.external_sink = external_sink
        self.metrics = metrics or MetricRegistry()

    def covers(self, addr: IPAddress) -> bool:
        """Whether ``addr`` is in a prefix this router diverts."""
        return any(p.contains(addr) for p in self.dark_prefixes)

    # ------------------------------------------------------------------ #
    # Internet -> honeyfarm
    # ------------------------------------------------------------------ #

    def receive_from_internet(self, packet: Packet) -> bool:
        """Handle a packet arriving from the Internet side.

        Returns True if the packet was diverted to the honeyfarm, False if
        it followed the normal routing path (counted and dropped here).
        """
        if packet.ttl <= 0:
            self.metrics.counter("router.ttl_expired").increment()
            return False
        if not self.covers(packet.dst):
            self.metrics.counter("router.passthrough").increment()
            return False
        gre = encapsulate(self.tunnel, packet.decremented_ttl())
        self.metrics.counter("router.diverted").increment()
        self.uplink.deliver(gre, gre.size)
        return True

    # ------------------------------------------------------------------ #
    # honeyfarm -> Internet
    # ------------------------------------------------------------------ #

    def receive_from_gateway(self, gre: GrePacket) -> None:
        """Decapsulate a honeypot reply and emit it toward the Internet."""
        if gre.tunnel.key != self.tunnel.key:
            self.metrics.counter("router.wrong_tunnel").increment()
            return
        packet = decapsulate(gre)
        self.metrics.counter("router.replies_out").increment()
        if self.external_sink is not None:
            self.external_sink(packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<BorderRouter key={self.tunnel.key}"
            f" prefixes={[str(p) for p in self.dark_prefixes]}>"
        )
