"""GRE tunnelling between border routers and the honeyfarm gateway.

In the deployed system, participating networks configure their border
routers to encapsulate packets destined for dark prefixes in GRE and send
them to the gateway, which decapsulates, processes, and (for honeypot
replies) re-encapsulates so replies exit through the original network and
keep the illusion intact. We model the encapsulation explicitly — tunnel
key, outer endpoints, the 24-byte overhead — because the gateway's
bookkeeping (which tunnel a packet arrived on, where replies must return)
is part of the paper's architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addr import IPAddress
from repro.net.packet import Packet

__all__ = ["GRE_OVERHEAD_BYTES", "GreTunnel", "GrePacket", "encapsulate", "decapsulate"]

# Outer IPv4 header (20 bytes) + GRE header with key (8 bytes).
GRE_OVERHEAD_BYTES = 28


@dataclass(frozen=True)
class GreTunnel:
    """One configured tunnel from a border router to the gateway.

    ``key`` identifies the tunnel (and hence the contributing network) in
    the GRE header; the gateway uses it to return honeypot replies through
    the network that owns the impersonated address.
    """

    key: int
    router_endpoint: IPAddress
    gateway_endpoint: IPAddress

    def __post_init__(self) -> None:
        if not (0 <= self.key <= 0xFFFFFFFF):
            raise ValueError(f"GRE key out of range: {self.key!r}")


@dataclass(frozen=True)
class GrePacket:
    """An inner packet wrapped in a GRE envelope."""

    tunnel: GreTunnel
    inner: Packet

    @property
    def size(self) -> int:
        """Wire size including encapsulation overhead."""
        return self.inner.size + GRE_OVERHEAD_BYTES


def encapsulate(tunnel: GreTunnel, packet: Packet) -> GrePacket:
    """Wrap ``packet`` for transit over ``tunnel``."""
    return GrePacket(tunnel=tunnel, inner=packet)


def decapsulate(gre: GrePacket) -> Packet:
    """Unwrap the inner packet (the envelope is discarded)."""
    return gre.inner
