"""Packet records: IP header fields plus TCP/UDP/ICMP specifics.

Packets are modelled as records, not byte strings: the honeyfarm's
behaviour depends on header fields (addresses, ports, protocol, TCP flags)
and on an opaque ``payload`` tag that the guest/worm models interpret
(e.g. ``"exploit:slammer"``), never on wire encoding. Payload *size* is
carried separately so byte counters and bandwidth models still work.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from enum import IntFlag
from typing import Optional

from repro.net.addr import IPAddress

__all__ = [
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "ICMP_ECHO_REQUEST",
    "ICMP_ECHO_REPLY",
    "TcpFlags",
    "Packet",
    "tcp_packet",
    "udp_packet",
    "icmp_packet",
]

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

ICMP_ECHO_REQUEST = 8
ICMP_ECHO_REPLY = 0

_packet_ids = itertools.count(1)


class TcpFlags(IntFlag):
    """TCP control flags; combinations mirror the wire encoding."""

    NONE = 0
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10

    @property
    def is_syn(self) -> bool:
        """A connection-initiating SYN (SYN set, ACK clear).

        Works on the raw int value: ``IntFlag.__and__`` constructs a new
        flag member per call, which is measurable on the per-packet path.
        """
        return (self._value_ & 0x12) == 0x02  # SYN without ACK

    @property
    def is_synack(self) -> bool:
        return (self._value_ & 0x12) == 0x12  # SYN and ACK both set

    @property
    def has_rst(self) -> bool:
        return bool(self._value_ & 0x04)


@dataclass(slots=True)
class Packet:
    """One simulated IP packet.

    ``payload`` is a semantic tag (service request, exploit marker, banner)
    interpreted by guests and workloads; ``size`` is the wire size in bytes
    used by byte counters and the link bandwidth model. ``ttl`` decrements
    at each router hop, guarding against forwarding loops (the containment
    reflection path can otherwise create one).
    """

    src: IPAddress
    dst: IPAddress
    protocol: int
    src_port: int = 0
    dst_port: int = 0
    flags: TcpFlags = TcpFlags.NONE
    icmp_type: int = 0
    payload: str = ""
    size: int = 40
    ttl: int = 64
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.protocol in (PROTO_TCP, PROTO_UDP):
            for port in (self.src_port, self.dst_port):
                if not (0 <= port <= 65535):
                    raise ValueError(f"port out of range: {port!r}")
        if self.size < 0:
            raise ValueError(f"packet size must be non-negative: {self.size!r}")

    @property
    def is_tcp(self) -> bool:
        return self.protocol == PROTO_TCP

    @property
    def is_udp(self) -> bool:
        return self.protocol == PROTO_UDP

    @property
    def is_icmp(self) -> bool:
        return self.protocol == PROTO_ICMP

    def reply_template(self, payload: str = "", size: int = 40) -> "Packet":
        """A packet going the other way on the same flow (ports swapped)."""
        return Packet(
            src=self.dst,
            dst=self.src,
            protocol=self.protocol,
            src_port=self.dst_port,
            dst_port=self.src_port,
            icmp_type=ICMP_ECHO_REPLY if self.is_icmp else 0,
            payload=payload,
            size=size,
        )

    def with_destination(self, dst: IPAddress) -> "Packet":
        """Copy of this packet re-addressed to ``dst`` (used by the
        gateway's reflection/proxy containment actions)."""
        return replace(self, dst=dst, packet_id=next(_packet_ids))

    def decremented_ttl(self) -> "Packet":
        """Copy with TTL reduced by one hop."""
        return replace(self, ttl=self.ttl - 1)

    def describe(self) -> str:
        """One-line human-readable rendering for logs and traces."""
        if self.is_tcp:
            flag_names = str(self.flags) if self.flags else "-"
            return (
                f"TCP {self.src}:{self.src_port} > {self.dst}:{self.dst_port}"
                f" [{flag_names}] {self.payload or ''}".rstrip()
            )
        if self.is_udp:
            return (
                f"UDP {self.src}:{self.src_port} > {self.dst}:{self.dst_port}"
                f" {self.payload or ''}".rstrip()
            )
        if self.is_icmp:
            kind = "echo-req" if self.icmp_type == ICMP_ECHO_REQUEST else "echo-rep"
            return f"ICMP {self.src} > {self.dst} {kind}"
        return f"IP(proto={self.protocol}) {self.src} > {self.dst}"


def tcp_packet(
    src: IPAddress,
    dst: IPAddress,
    src_port: int,
    dst_port: int,
    flags: TcpFlags = TcpFlags.SYN,
    payload: str = "",
    size: Optional[int] = None,
) -> Packet:
    """Convenience constructor for TCP packets; size defaults to a 40-byte
    header plus one byte per payload-tag character (a stable proxy for
    payload length)."""
    return Packet(
        src=src,
        dst=dst,
        protocol=PROTO_TCP,
        src_port=src_port,
        dst_port=dst_port,
        flags=flags,
        payload=payload,
        size=size if size is not None else 40 + len(payload),
    )


def udp_packet(
    src: IPAddress,
    dst: IPAddress,
    src_port: int,
    dst_port: int,
    payload: str = "",
    size: Optional[int] = None,
) -> Packet:
    """Convenience constructor for UDP packets."""
    return Packet(
        src=src,
        dst=dst,
        protocol=PROTO_UDP,
        src_port=src_port,
        dst_port=dst_port,
        payload=payload,
        size=size if size is not None else 28 + len(payload),
    )


def icmp_packet(
    src: IPAddress,
    dst: IPAddress,
    icmp_type: int = ICMP_ECHO_REQUEST,
    size: int = 64,
) -> Packet:
    """Convenience constructor for ICMP echo packets."""
    return Packet(src=src, dst=dst, protocol=PROTO_ICMP, icmp_type=icmp_type, size=size)
