"""IPv4 addresses, CIDR prefixes, and the honeyfarm's address inventory.

Addresses are immutable wrappers over a 32-bit int, which keeps the
per-packet fast path (hashing, comparison, prefix membership) cheap — the
simulator pushes millions of packets through these.

The :class:`AddressSpaceInventory` models what the paper's gateway must
know: which prefixes of dark space have been diverted to the honeyfarm
(potentially many /16s), so it can tell "ours" from stray traffic and
can allocate honeypot identities inside each prefix.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Tuple

__all__ = ["IPAddress", "Prefix", "AddressSpaceInventory"]

_MAX_IPV4 = (1 << 32) - 1


class IPAddress:
    """An immutable IPv4 address backed by an int.

    >>> IPAddress.parse("10.0.0.1").value
    167772161
    >>> str(IPAddress(167772161))
    '10.0.0.1'
    """

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if not (0 <= value <= _MAX_IPV4):
            raise ValueError(f"IPv4 address out of range: {value!r}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IPAddress is immutable")

    @classmethod
    def parse(cls, text: str) -> "IPAddress":
        """Parse dotted-quad notation."""
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit():
                raise ValueError(f"malformed IPv4 address: {text!r}")
            octet = int(part)
            if octet > 255:
                raise ValueError(f"octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        v = self.value
        return f"{(v >> 24) & 0xFF}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPAddress('{self}')"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPAddress) and self.value == other.value

    def __lt__(self, other: "IPAddress") -> bool:
        return self.value < other.value

    def __le__(self, other: "IPAddress") -> bool:
        return self.value <= other.value

    def __hash__(self) -> int:
        # The raw value is its own hash (ints hash to themselves), saving a
        # call on the per-packet path where addresses key every dict.
        return self.value

    def offset(self, delta: int) -> "IPAddress":
        """The address ``delta`` positions away (may be negative)."""
        return IPAddress(self.value + delta)


class Prefix:
    """A CIDR prefix, e.g. ``10.1.0.0/16``.

    >>> p = Prefix.parse("10.1.0.0/16")
    >>> p.contains(IPAddress.parse("10.1.2.3"))
    True
    >>> p.size
    65536
    """

    __slots__ = ("network", "length", "_mask_value", "_size")

    def __init__(self, network: IPAddress, length: int) -> None:
        if not (0 <= length <= 32):
            raise ValueError(f"prefix length out of range: {length!r}")
        mask = self._mask(length)
        if network.value & ~mask & _MAX_IPV4:
            raise ValueError(
                f"{network}/{length} has host bits set; not a valid prefix"
            )
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "length", length)
        # Precomputed: mask/size sit on the per-packet membership path.
        object.__setattr__(self, "_mask_value", mask)
        object.__setattr__(self, "_size", 1 << (32 - length))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix is immutable")

    @staticmethod
    def _mask(length: int) -> int:
        return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4 if length else 0

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        if "/" not in text:
            raise ValueError(f"prefix must contain '/': {text!r}")
        net, __, length = text.partition("/")
        return cls(IPAddress.parse(net), int(length))

    @property
    def mask(self) -> int:
        return self._mask_value

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return self._size

    @property
    def first(self) -> IPAddress:
        return self.network

    @property
    def last(self) -> IPAddress:
        return IPAddress(self.network.value + self._size - 1)

    def contains(self, addr: IPAddress) -> bool:
        return (addr.value & self._mask_value) == self.network.value

    def address_at(self, index: int) -> IPAddress:
        """The ``index``-th address inside the prefix (0-based)."""
        if not (0 <= index < self.size):
            raise IndexError(f"index {index} outside {self}")
        return IPAddress(self.network.value + index)

    def index_of(self, addr: IPAddress) -> int:
        """Inverse of :meth:`address_at`."""
        if not self.contains(addr):
            raise ValueError(f"{addr} is not in {self}")
        return addr.value - self.network.value

    def overlaps(self, other: "Prefix") -> bool:
        return self.contains(other.network) or other.contains(self.network)

    def addresses(self) -> Iterator[IPAddress]:
        """Iterate every address in the prefix (use only on small prefixes)."""
        for i in range(self.size):
            yield IPAddress(self.network.value + i)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Prefix)
            and self.network == other.network
            and self.length == other.length
        )

    def __hash__(self) -> int:
        return hash((self.network.value, self.length))

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"

    def __repr__(self) -> str:
        return f"Prefix('{self}')"


class AddressSpaceInventory:
    """The set of dark prefixes diverted to the honeyfarm.

    The gateway consults this on every packet: traffic to an address
    outside every registered prefix is not honeyfarm traffic and is
    counted and dropped. Registered prefixes never overlap, so membership
    is a binary search over prefix ranges sorted by start address —
    O(log n) per packet however many /16s the farm impersonates — and
    :meth:`flat_index` adds one precomputed cumulative base instead of
    summing prefix sizes per call.
    """

    def __init__(self, prefixes: Optional[Iterable[Prefix]] = None) -> None:
        # Registration order (defines the flat-index layout):
        self._prefixes: List[Prefix] = []
        self._flat_bases: List[int] = []  # cumulative base per registered prefix
        self._total = 0
        # Sorted-by-start parallel arrays for binary-search membership:
        self._starts: List[int] = []
        self._ends: List[int] = []  # inclusive last address per range
        self._sorted_prefixes: List[Prefix] = []
        self._sorted_bases: List[int] = []  # flat base of the range's prefix
        for prefix in prefixes or []:
            self.add(prefix)

    def add(self, prefix: Prefix) -> None:
        """Register a diverted prefix; overlapping registrations are
        rejected to keep the address→VM mapping unambiguous."""
        start = prefix.network.value
        end = start + prefix.size - 1
        i = bisect.bisect_left(self._starts, start)
        # Prefixes either nest or are disjoint, so overlap can only be
        # with the nearest range on either side of the insertion point.
        if i > 0 and self._ends[i - 1] >= start:
            raise ValueError(
                f"{prefix} overlaps already-registered {self._sorted_prefixes[i - 1]}"
            )
        if i < len(self._starts) and self._starts[i] <= end:
            raise ValueError(
                f"{prefix} overlaps already-registered {self._sorted_prefixes[i]}"
            )
        base = self._total
        self._prefixes.append(prefix)
        self._flat_bases.append(base)
        self._total += prefix.size
        self._starts.insert(i, start)
        self._ends.insert(i, end)
        self._sorted_prefixes.insert(i, prefix)
        self._sorted_bases.insert(i, base)

    @property
    def prefixes(self) -> Tuple[Prefix, ...]:
        return tuple(self._prefixes)

    @property
    def total_addresses(self) -> int:
        """Total dark addresses the farm impersonates."""
        return self._total

    def lookup(self, addr: IPAddress) -> Optional[Prefix]:
        """The registered prefix covering ``addr``, or None."""
        i = bisect.bisect_right(self._starts, addr.value) - 1
        if i >= 0 and addr.value <= self._ends[i]:
            return self._sorted_prefixes[i]
        return None

    def covers(self, addr: IPAddress) -> bool:
        i = bisect.bisect_right(self._starts, addr.value) - 1
        return i >= 0 and addr.value <= self._ends[i]

    def flat_index(self, addr: IPAddress) -> int:
        """A dense 0-based index over all registered addresses, in
        registration order — used to map addresses onto the vulnerable-host
        bitmap in epidemic experiments."""
        value = addr.value
        i = bisect.bisect_right(self._starts, value) - 1
        if i >= 0 and value <= self._ends[i]:
            return self._sorted_bases[i] + (value - self._starts[i])
        raise ValueError(f"{addr} is not in any registered prefix")

    def address_at_flat_index(self, index: int) -> IPAddress:
        """Inverse of :meth:`flat_index`."""
        if index < 0:
            raise IndexError(f"negative flat index: {index}")
        if index >= self._total:
            raise IndexError(f"flat index {index} beyond inventory of {self._total}")
        # Bases are strictly increasing in registration order, so the
        # owning prefix is the rightmost base at or below the index.
        i = bisect.bisect_right(self._flat_bases, index) - 1
        return self._prefixes[i].address_at(index - self._flat_bases[i])

    def __len__(self) -> int:
        return len(self._prefixes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AddressSpaceInventory(prefixes={len(self._prefixes)},"
            f" addresses={self.total_addresses})"
        )
