"""Network substrate: addresses, packets, tunnels, flows, links, routers.

Potemkin's front end is a routing problem: border routers at participating
networks tunnel traffic destined for dark (unused) address space to the
honeyfarm gateway over GRE, and the gateway dispatches each packet by
destination IP. This package provides those pieces as plain-Python models:

* :mod:`repro.net.addr` — IPv4 addresses and CIDR prefixes (int-backed).
* :mod:`repro.net.packet` — IP/TCP/UDP/ICMP packet records.
* :mod:`repro.net.gre` — GRE encapsulation as used by the tunnels.
* :mod:`repro.net.flow` — 5-tuple flow keys and a timeout-based flow table.
* :mod:`repro.net.link` — point-to-point links with latency/bandwidth/loss.
* :mod:`repro.net.router` — border routers that divert darknet traffic.
"""

from repro.net.addr import IPAddress, Prefix, AddressSpaceInventory
from repro.net.packet import (
    ICMP_ECHO_REPLY,
    ICMP_ECHO_REQUEST,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    TcpFlags,
    icmp_packet,
    tcp_packet,
    udp_packet,
)
from repro.net.gre import GrePacket, GreTunnel, decapsulate, encapsulate
from repro.net.flow import FlowKey, FlowRecord, FlowTable
from repro.net.link import Link
from repro.net.router import BorderRouter

__all__ = [
    "AddressSpaceInventory",
    "BorderRouter",
    "FlowKey",
    "FlowRecord",
    "FlowTable",
    "GrePacket",
    "GreTunnel",
    "ICMP_ECHO_REPLY",
    "ICMP_ECHO_REQUEST",
    "IPAddress",
    "Link",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "Prefix",
    "TcpFlags",
    "decapsulate",
    "encapsulate",
    "icmp_packet",
    "tcp_packet",
    "udp_packet",
]
