"""Named, reproducible random streams.

Every stochastic component in the reproduction (telescope arrivals, worm
target selection, guest think times, ...) draws from its own
:class:`RandomStream`, derived from a root :class:`SeedSequence` by name.
This gives two properties the experiments rely on:

* **Reproducibility** — the same root seed always produces the same run.
* **Isolation** — adding draws to one component (say, a richer guest model)
  does not perturb the sequence seen by any other component, so ablations
  stay comparable.

Streams are derived by hashing ``(root_seed, name)`` with SHA-256, so the
mapping is stable across Python versions and processes (unlike ``hash()``).
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterable, List, Optional, Sequence, TypeVar

__all__ = ["SeedSequence", "RandomStream"]

T = TypeVar("T")


def _derive_seed(root: int, name: str) -> int:
    digest = hashlib.sha256(f"{root}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class SeedSequence:
    """Derives independent named random streams from a single root seed.

    >>> seeds = SeedSequence(42)
    >>> a = seeds.stream("telescope")
    >>> b = seeds.stream("worm")
    >>> a.uniform(0, 1) != b.uniform(0, 1)
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)

    def stream(self, name: str) -> "RandomStream":
        """Return the stream uniquely identified by ``name``."""
        return RandomStream(_derive_seed(self.root_seed, name), name=name)

    def spawn(self, name: str) -> "SeedSequence":
        """Return a child sequence, for components that themselves own
        multiple streams (e.g. one stream per simulated source host)."""
        return SeedSequence(_derive_seed(self.root_seed, f"seq:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeedSequence(root_seed={self.root_seed})"


class RandomStream:
    """A seeded random stream with the distributions the workloads need.

    Thin wrapper over :class:`random.Random` plus a few distributions
    (bounded Pareto, zipf) that the standard library lacks and that
    Internet-traffic modelling needs.
    """

    def __init__(self, seed: int, name: str = "") -> None:
        self.name = name
        self.seed = seed
        self._rng = random.Random(seed)

    # -- uniform / integers -------------------------------------------- #

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high)``."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._rng.random()

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self._rng.random() < p

    # -- choice / shuffling -------------------------------------------- #

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements."""
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        """Shuffle ``seq`` in place."""
        self._rng.shuffle(seq)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with probability proportional to its weight."""
        return self._rng.choices(items, weights=weights, k=1)[0]

    # -- arrival processes --------------------------------------------- #

    def exponential(self, rate: float) -> float:
        """Exponential inter-arrival time for a Poisson process of ``rate``
        events/second. ``rate`` must be positive."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        return self._rng.expovariate(rate)

    def pareto(self, shape: float, scale: float = 1.0) -> float:
        """Pareto-distributed value with minimum ``scale``.

        Heavy-tailed; used for per-source scan-session sizes, matching the
        observation that a few telescope sources send most packets.
        """
        if shape <= 0:
            raise ValueError(f"shape must be positive, got {shape!r}")
        return scale * (1.0 + self._rng.paretovariate(shape) - 1.0)

    def bounded_pareto(self, shape: float, low: float, high: float) -> float:
        """Pareto truncated to ``[low, high]`` by inverse-CDF sampling."""
        if not (0 < low < high):
            raise ValueError(f"need 0 < low < high, got {low!r}, {high!r}")
        if shape <= 0:
            raise ValueError(f"shape must be positive, got {shape!r}")
        u = self._rng.random()
        ha = high**-shape
        la = low**-shape
        return (ha + u * (la - ha)) ** (-1.0 / shape)

    def lognormal(self, mu: float, sigma: float) -> float:
        """Log-normal value (used for guest service/think times)."""
        return self._rng.lognormvariate(mu, sigma)

    def normal(self, mu: float, sigma: float) -> float:
        """Gaussian value."""
        return self._rng.gauss(mu, sigma)

    def geometric(self, p: float) -> int:
        """Number of Bernoulli(p) trials up to and including first success."""
        if not (0 < p <= 1):
            raise ValueError(f"p must be in (0, 1], got {p!r}")
        if p == 1.0:
            return 1
        return int(math.ceil(math.log(1.0 - self._rng.random()) / math.log(1.0 - p)))

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """Zipf-distributed index in ``[0, n)``; low indexes are popular.

        Used to make some destination ports / services much hotter than
        others, as in real background radiation.
        """
        if n <= 0:
            raise ValueError(f"n must be positive, got {n!r}")
        # Inverse-CDF on the harmonic weights via rejection-free search.
        # n is small (ports/services) so a linear scan is fine and exact.
        weights = [1.0 / (i + 1) ** skew for i in range(n)]
        total = sum(weights)
        target = self._rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if target < acc:
                return i
        return n - 1

    def poisson(self, mean: float) -> int:
        """Poisson-distributed count (Knuth for small mean, normal approx
        for large)."""
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean!r}")
        if mean == 0:
            return 0
        if mean > 500:
            return max(0, int(round(self._rng.gauss(mean, math.sqrt(mean)))))
        limit = math.exp(-mean)
        k = 0
        p = 1.0
        while True:
            p *= self._rng.random()
            if p <= limit:
                return k
            k += 1

    # -- misc ----------------------------------------------------------- #

    def fork(self, name: str) -> "RandomStream":
        """Derive a sub-stream; deterministic in (this stream's seed, name)."""
        return RandomStream(_derive_seed(self.seed, name), name=f"{self.name}/{name}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStream(name={self.name!r}, seed={self.seed})"
