"""Measurement primitives used by every experiment.

Four metric kinds, all cheap enough to update on the per-packet fast path:

* :class:`Counter` — monotonically increasing event count.
* :class:`Gauge` — instantaneous level with time-weighted statistics
  (used for "concurrent live VMs", the paper's central scalability metric).
* :class:`Histogram` — value distribution with exact percentiles
  (clone latencies, private-page footprints).
* :class:`TimeSeries` — (time, value) samples for figure regeneration.

A :class:`MetricRegistry` namespaces metrics by dotted name and renders a
plain-text report, which the benchmark harness prints alongside the
pytest-benchmark wall-clock numbers.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "TimeSeries", "MetricRegistry"]


class Counter:
    """Monotonic event counter.

    Hot paths should resolve the counter once (see
    :meth:`MetricRegistry.handle`) and call :meth:`increment` on the held
    object — an increment is then one attribute store, with no dict lookup
    or string hashing per event.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for levels")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A level that moves up and down, with time-weighted statistics.

    The gauge integrates ``level * dt`` between updates, so
    :meth:`time_average` is exact regardless of update spacing. The caller
    supplies timestamps (the simulated clock), keeping this module free of
    any dependency on the engine.
    """

    __slots__ = ("name", "value", "peak", "_last_time", "_weighted_sum", "_start_time")

    def __init__(self, name: str = "", initial: float = 0.0, time: float = 0.0) -> None:
        self.name = name
        self.value = initial
        self.peak = initial
        self._last_time = time
        self._weighted_sum = 0.0
        self._start_time = time

    def set(self, value: float, time: float) -> None:
        """Set the level at simulated ``time``."""
        if time < self._last_time:
            raise ValueError(
                f"gauge time went backwards: {time} < {self._last_time}"
            )
        self._weighted_sum += self.value * (time - self._last_time)
        self._last_time = time
        self.value = value
        if value > self.peak:
            self.peak = value

    def adjust(self, delta: float, time: float) -> None:
        """Add ``delta`` to the level at simulated ``time``."""
        self.set(self.value + delta, time)

    def time_average(self, now: Optional[float] = None) -> float:
        """Time-weighted mean level from creation until ``now``
        (defaults to the last update time).

        ``now`` earlier than the last update is clamped to the last
        update time: :meth:`set` rejects time regressions outright, and
        without the clamp a stale ``now`` would silently integrate
        *negative* elapsed time into the average.
        """
        end = self._last_time if now is None or now < self._last_time else now
        elapsed = end - self._start_time
        if elapsed <= 0:
            return self.value
        total = self._weighted_sum + self.value * (end - self._last_time)
        return total / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, value={self.value}, peak={self.peak})"


class Histogram:
    """Exact-value histogram with percentiles.

    Stores every observation (sorted lazily); experiments record at most a
    few hundred thousand samples so exactness is affordable and removes a
    source of noise from paper-shape comparisons.

    The first two moments (sum and sum of squares) are maintained
    incrementally on :meth:`observe`, so ``total``/``mean``/``stddev``
    are O(1): end-of-run report generation calls them across hundreds of
    histograms, and a per-call rescan of every stored sample made that
    quadratic in run length.
    """

    __slots__ = ("name", "_values", "_sorted", "_total", "_sum_squares")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._values: List[float] = []
        self._sorted = True
        self._total = 0.0
        self._sum_squares = 0.0

    def observe(self, value: float) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)
        self._total += value
        self._sum_squares += value * value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations in one pass.

        Equivalent to calling :meth:`observe` per value but amortizes the
        bookkeeping: one extend, one sortedness check against the batch,
        and two running-moment updates. Used by batched flushes (metric
        emission over a whole arrival batch); an empty batch is a no-op —
        mean/stddev stay well-defined (0.0) on an empty histogram.
        """
        values = list(values)
        if not values:
            return
        old = self._values
        if self._sorted and (
            (old and values[0] < old[-1])
            or any(b < a for a, b in zip(values, values[1:]))
        ):
            self._sorted = False
        old.extend(values)
        self._total += sum(values)
        self._sum_squares += sum(v * v for v in values)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._values.sort()
            self._sorted = True

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        self._ensure_sorted()
        return self._values[0] if self._values else 0.0

    @property
    def max(self) -> float:
        self._ensure_sorted()
        return self._values[-1] if self._values else 0.0

    def stddev(self) -> float:
        """Population standard deviation (O(1), from running moments).

        The variance is clamped at zero: for near-constant samples the
        two running sums can cancel to a tiny negative float.
        """
        n = len(self._values)
        if n < 2:
            return 0.0
        mean = self._total / n
        variance = self._sum_squares / n - mean * mean
        return math.sqrt(variance) if variance > 0.0 else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile via linear interpolation; ``p`` in [0, 100]."""
        if not self._values:
            return 0.0
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
        self._ensure_sorted()
        if len(self._values) == 1:
            return self._values[0]
        rank = (p / 100.0) * (len(self._values) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return self._values[low]
        frac = rank - low
        interpolated = self._values[low] * (1 - frac) + self._values[high] * frac
        # Clamp: float interpolation error must not escape the bracket.
        return min(max(interpolated, self._values[low]), self._values[high])

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    def summary(self) -> Dict[str, float]:
        """Dict of the headline statistics, suitable for report tables."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


class TimeSeries:
    """Append-only (time, value) samples for regenerating figures."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(f"time series went backwards: {time} < {self.times[-1]}")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def value_at(self, time: float) -> float:
        """Step-function lookup: the last recorded value at or before ``time``.

        Returns 0.0 before the first sample.
        """
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            return 0.0
        return self.values[idx]

    def resample(self, interval: float, end: Optional[float] = None) -> "TimeSeries":
        """Step-resample onto a uniform grid (for aligned figure series).

        Grid points are derived as ``start + i * interval`` rather than by
        accumulating ``t += interval``: repeated float addition drifts in
        the last ulp, so two series resampled onto the "same" grid would
        disagree on point timestamps (and any same-timestamp coalescing
        over them silently fragments).
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        out = TimeSeries(self.name)
        if not self.times:
            return out
        stop = self.times[-1] if end is None else end
        start = self.times[0]
        i = 0
        t = start
        while t <= stop:
            out.record(t, self.value_at(t))
            i += 1
            t = start + i * interval
        return out

    def max_value(self) -> float:
        return max(self.values) if self.values else 0.0

    def to_csv(self, path, value_label: str = "value") -> int:
        """Write the series as a two-column CSV (plot-ready); returns the
        number of data rows written."""
        from pathlib import Path

        lines = [f"time_seconds,{value_label}"]
        lines.extend(f"{t!r},{v!r}" for t, v in zip(self.times, self.values))
        Path(path).write_text("\n".join(lines) + "\n")
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimeSeries({self.name!r}, samples={len(self.times)})"


class MetricRegistry:
    """Namespace of metrics, keyed by dotted name.

    ``registry.counter("gateway.packets_in")`` creates on first use and
    returns the same object thereafter, so producer code never needs to
    thread metric objects through constructors.

    Re-registering a name with construction kwargs that disagree with the
    original registration raises :class:`ValueError` — silently returning
    the first-registered object would hide the mismatch until the metric's
    numbers looked wrong.

    Per-packet code paths should not call :meth:`counter` per event (each
    call hashes the name and does a dict lookup); resolve a handle once via
    :meth:`handle` and keep it.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._gauge_creation: Dict[str, Tuple[float, float]] = {}  # (initial, time)
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def handle(self, name: str) -> Counter:
        """Resolve a counter handle for a hot path.

        Semantically identical to :meth:`counter`; the distinct name marks
        call sites that resolve once (typically in ``__init__``) and then
        increment allocation-free, per the fast-path contract in
        ``docs/PERFORMANCE.md``.
        """
        return self.counter(name)

    def gauge(
        self,
        name: str,
        time: Optional[float] = None,
        initial: Optional[float] = None,
    ) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            created = (0.0 if initial is None else initial, 0.0 if time is None else time)
            self._gauge_creation[name] = created
            gauge = self._gauges[name] = Gauge(name, initial=created[0], time=created[1])
            return gauge
        created_initial, created_time = self._gauge_creation[name]
        if time is not None and time != created_time:
            raise ValueError(
                f"gauge {name!r} already registered with time={created_time!r};"
                f" got conflicting time={time!r}"
            )
        if initial is not None and initial != created_initial:
            raise ValueError(
                f"gauge {name!r} already registered with initial={created_initial!r};"
                f" got conflicting initial={initial!r}"
            )
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def series(self, name: str) -> TimeSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(name)
        return series

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counters that have counted anything.

        Zero-valued counters are omitted: hot paths pre-register handles at
        construction time, and a handle that never fired carries the same
        information as a counter that was never created.
        """
        return {
            name: c.value for name, c in sorted(self._counters.items()) if c.value
        }

    def report(self) -> str:
        """Human-readable dump of every metric, for bench output."""
        lines: List[str] = []
        counters = self.counters()
        if counters:
            lines.append("counters:")
            for name, value in counters.items():
                lines.append(f"  {name:<44s} {value:>12d}")
        if self._gauges:
            lines.append("gauges (value / peak / time-avg):")
            for name, g in sorted(self._gauges.items()):
                lines.append(
                    f"  {name:<44s} {g.value:>10.2f} {g.peak:>10.2f}"
                    f" {g.time_average():>10.2f}"
                )
        histograms = {n: h for n, h in sorted(self._histograms.items()) if h.count}
        if histograms:
            lines.append("histograms (count / mean / p50 / p99 / max):")
            for name, h in histograms.items():
                s = h.summary()
                lines.append(
                    f"  {name:<44s} {int(s['count']):>8d} {s['mean']:>10.4g}"
                    f" {s['p50']:>10.4g} {s['p99']:>10.4g} {s['max']:>10.4g}"
                )
        series = {n: ts for n, ts in sorted(self._series.items()) if len(ts)}
        if series:
            lines.append("time series (samples / last / max):")
            for name, ts in series.items():
                lines.append(
                    f"  {name:<44s} {len(ts):>8d} {ts.values[-1]:>10.4g}"
                    f" {ts.max_value():>10.4g}"
                )
        return "\n".join(lines)
