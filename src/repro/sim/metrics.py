"""Measurement primitives used by every experiment.

Four metric kinds, all cheap enough to update on the per-packet fast path:

* :class:`Counter` — monotonically increasing event count.
* :class:`Gauge` — instantaneous level with time-weighted statistics
  (used for "concurrent live VMs", the paper's central scalability metric).
* :class:`Histogram` — value distribution with exact percentiles
  (clone latencies, private-page footprints).
* :class:`TimeSeries` — (time, value) samples for figure regeneration.

A :class:`MetricRegistry` namespaces metrics by dotted name and renders a
plain-text report, which the benchmark harness prints alongside the
pytest-benchmark wall-clock numbers.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "TimeSeries", "MetricRegistry"]


class Counter:
    """Monotonic event counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for levels")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A level that moves up and down, with time-weighted statistics.

    The gauge integrates ``level * dt`` between updates, so
    :meth:`time_average` is exact regardless of update spacing. The caller
    supplies timestamps (the simulated clock), keeping this module free of
    any dependency on the engine.
    """

    def __init__(self, name: str = "", initial: float = 0.0, time: float = 0.0) -> None:
        self.name = name
        self.value = initial
        self.peak = initial
        self._last_time = time
        self._weighted_sum = 0.0
        self._start_time = time

    def set(self, value: float, time: float) -> None:
        """Set the level at simulated ``time``."""
        if time < self._last_time:
            raise ValueError(
                f"gauge time went backwards: {time} < {self._last_time}"
            )
        self._weighted_sum += self.value * (time - self._last_time)
        self._last_time = time
        self.value = value
        if value > self.peak:
            self.peak = value

    def adjust(self, delta: float, time: float) -> None:
        """Add ``delta`` to the level at simulated ``time``."""
        self.set(self.value + delta, time)

    def time_average(self, now: Optional[float] = None) -> float:
        """Time-weighted mean level from creation until ``now``
        (defaults to the last update time)."""
        end = self._last_time if now is None else now
        elapsed = end - self._start_time
        if elapsed <= 0:
            return self.value
        total = self._weighted_sum + self.value * (end - self._last_time)
        return total / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, value={self.value}, peak={self.peak})"


class Histogram:
    """Exact-value histogram with percentiles.

    Stores every observation (sorted lazily); experiments record at most a
    few hundred thousand samples so exactness is affordable and removes a
    source of noise from paper-shape comparisons.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._values: List[float] = []
        self._sorted = True

    def observe(self, value: float) -> None:
        if self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(value)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._values.sort()
            self._sorted = True

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.total / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        self._ensure_sorted()
        return self._values[0] if self._values else 0.0

    @property
    def max(self) -> float:
        self._ensure_sorted()
        return self._values[-1] if self._values else 0.0

    def stddev(self) -> float:
        """Population standard deviation."""
        n = len(self._values)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((v - mean) ** 2 for v in self._values) / n)

    def percentile(self, p: float) -> float:
        """Exact percentile via linear interpolation; ``p`` in [0, 100]."""
        if not self._values:
            return 0.0
        if not (0.0 <= p <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
        self._ensure_sorted()
        if len(self._values) == 1:
            return self._values[0]
        rank = (p / 100.0) * (len(self._values) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return self._values[low]
        frac = rank - low
        interpolated = self._values[low] * (1 - frac) + self._values[high] * frac
        # Clamp: float interpolation error must not escape the bracket.
        return min(max(interpolated, self._values[low]), self._values[high])

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    def summary(self) -> Dict[str, float]:
        """Dict of the headline statistics, suitable for report tables."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean:.4g})"


class TimeSeries:
    """Append-only (time, value) samples for regenerating figures."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(f"time series went backwards: {time} < {self.times[-1]}")
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self):
        return iter(zip(self.times, self.values))

    def value_at(self, time: float) -> float:
        """Step-function lookup: the last recorded value at or before ``time``.

        Returns 0.0 before the first sample.
        """
        idx = bisect.bisect_right(self.times, time) - 1
        if idx < 0:
            return 0.0
        return self.values[idx]

    def resample(self, interval: float, end: Optional[float] = None) -> "TimeSeries":
        """Step-resample onto a uniform grid (for aligned figure series)."""
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        out = TimeSeries(self.name)
        if not self.times:
            return out
        stop = self.times[-1] if end is None else end
        t = self.times[0]
        while t <= stop:
            out.record(t, self.value_at(t))
            t += interval
        return out

    def max_value(self) -> float:
        return max(self.values) if self.values else 0.0

    def to_csv(self, path, value_label: str = "value") -> int:
        """Write the series as a two-column CSV (plot-ready); returns the
        number of data rows written."""
        from pathlib import Path

        lines = [f"time_seconds,{value_label}"]
        lines.extend(f"{t!r},{v!r}" for t, v in zip(self.times, self.values))
        Path(path).write_text("\n".join(lines) + "\n")
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimeSeries({self.name!r}, samples={len(self.times)})"


class MetricRegistry:
    """Namespace of metrics, keyed by dotted name.

    ``registry.counter("gateway.packets_in")`` creates on first use and
    returns the same object thereafter, so producer code never needs to
    thread metric objects through constructors.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str, time: float = 0.0) -> Gauge:
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, time=time)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def series(self, name: str) -> TimeSeries:
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counters(self) -> Dict[str, int]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    def report(self) -> str:
        """Human-readable dump of every metric, for bench output."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters:")
            for name, c in sorted(self._counters.items()):
                lines.append(f"  {name:<44s} {c.value:>12d}")
        if self._gauges:
            lines.append("gauges (value / peak / time-avg):")
            for name, g in sorted(self._gauges.items()):
                lines.append(
                    f"  {name:<44s} {g.value:>10.2f} {g.peak:>10.2f}"
                    f" {g.time_average():>10.2f}"
                )
        if self._histograms:
            lines.append("histograms (count / mean / p50 / p99 / max):")
            for name, h in sorted(self._histograms.items()):
                s = h.summary()
                lines.append(
                    f"  {name:<44s} {int(s['count']):>8d} {s['mean']:>10.4g}"
                    f" {s['p50']:>10.4g} {s['p99']:>10.4g} {s['max']:>10.4g}"
                )
        if self._series:
            lines.append("time series (samples / last / max):")
            for name, ts in sorted(self._series.items()):
                last = ts.values[-1] if ts.values else 0.0
                lines.append(
                    f"  {name:<44s} {len(ts):>8d} {last:>10.4g} {ts.max_value():>10.4g}"
                )
        return "\n".join(lines)
