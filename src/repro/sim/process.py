"""Generator-based simulation processes.

Some behaviours are naturally sequential — a guest handling a TCP session
("accept, wait 5 ms, send banner, wait for payload, ..."), a worm's
scan loop, a reclamation daemon's periodic sweep. Writing these as chains
of explicit callbacks obscures the control flow, so this module provides a
tiny coroutine layer over :class:`~repro.sim.engine.Simulator`:

>>> from repro.sim import Simulator, spawn, Sleep
>>> sim = Simulator()
>>> log = []
>>> def worker():
...     log.append(("start", sim.now))
...     yield Sleep(2.0)
...     log.append(("done", sim.now))
>>> _ = spawn(sim, worker())
>>> sim.run()
>>> log
[('start', 0.0), ('done', 2.0)]

A process is a generator that yields *commands*:

* ``Sleep(dt)`` — suspend for ``dt`` simulated seconds.
* ``WaitEvent()`` — suspend until another process calls
  :meth:`WaitEvent.trigger`, which resumes the waiter with an optional
  value (a one-shot condition variable).

Processes can also ``return`` a value; it is stored on
:attr:`Process.result` and the optional completion callback fires.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.sim.engine import Event, Simulator

__all__ = ["Sleep", "WaitEvent", "Process", "spawn"]


class Sleep:
    """Yielded by a process to suspend for ``duration`` simulated seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"cannot sleep a negative duration: {duration!r}")
        self.duration = duration


class WaitEvent:
    """A one-shot signal a process can wait on.

    One or more processes yield the same ``WaitEvent``; a later call to
    :meth:`trigger` resumes all of them (in wait order) with the value.
    Triggering before anyone waits is allowed — waiters then resume
    immediately (the event latches).
    """

    __slots__ = ("_waiters", "_fired", "_value")

    def __init__(self) -> None:
        self._waiters: List["Process"] = []
        self._fired = False
        self._value: Any = None

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming every waiter with ``value``."""
        if self._fired:
            return
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume(value)


class Process:
    """A running simulation process; see module docstring.

    Not constructed directly — use :func:`spawn`.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, Any],
        on_complete: Optional[Callable[[Any], None]] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.name = name
        self.result: Any = None
        self.finished = False
        self.cancelled = False
        self._generator = generator
        self._on_complete = on_complete
        self._pending_wakeup: Optional[Event] = None
        # Wake-epoch token: every scheduled wakeup captures the current
        # epoch, and cancel()/resume bump it. A stale wakeup — e.g. a
        # cancelled Sleep whose heap tombstone somehow fired after the
        # process was rescheduled — then fails the token check instead of
        # resuming the generator at the wrong time.
        self._wake_epoch = 0

    def cancel(self) -> None:
        """Stop the process; it never resumes and ``on_complete`` never fires.

        Safe to call from inside the process's own call chain (e.g. an
        action the process triggered decides to kill it): the generator
        cannot be closed while executing, so it is marked cancelled and
        discarded when it next yields.

        A pending ``Sleep`` wakeup is cancelled in the event heap rather
        than left to fire as a no-op, so long-sleeping dead processes
        neither occupy the simulator nor inflate its event counts (and
        heavy churn lets the heap compact them away).
        """
        if self.finished:
            return
        self.cancelled = True
        self.finished = True
        self._wake_epoch += 1
        if self._pending_wakeup is not None:
            self._pending_wakeup.cancel()
            self._pending_wakeup = None
        try:
            self._generator.close()
        except ValueError:
            pass  # currently executing; _advance drops it at the next yield

    def _start(self) -> None:
        self._advance(lambda: next(self._generator))

    def _resume(self, value: Any) -> None:
        self._wake_epoch += 1
        self._pending_wakeup = None
        if self.finished:
            return
        self._advance(lambda: self._generator.send(value))

    def _wakeup(self, epoch: int, value: Any) -> None:
        """Scheduled-wakeup entry point (Sleep / latched WaitEvent).

        Ignores wakeups whose epoch token is stale: the process was
        cancelled or rescheduled after this wakeup was created, so firing
        it would resume the generator out of turn.
        """
        if epoch != self._wake_epoch:
            return
        self._resume(value)

    def _advance(self, step: Callable[[], Any]) -> None:
        try:
            command = step()
        except StopIteration as stop:
            if self.cancelled:
                return
            self.finished = True
            self.result = stop.value
            if self._on_complete is not None:
                self._on_complete(self.result)
            return
        if self.cancelled:
            # Cancelled from within its own call chain while executing;
            # drop the yielded command and close now that it is suspended.
            self._generator.close()
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Sleep):
            self._pending_wakeup = self.sim.schedule(
                command.duration, self._wakeup, self._wake_epoch, None
            )
        elif isinstance(command, WaitEvent):
            if command.fired:
                self._pending_wakeup = self.sim.call_now(
                    self._wakeup, self._wake_epoch, command.value
                )
            else:
                command._waiters.append(self)
        else:
            raise TypeError(
                f"process {self.name!r} yielded {command!r}; expected Sleep or WaitEvent"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name!r} {state}>"


def spawn(
    sim: Simulator,
    generator: Generator[Any, Any, Any],
    on_complete: Optional[Callable[[Any], None]] = None,
    name: str = "",
) -> Process:
    """Start ``generator`` as a process on ``sim``; runs its first step
    at the current simulated time (via a zero-delay event)."""
    proc = Process(sim, generator, on_complete=on_complete, name=name)
    sim.call_now(proc._start)
    return proc
