"""Deterministic discrete-event simulator.

The :class:`Simulator` is the heart of the reproduction: a priority queue of
timestamped callbacks and a simulated clock measured in **seconds** (floats).
All latencies in the system — flash-clone stage costs, link delays, guest
think times — are expressed by scheduling callbacks into this queue.

Determinism guarantees:

* Events with equal timestamps fire in insertion order (a monotonically
  increasing sequence number breaks ties), so re-running with the same seed
  reproduces the exact event interleaving.
* The clock only moves when the loop pops an event; callbacks may schedule
  new events at or after the current time but never in the past.
"""

from __future__ import annotations

import gc
import heapq
from time import perf_counter
from typing import Any, Callable, List, Optional, Protocol, Tuple

from repro.obs import recorder as _obs

__all__ = ["ArrivalStream", "Event", "Simulator", "SimulationError"]


#: callback.__module__ -> short subsystem label, e.g.
#: "repro.core.gateway" -> "gateway". Cached because the same handful of
#: modules schedule millions of events.
_SUBSYSTEM_CACHE: dict = {}

#: Module tails whose emit points use a different subsystem label; kept in
#: sync so timing rows join the event rows in the trace summary.
_SUBSYSTEM_ALIASES = {
    "flash_clone": "clone",
    "honeyfarm": "farm",
    "injectors": "faults",
    "recorder": "metrics",
}


def _subsystem_of(callback: Callable[..., Any]) -> str:
    """Attribute a callback to the subsystem (module tail) that owns it."""
    module = getattr(callback, "__module__", None) or "unknown"
    subsystem = _SUBSYSTEM_CACHE.get(module)
    if subsystem is None:
        tail = module.rsplit(".", 1)[-1]
        subsystem = _SUBSYSTEM_CACHE[module] = _SUBSYSTEM_ALIASES.get(tail, tail)
    return subsystem


class SimulationError(Exception):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class ArrivalStream(Protocol):
    """A pre-sorted source of work merged into :meth:`Simulator.run`.

    Streams exist so bulk workloads (a million telescope arrivals) do not
    pay one heap entry per item: the stream holds its items in arrival
    order, owns a contiguous block of sequence numbers reserved via
    :meth:`Simulator.reserve_seqs` at attach time, and the run loop merges
    it against the heap by ``(time, seq)`` key — so firing order is
    bit-identical to scheduling every item individually.
    """

    def peek(self) -> Optional[Tuple[float, int]]:
        """``(time, seq)`` of the next undelivered item, or None when
        exhausted."""

    def drain(
        self,
        until: Optional[float],
        limit_key: Optional[Tuple[float, int]],
        budget: Optional[int],
    ) -> int:
        """Deliver items while they outrank the simulator's heap head,
        ``limit_key`` (the best key among *other* attached streams), and
        ``until``; returns how many items were delivered. The stream is
        responsible for advancing the clock and the processed-event count
        via :meth:`Simulator.advance_for_stream` for every item."""


class Event:
    """A scheduled callback, returned by :meth:`Simulator.schedule`.

    Holding on to the event lets callers cancel it before it fires — the
    idiom used throughout the reproduction for idle timers that are pushed
    back whenever a VM receives another packet.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent this event from firing.

        Cancelling an already-fired or already-cancelled event is a no-op;
        the event is lazily discarded when the loop pops it (or earlier,
        if the owning simulator compacts its heap).
        """
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """Discrete-event loop with a simulated clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1.5, fired.append, "late")
    >>> _ = sim.schedule(0.5, fired.append, "early")
    >>> sim.run()
    >>> fired
    ['early', 'late']
    >>> sim.now
    1.5
    """

    #: Compaction never triggers below this queue size — rebuilding a tiny
    #: heap costs more bookkeeping than the dead events it would remove.
    COMPACTION_MIN_QUEUE = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = 0
        self._streams: List[ArrivalStream] = []
        self._running = False
        self._events_processed = 0
        self._cancelled_in_heap = 0
        self._compactions = 0

    # ------------------------------------------------------------------ #
    # Clock
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled_in_heap

    @property
    def compactions(self) -> int:
        """How many times the heap has been compacted."""
        return self._compactions

    # ------------------------------------------------------------------ #
    # Heap hygiene
    # ------------------------------------------------------------------ #

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` while the event sits in the heap.

        Idle-timer push-back cancels one event per packet, so cancelled
        events would otherwise pile up and inflate every heap operation to
        O(log dead). Once the dead fraction crosses one half (and the heap
        is big enough to care), rebuild without them: events carry a strict
        (time, seq) total order, so re-heapifying cannot change firing
        order.
        """
        self._cancelled_in_heap += 1
        if (
            len(self._queue) >= self.COMPACTION_MIN_QUEUE
            and self._cancelled_in_heap * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        live: list[Event] = []
        for event in self._queue:
            if event.cancelled:
                # Detach dropped tombstones: the event no longer occupies a
                # heap slot, so nothing it does later (it is already
                # cancelled, but belt-and-braces) may touch this simulator.
                event._sim = None
            else:
                live.append(event)
        self._queue = live
        heapq.heapify(self._queue)
        self._cancelled_in_heap = 0
        self._compactions += 1

    def _discard_head(self) -> None:
        """Pop a cancelled event off the heap and forget it."""
        event = heapq.heappop(self._queue)
        event._sim = None
        self._cancelled_in_heap -= 1

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled until it fires.
        ``delay`` must be non-negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}; clock is already at {self._now!r}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(float(time), seq, callback, args)
        event._sim = self
        heapq.heappush(self._queue, event)
        return event

    def reserve_seqs(self, count: int) -> int:
        """Reserve a contiguous block of ``count`` sequence numbers and
        return the first.

        Arrival streams (see :class:`ArrivalStream`) claim their tie-break
        seqs up front: item ``i`` carries key ``(times[i], base + i)``, so
        at equal timestamps stream items fire before anything scheduled
        *after* the reservation and after anything scheduled before it —
        exactly the order individual ``schedule_at`` calls made at
        reservation time would have produced.
        """
        if count < 0:
            raise SimulationError(f"cannot reserve {count!r} sequence numbers")
        base = self._seq
        self._seq = base + count
        return base

    def attach_stream(self, stream: ArrivalStream) -> None:
        """Merge ``stream`` into this simulator's run loop.

        The stream must already hold its sequence block (via
        :meth:`reserve_seqs`) and its first item must not be in the past.
        Exhausted streams are detached automatically by :meth:`run`.
        """
        key = stream.peek()
        if key is not None and key[0] < self._now:
            raise SimulationError(
                f"cannot attach stream starting at t={key[0]!r}; clock is"
                f" already at {self._now!r}"
            )
        self._streams.append(stream)

    def advance_for_stream(self, time: float, count: int = 1) -> None:
        """Clock/accounting hook for streams delivering items from
        :meth:`ArrivalStream.drain`: each delivered item advances the
        clock to its timestamp and counts as one processed event, exactly
        as if it had been popped off the heap."""
        self._now = time
        self._events_processed += count

    def call_now(self, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at the current time (after the
        currently-executing event completes)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue was empty.
        Cancelled events are discarded without advancing the clock.
        Serves the heap only — attached :class:`ArrivalStream` items are
        merged by :meth:`run`, which is how streamed workloads execute.
        """
        while self._queue:
            if self._queue[0].cancelled:
                self._discard_head()
                continue
            event = heapq.heappop(self._queue)
            event._sim = None  # fired; a late cancel() must not touch the heap count
            self._now = event.time
            self._events_processed += 1
            recorder = _obs.ACTIVE
            if recorder is None:
                event.callback(*event.args)
            else:
                # Flight-recorder timing hook: attribute this callback's
                # wall-clock cost to its owning subsystem. Wall time stays
                # out of the event stream (it is nondeterministic).
                started = perf_counter()
                event.callback(*event.args)
                recorder.record_timing(
                    _subsystem_of(event.callback), perf_counter() - started
                )
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given, the clock is advanced on **every** exit
        path, so time-based metrics close their final interval
        consistently: to exactly ``until`` when the queue drained or only
        later events remain, and — when ``max_events`` stops the loop with
        earlier events still pending — to the next pending event's time
        (never past it, so the clock cannot run backwards on resume).
        Events scheduled at exactly ``until`` still fire.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        executed = 0
        gc_saved = None
        if self._streams and gc.isenabled():
            # Stream drains allocate span bookkeeping (flow records,
            # sessions, numpy scratch) in dense bursts; the default gen-0
            # threshold makes the cyclic collector walk the heap thousands
            # of times per storm for objects that are overwhelmingly still
            # live. Trade collection frequency for batch size while the
            # drain runs; restored on every exit path. Purely a wall-clock
            # knob — collection points never affect simulated state.
            gc_saved = gc.get_threshold()
            gc.set_threshold(50_000, 50, 50)
        try:
            while True:
                if max_events is not None and executed >= max_events:
                    break
                # self._queue is re-read each pass: compaction rebinds it.
                while self._queue and self._queue[0].cancelled:
                    self._discard_head()
                head = self._queue[0] if self._queue else None
                stream, stream_key, runner_key = self._best_stream()
                if stream is not None and (
                    head is None or stream_key < (head.time, head.seq)
                ):
                    if until is not None and stream_key[0] > until:
                        break
                    budget = None if max_events is None else max_events - executed
                    executed += stream.drain(until, runner_key, budget)
                    if stream.peek() is None:
                        self._streams.remove(stream)
                    continue
                if head is None:
                    break
                if until is not None and head.time > until:
                    break
                self.step()
                executed += 1
            if until is not None and self._now < until:
                next_time = self._next_pending_time()
                target = until if next_time is None else min(until, next_time)
                if target > self._now:
                    self._now = target
        finally:
            self._running = False
            if gc_saved is not None:
                gc.set_threshold(*gc_saved)

    def _best_stream(
        self,
    ) -> Tuple[Optional[ArrivalStream], Optional[Tuple[float, int]], Optional[Tuple[float, int]]]:
        """The attached stream with the earliest key, its key, and the
        runner-up key (the limit a drain of the best stream must respect
        so two streams still interleave in (time, seq) order)."""
        best = None
        best_key = None
        runner_key = None
        for stream in self._streams:
            key = stream.peek()
            if key is None:
                continue
            if best_key is None or key < best_key:
                runner_key = best_key
                best, best_key = stream, key
            elif runner_key is None or key < runner_key:
                runner_key = key
        return best, best_key, runner_key

    def _next_pending_time(self) -> Optional[float]:
        """Time of the next live event or stream arrival, discarding dead
        heads en route."""
        next_time: Optional[float] = None
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                self._discard_head()
                continue
            next_time = head.time
            break
        for stream in self._streams:
            key = stream.peek()
            if key is not None and (next_time is None or key[0] < next_time):
                next_time = key[0]
        return next_time

    def reset(self, start_time: float = 0.0) -> None:
        """Discard all pending events and streams and rewind the clock."""
        for event in self._queue:
            event._sim = None
        self._queue.clear()
        self._streams.clear()
        self._now = float(start_time)
        self._events_processed = 0
        self._cancelled_in_heap = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Simulator now={self._now:.6f} pending={len(self._queue)} "
            f"processed={self._events_processed}>"
        )
