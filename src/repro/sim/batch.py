"""Struct-of-arrays arrival batching for the simulator hot loop.

Replaying a telescope trace used to mean one heap entry, one ``Event``
object, and one full dispatch-loop pass per packet — the per-event Python
overhead, not the gateway, was the end-to-end bottleneck (ROADMAP item 2).
:class:`PacketArrivalStream` removes it: arrivals live in two preallocated
parallel arrays (timestamps and prebuilt :class:`~repro.net.packet.Packet`
objects — a struct-of-arrays layout, so no per-arrival container is ever
allocated), the stream reserves a contiguous block of tie-break sequence
numbers at attach time, and :meth:`Simulator.run` merges it against the
event heap by ``(time, seq)``.

Ordering contract (what makes batching a *pure mechanical transform*):

* Item ``i`` carries key ``(times[i], base_seq + i)``. Reserving the seq
  block at attach time gives every arrival a lower seq than any event
  scheduled afterwards — identical to what per-event ``schedule_at``
  calls made at the same moment would have held.
* A *batch* is a maximal run of equal timestamps. Within a batch no heap
  check is needed: events scheduled by a dispatched packet's callbacks
  land at ``time >= now`` with a seq above the whole reservation, so they
  cannot outrank any remaining arrival at the same timestamp. Between
  batches the stream re-checks the heap head (and the best key of any
  *other* attached stream) so interleaved events fire in exact
  ``(time, seq)`` order.
* Flow-table expiry keeps per-event boundary semantics for free: sweeps
  are ordinary heap events, and a sweep scheduled at the batch timestamp
  was necessarily scheduled *before* the stream attached (lower seq) or
  *after* (higher seq) — the merge fires it in exactly the slot the
  per-event loop would have.

When numpy is importable, batch boundaries come from ``searchsorted``
over a prebuilt float64 view of the timestamps; otherwise a pure-Python
walk finds the same boundary. Timestamps handed to the simulator are
always the original Python floats, so nothing downstream ever sees a
numpy scalar.

Dispatch has three lanes, chosen per batch (fastest first):

* **span lane** — lazy struct-of-arrays only (:class:`PacketColumns`
  attached) and no flight recorder: a whole *multi-timestamp* run of
  arrivals, bounded by the next heap event / ``until`` / budget via
  binary search, goes to ``deliver_span(columns, start, limit)``
  (normally :meth:`~repro.core.gateway.Gateway.dispatch_span`), which
  processes the prefix it can prove equivalent to per-event dispatch
  without ever materializing a :class:`~repro.net.packet.Packet` and
  returns how many it consumed. Whatever it declines falls through to
  the batch lane below, so progress is always made.
* **fast lane** — no flight recorder installed: one equal-timestamp
  batch goes to ``deliver_batch(packets, start, end, now)`` (normally
  :meth:`~repro.core.gateway.Gateway.dispatch_batch`), which preserves
  per-packet verdicts, ledger buckets, ladder consultation, and
  containment classification while hoisting the per-packet Python
  overhead out of the loop.
* **faithful lane** — recorder installed (or no batch entry point):
  each packet goes through the per-packet ``deliver`` callable wrapped
  in the same per-subsystem timing hook the event loop applies, so
  flight-recorder traces stay bit-identical to the per-event loop.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from operator import attrgetter
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.addr import IPAddress
from repro.net.packet import Packet
from repro.obs import recorder as _obs
from repro.sim.engine import SimulationError, Simulator

try:  # numpy is optional: searchsorted only accelerates batch formation
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via force_python flag
    _np = None

__all__ = ["PacketColumns", "PacketArrivalStream"]

# Column extractors: ``map(attrgetter, records)`` iterates in C, which
# matters at 10^5 records per replay. The 5-field getter returns the
# arrival key tuple directly, in FlowKey-compatible field order.
_get_time = attrgetter("time")
_get_key = attrgetter("src", "src_port", "dst", "dst_port", "protocol")
_get_payload = attrgetter("payload")
_get_size = attrgetter("size")


class PacketColumns:
    """Struct-of-arrays view of a trace: one column per packet field,
    packets materialized lazily.

    Building a :class:`~repro.net.packet.Packet` per arrival (~6 µs each)
    costs more than the whole span-lane dispatch budget, so the batched
    replay path keeps arrivals as parallel columns of plain
    ints/floats/strings — C-speed comprehensions over the trace records —
    and only materializes ``packets[i]`` when a packet actually leaves
    the span lane (slow-path dispatch, promotion-buffer replay, or the
    faithful per-packet lane). ``packet_at`` caches, so a packet is
    built at most once and every consumer shares the same instance.

    ``keys[i]`` is the *arrival* 5-tuple ``(src, src_port, dst, dst_port,
    protocol)`` with addresses as the trace's dotted-quad strings —
    injective per conversation direction, which is all the gateway's span
    cache needs. ``addr_cache`` (dotted-quad → :class:`IPAddress`) starts
    empty and fills lazily: only addresses of flows that actually reach
    the resolve path (or a materialized packet) ever pay for parsing.

    :meth:`numpy_view` exposes float64/bool mirrors of the numeric
    columns for the gateway's vectorized span aggregation; without numpy
    it returns None and the per-packet span loop runs instead.
    """

    __slots__ = (
        "records",
        "n",
        "times",
        "keys",
        "payloads",
        "sizes",
        "addr_cache",
        "packets",
        "_np_view",
        "_kid_np",
    )

    def __init__(self, records: Sequence, time_offset: float = 0.0) -> None:
        records = list(records)
        self.records = records
        self.n = len(records)
        if time_offset:
            self.times: List[float] = [r.time + time_offset for r in records]
        else:
            self.times = list(map(_get_time, records))
        self.keys: List[Tuple[str, int, str, int, int]] = list(
            map(_get_key, records)
        )
        self.payloads: List[str] = list(map(_get_payload, records))
        self.sizes: List[int] = list(map(_get_size, records))
        self.addr_cache: Dict[str, IPAddress] = {}
        self.packets: List[Optional[Packet]] = [None] * self.n
        self._np_view: Optional[Tuple] = None
        self._kid_np = None

    def numpy_view(self):
        """``(times_f64, sizes_f64, has_payload_bool)`` numpy mirrors of
        the columns (built once, cached), or None when numpy is absent.
        Sizes are float64 so they can feed ``bincount`` weights directly;
        sums stay exact (sizes and counts are far below 2**53)."""
        view = self._np_view
        if view is None:
            if _np is None:
                return None
            view = self._np_view = (
                _np.asarray(self.times, dtype=_np.float64),
                _np.asarray(self.sizes, dtype=_np.float64),
                _np.fromiter(
                    (len(p) != 0 for p in self.payloads), _np.bool_, self.n
                ),
            )
        return view

    def key_ids(self):
        """Arrival keys factorized to integer ids (numpy ``intp`` array,
        built once, cached), or None when numpy is absent.

        ``key_ids()[i]`` is the index of the *first* arrival sharing
        ``keys[i]``'s 5-tuple — stable, injective per conversation
        direction, and bounded by ``n``. The gateway's vectorized span
        lane keys its flow-entry cache by these ids: flat array indexing
        replaces tuple hashing on every per-packet cache probe."""
        kids = self._kid_np
        if kids is None:
            if _np is None:
                return None
            index: Dict = {}
            kids = self._kid_np = _np.fromiter(
                map(index.setdefault, self.keys, range(self.n)),
                _np.intp,
                self.n,
            )
        return kids

    def packet_at(self, i: int) -> Packet:
        """Materialize (and cache) the packet for record ``i``."""
        packet = self.packets[i]
        if packet is None:
            packet = self.packets[i] = self.records[i].to_packet(self.addr_cache)
        return packet

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        built = sum(1 for p in self.packets if p is not None)
        return f"<PacketColumns n={self.n} materialized={built}>"


class PacketArrivalStream:
    """A time-sorted packet workload merged into ``Simulator.run``.

    ``times`` and ``packets`` are parallel arrays (``times`` must be
    non-decreasing); ``deliver`` is the per-packet injection callable the
    per-event loop would have scheduled (e.g. ``farm.inject``), and
    ``deliver_batch`` the optional vectorized entry point used when no
    flight recorder is installed.
    """

    __slots__ = (
        "_sim",
        "_times",
        "_packets",
        "_deliver",
        "_deliver_batch",
        "_columns",
        "_deliver_span",
        "_timing_label",
        "_pos",
        "_len",
        "_base_seq",
        "_times_np",
    )

    def __init__(
        self,
        sim: Simulator,
        times: Sequence[float],
        packets: List[Packet],
        deliver: Callable[[Packet], None],
        deliver_batch: Optional[Callable[[List[Packet], int, int, float], None]] = None,
        timing_label: str = "farm",
        force_python: bool = False,
        columns: Optional[PacketColumns] = None,
        deliver_span: Optional[Callable[[PacketColumns, int, int], int]] = None,
    ) -> None:
        if len(times) != len(packets):
            raise ValueError(
                f"times/packets length mismatch: {len(times)} != {len(packets)}"
            )
        times = [float(t) for t in times]
        times_np = (
            _np.asarray(times, dtype=_np.float64)
            if (_np is not None and not force_python)
            else None
        )
        if times_np is not None and len(times) > 1:
            descending = times_np[1:] < times_np[:-1]
            bad = int(descending.argmax()) + 1 if descending.any() else 0
        else:
            bad = 0
            for i in range(1, len(times)):
                if times[i] < times[i - 1]:
                    bad = i
                    break
        if bad:
            raise SimulationError(
                f"arrival times must be non-decreasing: item {bad} at"
                f" t={times[bad]!r} after t={times[bad - 1]!r}"
            )
        if columns is not None and packets is not columns.packets:
            raise ValueError(
                "columns.packets must be the stream's packets list (the"
                " lazy-materialization cache is shared)"
            )
        self._sim = sim
        self._times = times
        self._packets = packets
        self._deliver = deliver
        self._deliver_batch = deliver_batch
        self._columns = columns
        self._deliver_span = deliver_span if columns is not None else None
        self._timing_label = timing_label
        self._pos = 0
        self._len = len(times)
        self._base_seq = sim.reserve_seqs(self._len)
        self._times_np = times_np

    # ------------------------------------------------------------------ #
    # ArrivalStream protocol (see repro.sim.engine)
    # ------------------------------------------------------------------ #

    @property
    def remaining(self) -> int:
        return self._len - self._pos

    def peek(self) -> Optional[Tuple[float, int]]:
        i = self._pos
        if i >= self._len:
            return None
        return (self._times[i], self._base_seq + i)

    def _batch_end(self, start: int, t: float) -> int:
        """End index (exclusive) of the equal-timestamp run beginning at
        ``start``: numpy ``searchsorted`` when available, else a walk."""
        if self._times_np is not None:
            return int(self._times_np.searchsorted(t, side="right"))
        times = self._times
        end = start + 1
        n = self._len
        while end < n and times[end] == t:
            end += 1
        return end

    def _span_limit(self, ktime: float, kseq: int, lo: int, hi: int) -> int:
        """First index in ``[lo, hi)`` whose ``(time, seq)`` key outranks
        ``(ktime, kseq)`` — arrivals below it may fire before that event.
        Mirrors the per-item checks in :meth:`drain` exactly: an arrival
        fires while its key is ``<=`` the competing key."""
        times = self._times
        left = bisect_left(times, ktime, lo, hi)
        right = bisect_right(times, ktime, left, hi)
        cut = kseq - self._base_seq + 1
        if cut < left:
            return left
        if cut > right:
            return right
        return cut

    def drain(
        self,
        until: Optional[float],
        limit_key: Optional[Tuple[float, int]],
        budget: Optional[int],
    ) -> int:
        sim = self._sim
        times = self._times
        base = self._base_seq
        n = self._len
        i = self._pos
        delivered = 0
        deliver_span = self._deliver_span
        columns = self._columns
        while i < n:
            t = times[i]
            if until is not None and t > until:
                break
            seq = base + i
            if limit_key is not None and limit_key < (t, seq):
                break
            queue = sim._queue  # re-read: compaction rebinds the list
            head = queue[0] if queue else None
            if head is not None and (
                head.time < t or (head.time == t and head.seq < seq)
            ):
                break
            if deliver_span is not None and _obs.ACTIVE is None:
                # Span lane: hand the gateway the longest run of arrivals
                # that provably fires before the next heap event (the fast
                # path schedules nothing, so the bound stays valid for the
                # whole span). The gateway consumes the prefix it can
                # prove per-event-equivalent and leaves the rest to the
                # batch lane below.
                lim = n
                if until is not None:
                    lim = bisect_right(times, until, i, lim)
                if head is not None:
                    lim = self._span_limit(head.time, head.seq, i, lim)
                if limit_key is not None:
                    lim = self._span_limit(limit_key[0], limit_key[1], i, lim)
                if budget is not None and lim - i > budget - delivered:
                    lim = i + (budget - delivered)
                if lim > i:
                    done = deliver_span(columns, i, lim)
                    if done:
                        # Clock/accounting after the fact: the span never
                        # reads sim.now, so advancing once to the last
                        # consumed timestamp is equivalent to per-item
                        # advancement.
                        sim.advance_for_stream(times[i + done - 1], done)
                        i += done
                        self._pos = i
                        delivered += done
                        if budget is not None and delivered >= budget:
                            break
                        continue
            end = self._batch_end(i, t)
            if budget is not None and end - i > budget - delivered:
                end = i + (budget - delivered)
            sim.advance_for_stream(t, end - i)
            self._pos = end  # before dispatch: callbacks may inspect us
            self._dispatch_slice(i, end, t)
            delivered += end - i
            i = end
            if budget is not None and delivered >= budget:
                break
        return delivered

    # ------------------------------------------------------------------ #
    # Dispatch lanes
    # ------------------------------------------------------------------ #

    def _dispatch_slice(self, start: int, end: int, now: float) -> None:
        recorder = _obs.ACTIVE
        packets = self._packets
        columns = self._columns
        if columns is not None:
            # Lazy columns: packets the span lane never consumed are
            # materialized here, in arrival order, exactly as the eager
            # path built them.
            packet_at = columns.packet_at
            for k in range(start, end):
                if packets[k] is None:
                    packet_at(k)
        if recorder is None:
            deliver_batch = self._deliver_batch
            if deliver_batch is not None:
                deliver_batch(packets, start, end, now)
                return
            deliver = self._deliver
            for k in range(start, end):
                deliver(packets[k])
            return
        # Faithful lane: per-packet delivery with the same per-subsystem
        # timing attribution Simulator.step applies, so recorded traces
        # are bit-identical to the per-event loop's.
        deliver = self._deliver
        label = self._timing_label
        for k in range(start, end):
            started = perf_counter()
            deliver(packets[k])
            recorder.record_timing(label, perf_counter() - started)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PacketArrivalStream {self._pos}/{self._len}"
            f" base_seq={self._base_seq}>"
        )
