"""Discrete-event simulation substrate for the Potemkin reproduction.

Everything in the reproduction that has a notion of time — packet arrivals,
clone latencies, idle timeouts, worm epidemics — runs on top of this small,
deterministic discrete-event kernel:

* :class:`~repro.sim.engine.Simulator` — the event loop and simulated clock.
* :class:`~repro.sim.rand.RandomStream` / :class:`~repro.sim.rand.SeedSequence`
  — named, reproducible random streams.
* :mod:`repro.sim.metrics` — counters, gauges, histograms, and time series
  used by every experiment to record results.
* :mod:`repro.sim.process` — lightweight generator-based processes for
  modelling sequential behaviour (e.g. a guest handling a TCP session).

The kernel is deliberately minimal: events are ``(time, seq, callback)``
triples ordered by time then insertion sequence, so a given seed always
produces a bit-identical run.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    TimeSeries,
)
from repro.sim.process import Process, Sleep, WaitEvent, spawn
from repro.sim.rand import RandomStream, SeedSequence

__all__ = [
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Process",
    "RandomStream",
    "SeedSequence",
    "Simulator",
    "SimulationError",
    "Sleep",
    "TimeSeries",
    "WaitEvent",
    "spawn",
]
