"""Fault injectors and the chaos controller that drives a plan.

Three injectors carry faults out against the running farm:

* :class:`HostCrashInjector` — a :class:`~repro.vmm.host.PhysicalHost`
  goes down (every resident VM destroyed, in-flight clones on it fail)
  and rejoins after a repair delay. The farm's self-healing reaction —
  dropping pending queues with cause accounting, re-spawning displaced
  addresses on surviving hosts under capped backoff, topping the warm
  pool back up — lives in :meth:`repro.core.honeyfarm.Honeyfarm.crash_host`.
* :class:`LinkImpairmentInjector` — outage windows, loss bursts, and
  latency spikes layered onto :class:`~repro.net.link.Link` objects as
  time-varying impairment state.
* :class:`CloneFaultInjector` — arms the flash-clone engine's fault
  hook so clones fail probabilistically (surfaced as a failed
  :class:`~repro.core.flash_clone.CloneResult`, never an exception).

:class:`ChaosController` owns the injectors, schedules a
:class:`~repro.faults.plan.FaultPlan` onto the farm's sim clock, and
keeps the :class:`FaultRecord` timeline the recovery report reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.faults.plan import FaultPlan, FaultSpec
from repro.net.link import Link
from repro.obs import recorder as _obs
from repro.sim.rand import RandomStream, SeedSequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.flash_clone import FlashCloneEngine
    from repro.core.honeyfarm import Honeyfarm
    from repro.vmm.host import PhysicalHost

__all__ = [
    "FaultRecord",
    "HostCrashInjector",
    "LinkImpairmentInjector",
    "CloneFaultInjector",
    "ChaosController",
]


@dataclass
class FaultRecord:
    """One fired fault, as the recovery report sees it.

    ``cleared_at`` is when the fault was undone (host repaired,
    impairment window closed); ``None`` means it never cleared within
    the run. ``detail`` carries injector-specific impact numbers.
    """

    kind: str
    target: str
    fired_at: float
    cleared_at: Optional[float] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def skipped(self) -> bool:
        """True when the injector could not act (e.g. no host left up)."""
        return bool(self.detail.get("skipped"))


class HostCrashInjector:
    """Crashes physical hosts and schedules their repair."""

    def __init__(self, farm: "Honeyfarm", rng: RandomStream) -> None:
        self.farm = farm
        self.rng = rng

    def _resolve(self, target: Optional[str]) -> Optional["PhysicalHost"]:
        up = [host for host in self.farm.hosts if not host.failed]
        if not up:
            return None
        if target is None or target == "random":
            return self.rng.choice(up)
        for host in up:
            if host.name == target:
                return host
        try:
            index = int(target)
        except ValueError:
            return None
        if 0 <= index < len(self.farm.hosts):
            host = self.farm.hosts[index]
            return None if host.failed else host
        return None

    def fire(self, spec: FaultSpec) -> FaultRecord:
        now = self.farm.sim.now
        host = self._resolve(spec.target)
        if host is None:
            return FaultRecord(
                kind=spec.kind, target=str(spec.target), fired_at=now,
                detail={"skipped": "no eligible host"},
            )
        impact = self.farm.crash_host(host)
        record = FaultRecord(
            kind=spec.kind, target=host.name, fired_at=now, detail=impact,
        )
        if spec.duration > 0:
            self.farm.sim.schedule(spec.duration, self._repair, host, record)
        return record

    def _repair(self, host: "PhysicalHost", record: FaultRecord) -> None:
        self.farm.repair_host(host)
        record.cleared_at = self.farm.sim.now
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.farm.sim.now, "faults", "cleared",
                kind=record.kind, target=record.target,
            )


class LinkImpairmentInjector:
    """Applies impairment windows to named links."""

    def __init__(self, links: Dict[str, Link]) -> None:
        self.links = links

    def fire(self, spec: FaultSpec) -> FaultRecord:
        link = self.links.get(spec.target or "")
        sim_now = None
        if link is None:
            return FaultRecord(
                kind=spec.kind, target=str(spec.target), fired_at=0.0,
                detail={"skipped": "unknown link"},
            )
        sim_now = link.sim.now
        if spec.kind == "link_outage":
            link.impair(spec.duration, down=True)
        elif spec.kind == "link_loss":
            link.impair(spec.duration, loss_rate=spec.rate)
        else:  # link_latency
            link.impair(spec.duration, extra_delay=spec.extra_delay)
        return FaultRecord(
            kind=spec.kind, target=spec.target or "", fired_at=sim_now,
            cleared_at=sim_now + spec.duration,
            detail={"rate": spec.rate, "extra_delay": spec.extra_delay}
            if spec.kind != "link_outage" else {},
        )


class CloneFaultInjector:
    """Arms the flash-clone engine's fault hook for a window.

    Overlapping windows stack: the hook stays armed until every window
    has expired, and the most recently fired window's rate wins.
    """

    def __init__(self, engine: "FlashCloneEngine", rng: RandomStream) -> None:
        self.engine = engine
        self.rng = rng
        self._active_windows = 0
        self._rate = 0.0

    def fire(self, spec: FaultSpec) -> FaultRecord:
        now = self.engine.sim.now
        self._rate = spec.rate
        self._active_windows += 1
        self.engine.fault_hook = self._hook
        self.engine.sim.schedule(spec.duration, self._expire)
        return FaultRecord(
            kind=spec.kind, target=f"rate={spec.rate:g}", fired_at=now,
            cleared_at=now + spec.duration, detail={"rate": spec.rate},
        )

    def _expire(self) -> None:
        self._active_windows -= 1
        if self._active_windows == 0:
            # Disarm entirely: an unarmed hook costs the clone path nothing.
            self.engine.fault_hook = None

    def _hook(self, vm: Any) -> Optional[str]:
        return "fault" if self.rng.bernoulli(self._rate) else None


class ChaosController:
    """Schedules a :class:`FaultPlan` onto a farm's sim clock.

    Usage::

        plan = FaultPlan(events=(host_crash(at=60.0, repair_after=30.0),), seed=7)
        controller = ChaosController(farm, plan)
        controller.start()
        farm.run(until=180.0)
        controller.records   # FaultRecord timeline for the recovery report

    Link targets resolve against ``links`` plus, automatically, the
    gateway's registered tunnel return links as ``"tunnel:<key>"``.
    All randomness derives from the *plan's* seed, isolated from the
    farm's workload streams.
    """

    def __init__(
        self,
        farm: "Honeyfarm",
        plan: FaultPlan,
        links: Optional[Dict[str, Link]] = None,
    ) -> None:
        self.farm = farm
        self.plan = plan
        self.links: Dict[str, Link] = dict(links or {})
        for key, link in farm.gateway.tunnel_links().items():
            self.links.setdefault(f"tunnel:{key}", link)
        self.seeds = SeedSequence(plan.seed)
        self.records: List[FaultRecord] = []
        self._started = False
        self._host_injector = HostCrashInjector(farm, self.seeds.stream("host-crash"))
        self._link_injector = LinkImpairmentInjector(self.links)
        self._clone_injector = CloneFaultInjector(
            farm.clone_engine, self.seeds.stream("clone-fault")
        )
        self._recurrence_rng = self.seeds.stream("recurrence")

    def start(self) -> None:
        """Schedule every event in the plan (no-op for an empty plan)."""
        if self._started:
            raise ValueError("chaos controller already started")
        self._started = True
        sim = self.farm.sim
        for spec in self.plan.events:
            if spec.at is not None:
                sim.schedule_at(max(spec.at, sim.now), self._fire, spec, 0)
            else:
                sim.schedule(self._spacing(spec), self._fire, spec, 0)

    def _spacing(self, spec: FaultSpec) -> float:
        delay = spec.every or 0.0
        if spec.jitter > 0.0:
            delay *= 1.0 + self._recurrence_rng.uniform(-spec.jitter, spec.jitter)
        return delay

    def _fire(self, spec: FaultSpec, occurrence: int) -> None:
        record = self._dispatch(spec)
        self.records.append(record)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.farm.sim.now, "faults", "fired",
                kind=record.kind, target=record.target,
                skipped=record.skipped, detail=dict(record.detail),
            )
        if spec.every is not None:
            nxt = occurrence + 1
            if spec.count is None or nxt < spec.count:
                self.farm.sim.schedule(self._spacing(spec), self._fire, spec, nxt)

    def _dispatch(self, spec: FaultSpec) -> FaultRecord:
        if spec.kind == "host_crash":
            return self._host_injector.fire(spec)
        if spec.kind == "clone_faults":
            return self._clone_injector.fire(spec)
        return self._link_injector.fire(spec)

    @property
    def faults_fired(self) -> int:
        """Faults that actually acted (skipped firings excluded)."""
        return sum(1 for record in self.records if not record.skipped)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ChaosController events={len(self.plan)} fired={len(self.records)}"
            f" seed={self.plan.seed}>"
        )
