"""Capped exponential backoff with seeded jitter.

The farm's self-healing paths (re-spawning the VMs a crashed host was
serving, retrying after an injected clone fault) retry on a capped
exponential schedule. Jitter comes from a caller-supplied
:class:`~repro.sim.rand.RandomStream`, so the schedule is deterministic
per seed while still de-synchronizing retries within one run — without
jitter, every address a crashed host served would retry in lock-step and
hammer the surviving hosts at the same instants.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.rand import RandomStream

__all__ = ["backoff_delay"]

#: Exponent ceiling: 2**32 * any sane base already exceeds any cap, so
#: larger attempts need not (and must not) compute astronomically large
#: intermediate powers.
_MAX_EXPONENT = 32


def backoff_delay(
    attempt: int,
    base: float,
    cap: float,
    jitter: float = 0.0,
    rng: Optional[RandomStream] = None,
) -> float:
    """Delay before retry number ``attempt`` (0-based).

    ``min(cap, base * 2**attempt)``, multiplied by a uniform factor in
    ``[1 - jitter, 1 + jitter)`` drawn from ``rng``. With ``jitter`` of 0
    (or no ``rng``) the schedule is the pure capped exponential.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt!r}")
    if base <= 0:
        raise ValueError(f"base must be positive, got {base!r}")
    if cap < base:
        raise ValueError(f"cap must be >= base, got cap={cap!r} base={base!r}")
    if not (0.0 <= jitter < 1.0):
        raise ValueError(f"jitter must be in [0, 1), got {jitter!r}")
    delay = min(cap, base * (2 ** min(attempt, _MAX_EXPONENT)))
    if jitter > 0.0 and rng is not None:
        delay *= 1.0 + rng.uniform(-jitter, jitter)
    return delay
