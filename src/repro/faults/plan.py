"""The :class:`FaultPlan` DSL: declarative, deterministic fault schedules.

A plan is a root seed plus a tuple of :class:`FaultSpec` events. Each
event is either **one-shot** (``at`` — an absolute sim time) or
**recurring** (``every`` — a period, optionally jittered and bounded by
``count``). Plans round-trip through JSON, so they compose from config
files and the CLI (``potemkin chaos --fault-plan plan.json``) as well as
from the builder helpers in this module.

Determinism contract
--------------------
All randomness (recurrence jitter, random host selection, clone-failure
coin flips) draws from streams derived from the plan's own seed — never
from the farm's workload streams — so adding or removing faults cannot
perturb the workload's random sequences. Fault events are scheduled
through the engine's priority queue and therefore obey the same
insertion-order tie-breaking as every other event: two faults at the
same timestamp fire in plan order, and a fault scheduled at the same
time as a workload event fires in whichever order the events were
inserted, exactly as the engine documents.

Plan schema (JSON)::

    {
      "seed": 7,
      "events": [
        {"kind": "host_crash", "at": 60.0, "target": "0", "duration": 30.0},
        {"kind": "host_crash", "every": 120.0, "count": 3, "jitter": 0.1,
         "target": "random", "duration": 20.0},
        {"kind": "link_outage", "at": 10.0, "target": "tunnel:1", "duration": 5.0},
        {"kind": "link_loss", "at": 20.0, "target": "tunnel:1",
         "duration": 3.0, "rate": 0.5},
        {"kind": "link_latency", "at": 30.0, "target": "tunnel:1",
         "duration": 2.0, "extra_delay": 0.2},
        {"kind": "clone_faults", "at": 5.0, "duration": 50.0, "rate": 0.1}
      ]
    }

``duration`` is the repair delay for ``host_crash`` (0 = never repaired)
and the impairment window for everything else.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "host_crash",
    "link_outage",
    "link_loss",
    "link_latency",
    "clone_faults",
]

FAULT_KINDS = (
    "host_crash",
    "link_outage",
    "link_loss",
    "link_latency",
    "clone_faults",
)

_LINK_KINDS = ("link_outage", "link_loss", "link_latency")


@dataclass(frozen=True)
class FaultSpec:
    """One fault event (or recurring family of events) in a plan.

    Fields not meaningful for a ``kind`` must stay at their defaults;
    validation rejects contradictory combinations eagerly so a bad plan
    fails at parse time, not two simulated hours into a run.
    """

    kind: str
    at: Optional[float] = None
    every: Optional[float] = None
    count: Optional[int] = None
    jitter: float = 0.0
    target: Optional[str] = None
    duration: float = 0.0
    rate: float = 0.0
    extra_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if (self.at is None) == (self.every is None):
            raise ValueError(
                f"{self.kind}: exactly one of 'at' (one-shot) or 'every'"
                f" (recurring) must be set"
            )
        if self.at is not None and self.at < 0:
            raise ValueError(f"{self.kind}: 'at' must be >= 0, got {self.at!r}")
        if self.every is not None and self.every <= 0:
            raise ValueError(f"{self.kind}: 'every' must be positive, got {self.every!r}")
        if self.count is not None:
            if self.every is None:
                raise ValueError(f"{self.kind}: 'count' requires 'every'")
            if self.count <= 0:
                raise ValueError(f"{self.kind}: 'count' must be positive")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError(f"{self.kind}: 'jitter' must be in [0, 1)")
        if self.jitter > 0.0 and self.every is None:
            raise ValueError(f"{self.kind}: 'jitter' only applies to recurring events")
        if self.duration < 0:
            raise ValueError(f"{self.kind}: 'duration' must be >= 0")
        if self.kind in _LINK_KINDS:
            if not self.target:
                raise ValueError(f"{self.kind}: a link 'target' is required")
            if self.duration <= 0:
                raise ValueError(f"{self.kind}: 'duration' must be positive")
        if self.kind == "link_loss" and not (0.0 < self.rate <= 1.0):
            raise ValueError(f"link_loss: 'rate' must be in (0, 1], got {self.rate!r}")
        if self.kind == "link_latency" and self.extra_delay <= 0:
            raise ValueError("link_latency: 'extra_delay' must be positive")
        if self.kind == "clone_faults":
            if not (0.0 < self.rate <= 1.0):
                raise ValueError(
                    f"clone_faults: 'rate' must be in (0, 1], got {self.rate!r}"
                )
            if self.duration <= 0:
                raise ValueError("clone_faults: 'duration' must be positive")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict, omitting fields at their defaults."""
        out: Dict[str, Any] = {"kind": self.kind}
        for key, value in asdict(self).items():
            if key == "kind":
                continue
            default = type(self).__dataclass_fields__[key].default
            if value != default:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"fault spec has unknown fields: {sorted(unknown)}")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered tuple of fault events.

    The empty plan (no events) is valid and is the guarantee the rest of
    the system leans on: with no events scheduled, every fault hook stays
    unarmed and the run is bit-identical to one without a chaos
    controller at all.
    """

    events: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "events": [e.to_dict() for e in self.events]}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        unknown = set(data) - {"seed", "events"}
        if unknown:
            raise ValueError(f"fault plan has unknown fields: {sorted(unknown)}")
        events = tuple(FaultSpec.from_dict(e) for e in data.get("events", []))
        return cls(events=events, seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FaultPlan":
        return cls.from_json(Path(path).read_text())


# ---------------------------------------------------------------------- #
# Builder helpers (the programmatic face of the DSL)
# ---------------------------------------------------------------------- #

def _schedule(at: Optional[float], every: Optional[float]) -> Dict[str, Any]:
    return {"at": at, "every": every}


def host_crash(
    at: Optional[float] = None,
    every: Optional[float] = None,
    host: str = "random",
    repair_after: float = 0.0,
    count: Optional[int] = None,
    jitter: float = 0.0,
) -> FaultSpec:
    """A physical host goes down; ``repair_after`` of 0 means forever.

    ``host`` is a farm host index (``"0"``), a host name (``"host-0"``),
    or ``"random"`` (a seeded pick among hosts currently up).
    """
    return FaultSpec(
        kind="host_crash", target=str(host), duration=repair_after,
        count=count, jitter=jitter, **_schedule(at, every),
    )


def link_outage(
    target: str,
    duration: float,
    at: Optional[float] = None,
    every: Optional[float] = None,
    count: Optional[int] = None,
    jitter: float = 0.0,
) -> FaultSpec:
    """The named link delivers nothing for ``duration`` seconds."""
    return FaultSpec(
        kind="link_outage", target=target, duration=duration,
        count=count, jitter=jitter, **_schedule(at, every),
    )


def link_loss(
    target: str,
    duration: float,
    rate: float,
    at: Optional[float] = None,
    every: Optional[float] = None,
    count: Optional[int] = None,
    jitter: float = 0.0,
) -> FaultSpec:
    """A loss burst: ``rate`` extra loss on the link for ``duration``."""
    return FaultSpec(
        kind="link_loss", target=target, duration=duration, rate=rate,
        count=count, jitter=jitter, **_schedule(at, every),
    )


def link_latency(
    target: str,
    duration: float,
    extra_delay: float,
    at: Optional[float] = None,
    every: Optional[float] = None,
    count: Optional[int] = None,
    jitter: float = 0.0,
) -> FaultSpec:
    """A latency spike: ``extra_delay`` seconds added for ``duration``."""
    return FaultSpec(
        kind="link_latency", target=target, duration=duration,
        extra_delay=extra_delay, count=count, jitter=jitter,
        **_schedule(at, every),
    )


def clone_faults(
    duration: float,
    rate: float,
    at: Optional[float] = None,
    every: Optional[float] = None,
    count: Optional[int] = None,
    jitter: float = 0.0,
) -> FaultSpec:
    """Flash clones fail with probability ``rate`` for ``duration``."""
    return FaultSpec(
        kind="clone_faults", duration=duration, rate=rate,
        count=count, jitter=jitter, **_schedule(at, every),
    )
