"""Deterministic fault injection and recovery (the chaos subsystem).

The paper's honeyfarm is a centralized cluster — one gateway fronting
racks of physical servers — and in production such clusters lose hosts,
drop tunnel links, and fail clone operations. This package injects those
faults *deterministically* (same seed, same plan → bit-identical run) so
the reproduction can measure what matters operationally: how fast the
farm heals and how many packets each outage costs.

* :mod:`repro.faults.plan` — the :class:`FaultPlan` DSL: one-shot and
  recurring fault events, composable from config/CLI JSON.
* :mod:`repro.faults.injectors` — the injectors that carry faults out
  (host crashes, link impairments, clone failures) and the
  :class:`ChaosController` that schedules a plan onto the sim clock.
* :mod:`repro.faults.backoff` — capped, jittered exponential backoff
  used by the farm's self-healing respawn path.

See ``docs/FAULTS.md`` for the fault model and the recovery report.
"""

from repro.faults.backoff import backoff_delay
from repro.faults.injectors import (
    ChaosController,
    CloneFaultInjector,
    FaultRecord,
    HostCrashInjector,
    LinkImpairmentInjector,
)
from repro.faults.plan import (
    FaultPlan,
    FaultSpec,
    clone_faults,
    host_crash,
    link_latency,
    link_loss,
    link_outage,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultRecord",
    "ChaosController",
    "HostCrashInjector",
    "LinkImpairmentInjector",
    "CloneFaultInjector",
    "backoff_delay",
    "host_crash",
    "link_outage",
    "link_loss",
    "link_latency",
    "clone_faults",
]
