"""The paper's primary contribution: the Potemkin honeyfarm itself.

The pieces map one-to-one onto the architecture in the paper:

* :mod:`repro.core.gateway` — the gateway router: tunnel termination,
  per-destination VM dispatch, containment enforcement, reflection NAT.
* :mod:`repro.core.flash_clone` — on-demand VM instantiation by forking a
  live reference snapshot (the latency side of scalability).
* :mod:`repro.core.delta` — delta-virtualization accounting: what CoW
  sharing saves, farm-wide (the memory side of scalability).
* :mod:`repro.core.containment` — outbound-traffic policies, from
  drop-everything to scan reflection.
* :mod:`repro.core.reclamation` — when to take honeypot VMs back (idle
  timeouts, memory pressure, detention of infected VMs).
* :mod:`repro.core.honeyfarm` — the orchestrator wiring gateway, servers,
  guests, and policies into a runnable farm.
* :mod:`repro.core.config` — one declarative configuration object.
"""

from repro.core.config import HoneyfarmConfig
from repro.core.containment import (
    AllowDnsPolicy,
    CompositePolicy,
    ContainmentAction,
    ContainmentPolicy,
    DropAllPolicy,
    OpenPolicy,
    OutboundRateLimiter,
    ReflectionPolicy,
    Verdict,
)
from repro.core.delta import farm_memory_breakdown, host_memory_breakdown, MemoryBreakdown
from repro.core.federation import FederatedHoneyfarm
from repro.core.flash_clone import CloneResult, FlashCloneEngine
from repro.core.gateway import Gateway
from repro.core.honeyfarm import Honeyfarm
from repro.core.placement import (
    LeastLoadedPlacement,
    PackingPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
)
from repro.core.reclamation import (
    IdleTimeoutPolicy,
    MemoryPressurePolicy,
    ReclamationPolicy,
)

__all__ = [
    "AllowDnsPolicy",
    "CloneResult",
    "CompositePolicy",
    "ContainmentAction",
    "ContainmentPolicy",
    "DropAllPolicy",
    "FederatedHoneyfarm",
    "FlashCloneEngine",
    "Gateway",
    "Honeyfarm",
    "HoneyfarmConfig",
    "IdleTimeoutPolicy",
    "LeastLoadedPlacement",
    "MemoryBreakdown",
    "MemoryPressurePolicy",
    "OpenPolicy",
    "PackingPlacement",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "OutboundRateLimiter",
    "ReclamationPolicy",
    "ReflectionPolicy",
    "Verdict",
    "farm_memory_breakdown",
    "host_memory_breakdown",
]
