"""The honeyfarm orchestrator: gateway + servers + guests + policies.

:class:`Honeyfarm` assembles a runnable farm from a
:class:`~repro.core.config.HoneyfarmConfig`:

* builds the physical hosts and installs one reference snapshot per
  personality on each;
* builds the gateway with the configured containment policy and the
  internal DNS resolver;
* implements the gateway's backend protocol — flash-cloning VMs on
  demand (with spill-over across hosts and emergency reclamation under
  pressure) and delivering packets to guests;
* runs the reclamation daemon;
* collects every infection record and the time series the experiments
  plot (live VMs, clone demand, memory residency).

The public surface a workload needs is tiny: :meth:`inject` a packet (or
wire border routers to the gateway), :meth:`register_worm` so guests know
how captured worms propagate, and :meth:`run`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.config import HoneyfarmConfig
from repro.core.containment import make_policy
from repro.core.delta import MemoryBreakdown, farm_memory_breakdown
from repro.core.flash_clone import CloneResult, FlashCloneEngine
from repro.core.gateway import Gateway
from repro.core.placement import make_placement
from repro.core.reclamation import (
    CompositeReclamation,
    IdleTimeoutPolicy,
    MemoryPressurePolicy,
    ReclamationPlan,
)
from repro.faults.backoff import backoff_delay
from repro.fidelity.ladder import FidelityLadder
from repro.net.addr import AddressSpaceInventory, IPAddress
from repro.net.packet import Packet
from repro.obs import recorder as _obs
from repro.services.dns import DnsServer
from repro.services.guest import GuestHost, InfectionRecord, ScanBehavior
from repro.services.personality import PersonalityRegistry, default_registry
from repro.sim.batch import PacketArrivalStream, PacketColumns
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricRegistry
from repro.sim.rand import SeedSequence
from repro.vmm.host import HostCapacityError, PhysicalHost
from repro.vmm.latency import CloneCostModel
from repro.vmm.memory import OutOfMemoryError
from repro.vmm.snapshot import ReferenceSnapshot
from repro.vmm.vm import VirtualMachine, VMState

__all__ = ["Honeyfarm"]


class Honeyfarm:
    """A complete, runnable honeyfarm. See module docstring."""

    def __init__(
        self,
        config: Optional[HoneyfarmConfig] = None,
        personalities: Optional[PersonalityRegistry] = None,
        sim: Optional[Simulator] = None,
    ) -> None:
        self.config = config or HoneyfarmConfig()
        self.personalities = personalities or default_registry()
        self.sim = sim or Simulator()
        self.seeds = SeedSequence(self.config.seed)
        self.metrics = MetricRegistry()
        self.infections: List[InfectionRecord] = []
        self.infection_listeners: List[Callable[[InfectionRecord], None]] = []
        self.detained: List[VirtualMachine] = []
        self.worm_behaviors: Dict[str, ScanBehavior] = {}

        self.inventory = AddressSpaceInventory(self.config.parsed_prefixes())
        self.dns_server = DnsServer(self.config.dns_address())

        self._cost_model = CloneCostModel(
            jitter=self.config.clone_jitter,
            rng=self.seeds.stream("clone-jitter") if self.config.clone_jitter > 0 else None,
        )
        self.clone_engine = FlashCloneEngine(
            self.sim,
            self._cost_model,
            metrics=self.metrics,
            mode=self.config.clone_mode,
        )

        self.hosts: List[PhysicalHost] = []
        needed = self._needed_personalities()
        for i in range(self.config.num_hosts):
            # Farm-local host ids: two identically-seeded farms in one
            # process must build identical clusters (placement tie-breaks
            # on host_id).
            host = PhysicalHost(
                memory_bytes=self.config.host_memory_bytes,
                max_vms=self.config.max_vms_per_host,
                name=f"host-{i}",
                host_id=i,
                content_sharing=self.config.content_sharing,
            )
            for personality in needed:
                host.install_snapshot(
                    ReferenceSnapshot(
                        host.memory,
                        personality=personality,
                        image_bytes=self.config.vm_image_bytes,
                        name=f"{host.name}-{personality}",
                    )
                )
            self.hosts.append(host)
        self._hosts_by_id: Dict[int, PhysicalHost] = {
            host.host_id: host for host in self.hosts
        }

        policy = make_policy(
            self.config.containment, self.inventory, self.config.outbound_rate_limit
        )
        self.gateway = Gateway(
            sim=self.sim,
            inventory=self.inventory,
            policy=policy,
            backend=self,
            flow_idle_timeout=self.config.flow_idle_timeout_seconds,
            dns_server=self.dns_server,
            metrics=self.metrics,
            pending_timeout=self.config.pending_timeout_seconds,
        )

        # Fidelity ladder (emulator tier + promotion engine). Constructed
        # only when the config block enables it, so the default farm is
        # byte-identical to a clone-always farm.
        if self.config.ladder.enabled:
            self.ladder: Optional[FidelityLadder] = FidelityLadder(
                sim=self.sim,
                config=self.config,
                registry=self.personalities,
                inventory=self.inventory,
                metrics=self.metrics,
                session_idle_timeout=self.config.flow_idle_timeout_seconds,
            )
            self.gateway.ladder = self.ladder
        else:
            self.ladder = None

        # Deception reply-timing jitter (anti-fingerprinting): attached
        # the same way the ladder is, so the default farm keeps the
        # zero-cost synchronous egress path. Personality randomization
        # needs no attachment — it lives in the config's per-address
        # personality resolution, which every tier already consults.
        if (
            self.config.deception.enabled
            and self.config.deception.jitter_max_seconds > 0.0
        ):
            self.gateway.reply_jitter = self.config.reply_jitter

        idle_policy = IdleTimeoutPolicy(
            self.config.idle_timeout_seconds,
            detain_infected=self.config.detain_infected,
            max_detained=self.config.max_detained,
        )
        policies = [idle_policy]
        if self.config.memory_pressure_threshold is not None:
            policies.append(
                MemoryPressurePolicy(
                    self.config.memory_pressure_threshold,
                    detain_infected=self.config.detain_infected,
                    max_detained=self.config.max_detained,
                )
            )
        self.reclamation = CompositeReclamation(policies)
        self.placement = make_placement(self.config.placement_policy)
        self._guest_seeds = self.seeds.spawn("guests")
        self._guest_counter = 0
        self._sweep_started = False
        # Warm pool: pristine pre-created VMs parked on reserved addresses
        # (0.0.1.0 upward — never routable, never in the inventory),
        # waiting to be bound to a real address.
        self._pool: List[VirtualMachine] = []
        self._pool_parking_counter = 0
        self._pool_started = False
        self._live_gauge = self.metrics.gauge("farm.live_vms", time=self.sim.now)
        # Hot-path metric handles, resolved once (see docs/PERFORMANCE.md).
        self._c_vms_spawned = self.metrics.handle("farm.vms_spawned")
        self._c_deliver_to_dead_vm = self.metrics.handle("farm.deliver_to_dead_vm")
        self._c_infections = self.metrics.handle("farm.infections")
        self._c_vms_reclaimed = self.metrics.handle("farm.vms_reclaimed")
        self._c_clone_failures = self.metrics.handle("farm.clone_failures")
        self._live_series = self.metrics.series("farm.live_vms_series")
        self._infections_series = self.metrics.series("farm.infections_series")
        # Sharing series exist only when the mechanism is on, so a
        # sharing-off (ablation) report carries no dead rows.
        self._sharing_series = (
            (
                self.metrics.series("farm.shared_frames_series"),
                self.metrics.series("farm.sharing_savings_series"),
            )
            if self.config.content_sharing
            else None
        )
        # Respawn backoff jitter draws from its own stream so chaos
        # recovery cannot perturb workload randomness (and vice versa).
        self._respawn_rng = self.seeds.stream("respawn-backoff")

    def _needed_personalities(self) -> List[str]:
        names = self.config.all_personalities()
        for name in names:
            if name not in self.personalities:
                raise ValueError(f"config references unknown personality {name!r}")
        return sorted(names)

    # ------------------------------------------------------------------ #
    # Workload-facing API
    # ------------------------------------------------------------------ #

    def inject(self, packet: Packet) -> None:
        """Feed one packet into the gateway, as if it arrived by tunnel."""
        self.gateway.process_inbound(packet)

    def inject_batch(
        self, packets: List[Packet], start: int, end: int, now: float
    ) -> None:
        """Batched counterpart of :meth:`inject` for same-timestamp runs
        (see :meth:`~repro.core.gateway.Gateway.dispatch_batch`)."""
        self.gateway.dispatch_batch(packets, start, end, now)

    def attach_arrivals(
        self, times: List[float], packets: List[Packet]
    ) -> PacketArrivalStream:
        """Stream a pre-sorted packet workload into this farm's run loop.

        The batched equivalent of scheduling one injection event per
        packet: firing order (and therefore every verdict, counter, and
        trace event) is bit-identical, but arrivals never touch the event
        heap — see ``docs/PERFORMANCE.md``.
        """
        stream = PacketArrivalStream(
            self.sim,
            times,
            packets,
            deliver=self.inject,
            deliver_batch=self.inject_batch,
        )
        self.sim.attach_stream(stream)
        return stream

    def attach_arrival_columns(self, columns: PacketColumns) -> PacketArrivalStream:
        """:meth:`attach_arrivals` over a lazy struct-of-arrays trace.

        Packets are materialized only when they leave the gateway's span
        lane (:meth:`~repro.core.gateway.Gateway.dispatch_span`); the
        storm-dominant emulator-tier path runs entirely on the columns.
        Results are bit-identical to per-event replay of the same records
        — see ``docs/PERFORMANCE.md``.
        """
        stream = PacketArrivalStream(
            self.sim,
            columns.times,
            columns.packets,
            deliver=self.inject,
            deliver_batch=self.inject_batch,
            columns=columns,
            deliver_span=self.gateway.dispatch_span,
        )
        self.sim.attach_stream(stream)
        return stream

    def register_worm(self, behavior: ScanBehavior) -> None:
        """Teach guests how a worm propagates once it compromises them."""
        self.worm_behaviors[behavior.exploit_tag] = behavior

    def attach_packet_tap(self, tap: Callable[[Packet], None]) -> None:
        """Mirror every inbound packet to ``tap`` (e.g. a
        :class:`~repro.detection.sifting.ContentSifter`)."""
        self.gateway.packet_tap = tap

    def add_infection_listener(self, listener: Callable[[InfectionRecord], None]) -> None:
        """Call ``listener`` on every confirmed infection (e.g. an
        :class:`~repro.detection.monitor.InfectionRateMonitor`)."""
        self.infection_listeners.append(listener)

    def run(self, until: float) -> None:
        """Run the farm (starting the reclamation daemon) to time ``until``."""
        self._ensure_sweeper()
        self.sim.run(until=until)

    def _ensure_sweeper(self) -> None:
        if not self._sweep_started:
            self._sweep_started = True
            self.sim.schedule(self.config.sweep_interval_seconds, self._sweep)
        if self.config.warm_pool_size > 0 and not self._pool_started:
            self._pool_started = True
            self.sim.call_now(self._refill_pool)

    # ------------------------------------------------------------------ #
    # Warm pool
    # ------------------------------------------------------------------ #

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    def _parking_ip(self) -> IPAddress:
        self._pool_parking_counter += 1
        return IPAddress(0x00000100 + self._pool_parking_counter)

    def _top_up_pool(self) -> None:
        """Clone pool VMs up to the target size.

        Shared by the periodic refill daemon and the crash/repair paths
        (which call it directly rather than waiting for the next tick, and
        must not fork a second daemon chain).
        """
        deficit = self.config.warm_pool_size - len(self._pool)
        while deficit > 0:
            host = self._pick_host(self.config.default_personality)
            if host is None:
                break
            snapshot = host.snapshot_for(self.config.default_personality)
            try:
                vm = self.clone_engine.clone(
                    host, snapshot, self._parking_ip(), on_ready=self._pool_vm_ready
                )
            except (HostCapacityError, OutOfMemoryError):
                break
            vm.parked = True
            self._pool.append(vm)
            self.metrics.counter("farm.pool_clones").increment()
            deficit -= 1

    def _refill_pool(self) -> None:
        """Background daemon: keep the pool at its target size."""
        self._top_up_pool()
        self.sim.schedule(self.config.warm_pool_refill_interval, self._refill_pool)

    def _pool_vm_ready(self, result: CloneResult) -> None:
        """A pool VM finished its (full) clone pipeline: give it a guest
        so it is ready the instant an address is bound to it."""
        self._clone_ready(result)

    def _take_from_pool(self, ip: IPAddress, personality: str) -> Optional[VirtualMachine]:
        """Bind a ready pool VM to ``ip``; returns None when the pool has
        no running VM of the right personality."""
        for index, vm in enumerate(self._pool):
            if vm.state is VMState.RUNNING and vm.personality == personality:
                self._pool.pop(index)
                vm.parked = False
                vm.begin_reassignment(ip, self.sim.now)
                stages = self._cost_model.reassign_stages()
                total = sum(s.seconds for s in stages)
                self.metrics.counter("farm.pool_hits").increment()
                self.metrics.histogram("clone.pool_assign_seconds").observe(total)
                self.sim.schedule(total, self._pool_assignment_done, vm, self.sim.now)
                return vm
        return None

    def _pool_assignment_done(self, vm: VirtualMachine, requested_at: float) -> None:
        if not vm.is_live:
            self.metrics.counter("clone.aborted").increment()
            return
        vm.start(self.sim.now)
        self.metrics.histogram("farm.address_ready_seconds").observe(
            self.sim.now - requested_at
        )
        self.gateway.vm_ready(vm)

    # ------------------------------------------------------------------ #
    # Backend protocol (called by the gateway)
    # ------------------------------------------------------------------ #

    def spawn_vm(self, ip: IPAddress) -> Optional[VirtualMachine]:
        prefix = self.inventory.lookup(ip)
        if prefix is None:
            return None
        personality = self.config.personality_for_address(prefix, ip)
        if self.config.warm_pool_size > 0:
            pooled = self._take_from_pool(ip, personality)
            if pooled is not None:
                self._live_gauge.adjust(1, self.sim.now)
                self._live_series.record(self.sim.now, self._live_gauge.value)
                self._c_vms_spawned.increment()
                if _obs.ACTIVE is not None:
                    _obs.ACTIVE.emit(
                        self.sim.now, "farm", "vm_spawned",
                        ip=str(ip), vm_id=pooled.vm_id, host_id=pooled.host_id,
                        pooled=True,
                    )
                return pooled
            self.metrics.counter("farm.pool_misses").increment()
        host = self._pick_host(personality)
        if host is None:
            # Try once more after forcing reclamation across the cluster.
            if self._emergency_reclaim():
                host = self._pick_host(personality)
        if host is None:
            self._note_clone_failure("no_host_capacity")
            return None
        snapshot = host.snapshot_for(personality)
        try:
            vm = self.clone_engine.clone(host, snapshot, ip, on_ready=self._clone_ready)
        except HostCapacityError:
            self._note_clone_failure("host_capacity")
            return None
        except OutOfMemoryError:
            self._note_clone_failure("out_of_memory")
            return None
        self._live_gauge.adjust(1, self.sim.now)
        self._live_series.record(self.sim.now, self._live_gauge.value)
        self._c_vms_spawned.increment()
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "farm", "vm_spawned",
                ip=str(ip), vm_id=vm.vm_id, host_id=vm.host_id, pooled=False,
            )
        return vm

    def deliver(self, vm: VirtualMachine, packet: Packet) -> None:
        guest: Optional[GuestHost] = vm.guest
        if guest is None or vm.state is not VMState.RUNNING:
            self._c_deliver_to_dead_vm.increment()
            return
        self._propagate_generation(guest, packet)
        replies = guest.handle_packet(packet, self.sim.now)
        for reply in replies:
            self.gateway.emit_from_vm(vm, reply)

    def deliver_replay(self, vm: VirtualMachine, packet: Packet) -> None:
        """Handoff replay: rebuild guest state, discard the replies.

        The emulator tier already answered these packets byte-identically
        (the parity the equivalence oracle proves), so re-emitting the
        guest's replies would send the attacker duplicates. The guest
        still sees every packet — connection state, infection checks, and
        memory dirtying all happen exactly as on the live path.
        """
        guest: Optional[GuestHost] = vm.guest
        if guest is None or vm.state is not VMState.RUNNING:
            self.metrics.counter("farm.replay_to_dead_vm").increment()
            return
        self._propagate_generation(guest, packet)
        guest.handle_packet(packet, self.sim.now)

    def _propagate_generation(self, guest: GuestHost, packet: Packet) -> None:
        """If the packet comes from another (infected) farm VM, stamp the
        receiving guest with the next epidemic generation, so infection
        records chain multi-stage spread. Sources owned by sibling
        federation shards are not in the local VM map; their generation
        travels on the inter-shard message and is looked up from the
        gateway's per-source record instead."""
        source_vm = self.gateway.vm_map.get(packet.src)
        if source_vm is None or source_vm.guest is None:
            remote = self.gateway.remote_generations.get(packet.src)
            if remote is not None:
                guest.generation = remote + 1
            return
        source_guest: GuestHost = source_vm.guest
        if source_guest.infection is not None:
            guest.generation = source_guest.infection.generation + 1

    # ------------------------------------------------------------------ #
    # Clone completion
    # ------------------------------------------------------------------ #

    def _clone_ready(self, result: CloneResult) -> None:
        if result.failed:
            self._clone_fault(result)
            return
        vm = result.vm
        if not vm.parked:
            # Address-serving clones (not pool refills) count toward the
            # farm's first-packet-to-ready latency.
            self.metrics.histogram("farm.address_ready_seconds").observe(
                result.total_seconds
            )
        host = self._host_by_id(vm.host_id)
        personality = self.personalities.get(vm.personality)
        # Seed by farm-local creation index, not the process-global VM id:
        # two identically-seeded farms in one process must behave alike.
        self._guest_counter += 1
        GuestHost(
            vm=vm,
            personality=personality,
            catalog=self.personalities.catalog,
            sim=self.sim,
            rng=self._guest_seeds.stream(f"guest-{self._guest_counter}"),
            transmit=self.gateway.emit_from_vm,
            worm_behaviors=self.worm_behaviors,
            on_oom=(lambda h=host, v=vm: self._relieve_pressure(h, exclude_vm_id=v.vm_id)),
            on_infection=self._record_infection,
        )
        self.gateway.vm_ready(vm)

    def _note_clone_failure(self, reason: str) -> None:
        """Account a failed or refused clone under a reason label."""
        self._c_clone_failures.increment()
        self.metrics.counter(f"farm.clone_failures.{reason}").increment()

    def _clone_fault(self, result: CloneResult) -> None:
        """A clone pipeline completed *failed* (fault injection): unwind
        the half-built VM and, for an address-serving clone, schedule a
        respawn so the address heals."""
        vm = result.vm
        self._note_clone_failure(result.failure_reason or "fault")
        host = self._hosts_by_id.get(vm.host_id)
        if host is not None and host.get_vm(vm.vm_id) is not None:
            host.evict(vm, self.sim.now)
        if vm.parked:
            # A pool refill died; the refill daemon will top back up.
            if vm in self._pool:
                self._pool.remove(vm)
        else:
            self.gateway.vm_retired(vm, pending_cause="clone_failed")
            self._live_gauge.adjust(-1, self.sim.now)
            self._live_series.record(self.sim.now, self._live_gauge.value)
            self._schedule_respawn(vm.ip)

    def _record_infection(self, record: InfectionRecord) -> None:
        self.infections.append(record)
        self._c_infections.increment()
        self._infections_series.record(self.sim.now, len(self.infections))
        for listener in self.infection_listeners:
            listener(record)

    # ------------------------------------------------------------------ #
    # Placement and reclamation
    # ------------------------------------------------------------------ #

    def _host_by_id(self, host_id: Optional[int]) -> PhysicalHost:
        try:
            return self._hosts_by_id[host_id]
        except KeyError:
            raise KeyError(f"no host with id {host_id}") from None

    def _pick_host(self, personality: str) -> Optional[PhysicalHost]:
        """Delegate to the configured placement policy."""
        return self.placement.select(self.hosts, personality)

    def _emergency_reclaim(self) -> bool:
        """Forced reclamation when admission fails: evict, cluster-wide,
        any VM idle for at least one sweep interval."""
        reclaimed = 0
        for host in self.hosts:
            for vm in host.idle_vms(self.sim.now, self.config.sweep_interval_seconds):
                self._retire(host, vm)
                reclaimed += 1
        self.metrics.counter("farm.emergency_reclaims").increment(reclaimed)
        return reclaimed > 0

    def _relieve_pressure(self, host: PhysicalHost, exclude_vm_id: int) -> bool:
        """OOM handler for guest page writes: evict the least-recently-
        active other VM on the same host. Returns True only when physical
        frames were actually freed — a victim whose pages are all shared
        with other VMs frees nothing, so evicting it cannot unblock the
        faulting write."""
        victim = min(
            (
                vm
                for vm in host.vms()
                if vm.state is VMState.RUNNING
                and not vm.parked
                and vm.vm_id != exclude_vm_id
                and vm.reclaimable_frames > 0
            ),
            key=lambda vm: (vm.last_activity, vm.vm_id),
            default=None,
        )
        if victim is None:
            return False
        self._retire(host, victim)
        self.metrics.counter("farm.pressure_evictions").increment()
        return True

    def _retire(self, host: PhysicalHost, vm: VirtualMachine) -> None:
        guest: Optional[GuestHost] = vm.guest
        if guest is not None:
            guest.stop()
        self.gateway.vm_retired(vm)
        host.evict(vm, self.sim.now)
        self._c_vms_reclaimed.increment()
        self._live_gauge.adjust(-1, self.sim.now)
        self._live_series.record(self.sim.now, self._live_gauge.value)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "farm", "vm_retired",
                ip=str(vm.ip), vm_id=vm.vm_id, host=host.name,
            )

    def _detain(self, host: PhysicalHost, vm: VirtualMachine) -> None:
        guest: Optional[GuestHost] = vm.guest
        if guest is not None:
            guest.stop()
        vm.pause(self.sim.now)
        vm.detained = True
        self.gateway.vm_retired(vm)
        self.detained.append(vm)
        self.metrics.counter("farm.vms_detained").increment()
        # Detained VMs stay resident (their memory is the evidence), but
        # no longer serve an address, so the live gauge drops.
        self._live_gauge.adjust(-1, self.sim.now)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "farm", "vm_detained",
                ip=str(vm.ip), vm_id=vm.vm_id, host=host.name,
            )

    def _sweep(self) -> None:
        destroyed = detained = 0
        for host in self.hosts:
            plan: ReclamationPlan = self.reclamation.plan(host, self.sim.now)
            for vm in plan.destroy:
                self._retire(host, vm)
                self.metrics.counter("farm.sweep_reclaims").increment()
            for vm in plan.detain:
                self._detain(host, vm)
            destroyed += len(plan.destroy)
            detained += len(plan.detain)
        flows_expired = self.gateway.sweep_flows()
        breakdown = farm_memory_breakdown(self.hosts)
        self.metrics.series("farm.private_bytes_series").record(
            self.sim.now, breakdown.private_resident
        )
        shared = savings = 0
        for host in self.hosts:
            host.memory.check_frame_invariant()
            shared += host.memory.shared_frames
            savings += host.memory.sharing_savings_frames
        if self._sharing_series is not None:
            shared_series, savings_series = self._sharing_series
            shared_series.record(self.sim.now, shared)
            savings_series.record(self.sim.now, savings)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "reclamation", "sweep",
                destroyed=destroyed, detained=detained,
                flows_expired=flows_expired, live_vms=self.live_vms,
                shared_frames=shared, sharing_savings=savings,
            )
        self.sim.schedule(self.config.sweep_interval_seconds, self._sweep)

    # ------------------------------------------------------------------ #
    # Host crash, repair, and respawn (chaos self-healing)
    # ------------------------------------------------------------------ #

    def crash_host(self, host: PhysicalHost) -> Dict[str, int]:
        """Crash ``host`` now and run the farm's self-healing reaction.

        Every resident VM is destroyed; the gateway state bound to each
        (address map, pending queues — dropped under the ``host_down``
        cause — flows, NAT entries) is unwound; the addresses the host
        was serving are re-spawned on surviving hosts under capped
        exponential backoff; and the warm pool tops back up on the
        survivors. Admission skips the host (``has_vm_slot`` is False
        while down) until :meth:`repair_host`.

        Returns an impact summary for the fault record.
        """
        if host.failed:
            raise ValueError(f"{host.name} is already down")
        now = self.sim.now
        pending_before = self.gateway.pending_dropped_total()
        vms_lost = 0
        clones_aborted = 0
        pool_lost = 0
        respawn_ips: List[IPAddress] = []
        for vm in host.vms():
            if vm.parked:
                pool_lost += 1
                if vm in self._pool:
                    self._pool.remove(vm)
            elif vm.detained:
                # The forensic evidence went down with the host.
                if vm in self.detained:
                    self.detained.remove(vm)
                self.metrics.counter("farm.detained_lost").increment()
            else:
                guest: Optional[GuestHost] = vm.guest
                if guest is not None:
                    guest.stop()
                if vm.state is VMState.CLONING:
                    clones_aborted += 1
                    self._note_clone_failure("host_down")
                vms_lost += 1
                self.gateway.vm_retired(vm, pending_cause="host_down")
                self._live_gauge.adjust(-1, now)
                respawn_ips.append(vm.ip)
        self._live_series.record(now, self._live_gauge.value)
        host.fail(now)
        self.metrics.counter("farm.host_crashes").increment()
        for ip in respawn_ips:
            self._schedule_respawn(ip)
        if self.config.warm_pool_size > 0 and self._pool_started:
            self.sim.call_now(self._top_up_pool)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                now, "farm", "host_crashed",
                host=host.name, vms_lost=vms_lost, pool_vms_lost=pool_lost,
                respawns_scheduled=len(respawn_ips),
            )
        return {
            "vms_lost": vms_lost,
            "clones_aborted": clones_aborted,
            "pool_vms_lost": pool_lost,
            "pending_dropped": self.gateway.pending_dropped_total() - pending_before,
            "respawns_scheduled": len(respawn_ips),
        }

    def repair_host(self, host: PhysicalHost) -> None:
        """Bring a crashed host back into admission rotation and let the
        warm pool spread back onto it."""
        host.repair()
        self.metrics.counter("farm.host_repairs").increment()
        if self.config.warm_pool_size > 0 and self._pool_started:
            self.sim.call_now(self._top_up_pool)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(self.sim.now, "farm", "host_repaired", host=host.name)

    def _schedule_respawn(self, ip: IPAddress, attempt: int = 0) -> None:
        delay = backoff_delay(
            attempt,
            self.config.respawn_backoff_base,
            self.config.respawn_backoff_cap,
            self.config.respawn_backoff_jitter,
            self._respawn_rng,
        )
        self.sim.schedule(delay, self._attempt_respawn, ip, attempt)

    def _attempt_respawn(self, ip: IPAddress, attempt: int) -> None:
        if self.gateway.vm_map.get(ip) is not None:
            # A fresh packet already re-spawned this address naturally.
            return
        vm = self.spawn_vm(ip)
        if vm is None:
            if attempt + 1 < self.config.respawn_max_attempts:
                self.metrics.counter("farm.respawn_retries").increment()
                self._schedule_respawn(ip, attempt + 1)
            else:
                self.metrics.counter("farm.respawns_abandoned").increment()
            return
        self.gateway.vm_map[ip] = vm
        self.metrics.counter("farm.respawns").increment()
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "farm", "respawned",
                ip=str(ip), vm_id=vm.vm_id, attempt=attempt,
            )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def live_vms(self) -> int:
        return sum(host.live_vms for host in self.hosts)

    def memory_breakdown(self) -> MemoryBreakdown:
        return farm_memory_breakdown(self.hosts)

    def infection_count(self) -> int:
        return len(self.infections)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Honeyfarm hosts={len(self.hosts)} live_vms={self.live_vms}"
            f" policy={self.config.containment!r} t={self.sim.now:.1f}s>"
        )
