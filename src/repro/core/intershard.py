"""The inter-shard message layer and lockstep-epoch shard runner.

The federation's parallel lane splits the dark space across N shard
workers, each owning a full farm (gateway, hosts, ladder, batched event
loop) on a *private* clock. Cross-shard traffic — chiefly reflected
scans from infected VMs and the replies coming back — crosses process
boundaries as :class:`ShardMessage` records over a conservative
time-stepped synchronization protocol:

* Every cross-shard hop costs at least ``latency_seconds`` of simulated
  time (the federation's minimum inter-gateway latency, standing in for
  the paper's GRE-tunnel round trip between gateways).
* All shards therefore advance in **lockstep epochs** of width
  ``epoch_lookahead <= latency_seconds``: a message sent during epoch
  ``k`` cannot be due before the epoch-``k`` barrier, so exchanging
  outboxes at each barrier delivers every message to its destination
  shard *before* the simulated instant it arrives. No shard ever sees
  an event out of order, and no rollback is needed.
* Delivery order inside a shard is fixed by the mailbox key
  ``(deliver_time, src_shard, seq)`` — pure protocol state, independent
  of OS scheduling — which is what makes runs bit-reproducible for any
  worker count (see docs/FEDERATION.md for the full argument).

:class:`ShardRunner` is the per-shard epoch engine. Both lanes use it:
the in-process :class:`~repro.core.federation.FederatedHoneyfarm`
reference drives a list of runners directly, and the multiprocess
:class:`~repro.core.parallel.ParallelFederation` drives the identical
runners inside worker processes — equality of results is by
construction, and the benchmark gate checks it anyway.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import HoneyfarmConfig
from repro.core.containment import make_policy
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress
from repro.net.packet import Packet, TcpFlags
from repro.net.shardmap import ShardMap
from repro.obs import recorder as _obs
from repro.obs.recorder import FlightRecorder, event_tally

__all__ = [
    "WIRE_VERSION",
    "InterShardConfig",
    "ShardMessage",
    "ShardRunner",
    "assign_shards",
    "decode_packet",
    "encode_packet",
    "run_epochs",
]

#: Wire-format version for :meth:`ShardMessage.encode`. Bump on any
#: layout change; decoders reject mismatches instead of misparsing.
#: v2 added ``generation`` (the sending VM's infection depth), so
#: remote-sourced infections chain epidemic generations across shards.
WIRE_VERSION = 2


@dataclass(frozen=True)
class InterShardConfig:
    """Protocol constants every shard must agree on.

    Attributes
    ----------
    latency_seconds:
        Minimum simulated latency of a cross-shard hop. This is the
        protocol's lookahead source: no message sent at time ``t`` can
        take effect before ``t + latency_seconds``.
    epoch_lookahead:
        Lockstep epoch width. ``None`` (the default) uses the full
        latency — the widest window that is still conservative. Smaller
        values are legal (more barriers, same results); larger values
        would let a message be due before the barrier that carries it,
        so they are rejected.
    """

    latency_seconds: float = 0.5
    epoch_lookahead: Optional[float] = None

    def __post_init__(self) -> None:
        if self.latency_seconds <= 0:
            raise ValueError(
                f"latency_seconds must be positive: {self.latency_seconds!r}"
            )
        if self.epoch_lookahead is not None:
            if self.epoch_lookahead <= 0:
                raise ValueError(
                    f"epoch_lookahead must be positive: {self.epoch_lookahead!r}"
                )
            if self.epoch_lookahead > self.latency_seconds:
                raise ValueError(
                    "epoch_lookahead must not exceed latency_seconds"
                    f" ({self.epoch_lookahead!r} > {self.latency_seconds!r}):"
                    " a wider epoch could owe a shard a message from its past"
                )

    @property
    def lookahead(self) -> float:
        """The effective epoch width."""
        if self.epoch_lookahead is None:
            return self.latency_seconds
        return self.epoch_lookahead


# ---------------------------------------------------------------------- #
# Wire format
# ---------------------------------------------------------------------- #

def encode_packet(packet: Packet) -> Tuple:
    """Flatten a packet to a compact tuple of primitives (picklable,
    JSON-able modulo the payload string)."""
    return (
        packet.src.value, packet.dst.value, packet.protocol,
        packet.src_port, packet.dst_port, int(packet.flags),
        packet.icmp_type, packet.payload, packet.size, packet.ttl,
    )


def decode_packet(wire: Sequence) -> Packet:
    """Rebuild a packet from :func:`encode_packet` output. The packet is
    a fresh object in either lane (the in-process reference round-trips
    through the same codec, so object identity never leaks into
    behaviour)."""
    return Packet(
        src=IPAddress(wire[0]), dst=IPAddress(wire[1]), protocol=wire[2],
        src_port=wire[3], dst_port=wire[4], flags=TcpFlags(wire[5]),
        icmp_type=wire[6], payload=wire[7], size=wire[8], ttl=wire[9],
    )


@dataclass(frozen=True)
class ShardMessage:
    """One cross-shard packet in flight.

    ``seq`` is the sender's per-shard monotonic message counter; together
    with ``(deliver_time, src_shard)`` it totally orders every mailbox,
    which is the backbone of the determinism argument. ``reply`` marks
    packets on the *return* path of a reflected flow: the receiving
    gateway must run them through its ``ReflectionNat`` reply-source
    rewrite, exactly as it would a local reply (the PR 5 escape class,
    now across shard boundaries). ``generation`` carries the sending
    VM's infection generation for non-reply traffic, so an infection the
    packet causes on the destination shard records depth ``generation +
    1`` instead of defaulting to zero — without it, every cross-shard
    hop flattened the epidemic tree (ROADMAP item-1 follow-up). The
    sentinel ``-1`` means the source is not an infected farm VM (e.g. a
    reflected external scan crossing shards), which must chain nothing:
    such infections stay generation zero, exactly as on the local path.
    """

    send_time: float
    deliver_time: float
    src_shard: int
    dst_shard: int
    seq: int
    reply: bool
    wire: Tuple
    generation: int = -1

    def encode(self) -> Tuple:
        """The versioned on-pipe form (primitives only)."""
        return (
            WIRE_VERSION, self.send_time, self.deliver_time,
            self.src_shard, self.dst_shard, self.seq, self.reply, self.wire,
            self.generation,
        )

    @classmethod
    def decode(cls, encoded: Sequence) -> "ShardMessage":
        if encoded[0] != WIRE_VERSION:
            raise ValueError(
                f"inter-shard wire version mismatch: got {encoded[0]!r},"
                f" expected {WIRE_VERSION}"
            )
        return cls(
            send_time=encoded[1], deliver_time=encoded[2],
            src_shard=encoded[3], dst_shard=encoded[4],
            seq=encoded[5], reply=encoded[6], wire=tuple(encoded[7]),
            generation=encoded[8],
        )


# ---------------------------------------------------------------------- #
# Shard -> worker placement
# ---------------------------------------------------------------------- #

def assign_shards(
    loads: Sequence[int],
    workers: int,
    policy: Union[str, Callable[[Sequence[int], int], Sequence[int]]] = "balanced",
) -> List[int]:
    """Place shards onto workers; returns ``worker_index`` per shard.

    ``loads`` is one load estimate per shard (by convention the shard's
    dark-address count, the best static proxy for its packet share).
    Policies:

    * ``"round-robin"`` — shard ``i`` to worker ``i % workers``.
    * ``"balanced"`` — longest-processing-time greedy: heaviest shard
      first onto the currently-lightest worker (ties broken by lowest
      index on both sides, so placement is deterministic).
    * a callable ``policy(loads, workers) -> assignment`` for custom
      placement (validated for shape and range).
    """
    if workers <= 0:
        raise ValueError(f"workers must be positive: {workers!r}")
    if callable(policy):
        assignment = [int(w) for w in policy(list(loads), workers)]
        if len(assignment) != len(loads):
            raise ValueError(
                f"placement policy returned {len(assignment)} assignments"
                f" for {len(loads)} shards"
            )
        for shard, worker in enumerate(assignment):
            if not (0 <= worker < workers):
                raise ValueError(
                    f"placement policy put shard {shard} on worker"
                    f" {worker}, outside [0, {workers})"
                )
        return assignment
    if policy == "round-robin":
        return [i % workers for i in range(len(loads))]
    if policy == "balanced":
        totals = [0] * workers
        assignment = [0] * len(loads)
        for shard in sorted(range(len(loads)), key=lambda i: (-loads[i], i)):
            worker = min(range(workers), key=lambda w: (totals[w], w))
            assignment[shard] = worker
            totals[worker] += loads[shard]
        return assignment
    raise ValueError(f"unknown placement policy: {policy!r}")


# ---------------------------------------------------------------------- #
# The per-shard epoch engine
# ---------------------------------------------------------------------- #

class ShardRunner:
    """One shard's farm plus its mailbox, outbox, and epoch driver.

    The runner is the gateway's inter-shard port (the gateway duck-types
    against :meth:`is_remote` and :meth:`send`) and the coordinator's
    unit of work (:meth:`run_epoch`, :meth:`deposit`, :meth:`report`).

    Parameters
    ----------
    index / config / shard_map / interlink:
        This shard's position, farm config, the federation routing
        table, and the protocol constants. When the map holds more than
        one shard, the farm's containment policy is rebuilt over the
        *federation-wide* inventory so reflection verdicts land anywhere
        in the federation's dark space — identically in every process,
        because the inventory layout derives from the shard spec alone.
    worms:
        ``(name, scan_rate)`` specs from
        :data:`~repro.workloads.worms.KNOWN_WORMS`, registered against
        this shard's farm. Spec-based (not behaviour objects) so the
        identical registration happens inside worker processes.
    recorder_capacity:
        When positive, this shard runs under a private
        :class:`~repro.obs.recorder.FlightRecorder` (installed only
        while the shard executes, so shards never interleave events);
        :meth:`report` then carries the per-shard event tally.
    """

    def __init__(
        self,
        index: int,
        config: HoneyfarmConfig,
        shard_map: ShardMap,
        interlink: InterShardConfig,
        *,
        personalities=None,
        worms: Sequence[Tuple[str, float]] = (),
        recorder_capacity: int = 0,
    ) -> None:
        if tuple(config.prefixes) != shard_map.shard_prefixes[index]:
            raise ValueError(
                f"shard {index} config prefixes {config.prefixes!r} disagree"
                f" with the shard map {shard_map.shard_prefixes[index]!r}"
            )
        self.index = index
        self.shard_map = shard_map
        self.interlink = interlink
        self.worm_specs: Tuple[Tuple[str, float], ...] = tuple(
            (name, float(rate)) for name, rate in worms
        )
        self.farm = Honeyfarm(config, personalities=personalities)
        if shard_map.shard_count > 1:
            # Reflection over the whole federation, not just this shard:
            # verdicts must be able to bounce a scan into a sibling's
            # darknet or the seam between shards is fingerprintable.
            self.farm.gateway.policy = make_policy(
                config.containment,
                shard_map.global_inventory,
                config.outbound_rate_limit,
            )
            self.farm.gateway.intershard = self
        self.sent = 0
        self.outbox: List[ShardMessage] = []
        self._mailbox: List[Tuple[float, int, int, bool, Tuple, int]] = []
        self.recorder: Optional[FlightRecorder] = (
            FlightRecorder(recorder_capacity) if recorder_capacity > 0 else None
        )
        for name, rate in self.worm_specs:
            from repro.workloads.worms import KNOWN_WORMS

            spec = KNOWN_WORMS[name].with_scan_rate(rate)
            self.farm.register_worm(spec.behavior(config.dns_address()))

    # -- gateway port ---------------------------------------------------- #

    def is_remote(self, addr: IPAddress) -> bool:
        """True when a *sibling* shard owns ``addr`` (not this shard and
        not the external Internet)."""
        shard = self.shard_map.shard_for(addr)
        return shard is not None and shard != self.index

    def send(self, packet: Packet, reply: bool, generation: int = -1) -> None:
        """Queue one packet for its owning shard, due one cross-shard
        latency from now. Called by the gateway after it has already
        applied local NAT state; the packet crosses the boundary raw.
        ``generation`` is the sending VM's infection generation, or the
        ``-1`` sentinel when the source is not an infected farm VM
        (reply traffic, reflected external scans)."""
        dst_shard = self.shard_map.shard_for(packet.dst)
        assert dst_shard is not None and dst_shard != self.index
        now = self.farm.sim.now
        self.sent += 1
        self.outbox.append(ShardMessage(
            send_time=now,
            deliver_time=now + self.interlink.latency_seconds,
            src_shard=self.index,
            dst_shard=dst_shard,
            seq=self.sent,
            reply=reply,
            wire=encode_packet(packet),
            generation=generation,
        ))

    # -- coordinator interface ------------------------------------------- #

    def deposit(self, message: ShardMessage) -> None:
        """Accept one inbound message (any epoch ahead of now)."""
        if message.dst_shard != self.index:
            raise ValueError(
                f"shard {self.index} received a message for shard"
                f" {message.dst_shard}"
            )
        heapq.heappush(self._mailbox, (
            message.deliver_time, message.src_shard, message.seq,
            message.reply, message.wire, message.generation,
        ))

    def attach_records(self, records, batched: bool = True) -> int:
        """Feed this shard's slice of the workload (pre-run only)."""
        from repro.workloads.trace import replay_into_farm

        return replay_into_farm(self.farm, records, batched=batched)

    def attach_telescope(self, telescope, batched: bool = True) -> int:
        """Generate and attach this shard's partition of a
        :class:`~repro.workloads.telescope.PartitionedTelescope`."""
        return self.attach_records(
            telescope.build(self.index), batched=batched
        )

    def run_epoch(self, end: float) -> List[ShardMessage]:
        """Schedule every message due by ``end``, run the farm to
        ``end``, and hand back the epoch's outbound messages.

        Due messages always schedule in the future: a message sent in
        epoch ``k`` is due strictly after the epoch-``k`` barrier
        (``deliver = send + latency > barrier`` because the epoch is no
        wider than the latency), and the barrier is exactly where this
        shard's clock stands when the message is deposited.
        """
        sim = self.farm.sim
        gateway = self.farm.gateway
        mailbox = self._mailbox
        while mailbox and mailbox[0][0] <= end:
            deliver, __, __, reply, wire, generation = heapq.heappop(mailbox)
            sim.schedule_at(
                deliver, gateway.receive_intershard, decode_packet(wire),
                reply, generation,
            )
        if self.recorder is not None:
            previous = _obs.active()
            _obs.install(self.recorder)
            try:
                self.farm.run(until=end)
            finally:
                if previous is None:
                    _obs.uninstall()
                else:
                    _obs.install(previous)
        else:
            self.farm.run(until=end)
        out, self.outbox = self.outbox, []
        return out

    @property
    def undelivered_messages(self) -> int:
        """Messages still in the mailbox (due beyond the last barrier)."""
        return len(self._mailbox)

    # -- reporting -------------------------------------------------------- #

    def report(self) -> Dict[str, Any]:
        """This shard's complete observable outcome as primitives.

        Everything a worker sends back rides through this dict, and the
        worker-count invariance tests compare these dicts *verbatim* —
        so every field must be deterministic protocol/farm state, never
        process-local identity (vm ids, object ids, wall time).
        """
        from repro.analysis.recovery import packet_ledger

        farm = self.farm
        ledger = packet_ledger(farm)
        nat = farm.gateway.nat
        report: Dict[str, Any] = {
            "shard": self.index,
            "prefixes": list(farm.config.prefixes),
            "sim_now": farm.sim.now,
            "events_processed": farm.sim.events_processed,
            "total_addresses": farm.inventory.total_addresses,
            "live_vms": farm.live_vms,
            "counters": dict(farm.metrics.counters()),
            "infections": [
                (r.time, str(r.victim), str(r.source), r.worm_name, r.generation)
                for r in farm.infections
            ],
            "ledger": {
                "packets_in": ledger.packets_in,
                "delivered": ledger.delivered,
                "emulated": ledger.emulated,
                "refused": ledger.refused,
                "dropped_by_cause": dict(ledger.dropped_by_cause),
                "still_pending": ledger.still_pending,
                "leaked": ledger.leaked,
            },
            "intershard": {
                "sent": self.sent,
                "received": farm.metrics.counters().get(
                    "gateway.intershard_in", 0
                ),
                "undelivered": self.undelivered_messages,
            },
            "nat": {
                "reply_translations": nat.translations,
                "outbound_translations": nat.outbound_translations,
                "entries": len(nat),
            },
        }
        if self.recorder is not None:
            report["recorder_events"] = event_tally(self.recorder)
        return report

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ShardRunner shard={self.index}"
            f" t={self.farm.sim.now:.1f}s sent={self.sent}"
            f" mailbox={len(self._mailbox)}>"
        )


def run_epochs(
    runners: Sequence[ShardRunner], until: float, lookahead: float
) -> None:
    """Drive a list of runners in lockstep epochs to ``until`` — the
    reference coordinator loop. The multiprocess coordinator runs this
    exact structure with a pipe between the two ``for`` bodies; keeping
    the loop shapes identical is what makes the two lanes bit-equal.
    """
    if lookahead <= 0:
        raise ValueError(f"lookahead must be positive: {lookahead!r}")
    if not runners:
        return
    clock = runners[0].farm.sim.now
    while clock < until:
        end = min(clock + lookahead, until)
        outbound: List[ShardMessage] = []
        for runner in runners:
            outbound.extend(runner.run_epoch(end))
        for message in outbound:
            runners[message.dst_shard].deposit(message)
        clock = end
