"""Gateway scale-out: federating several honeyfarms over one clock.

The gateway is the architecture's central chokepoint — every packet of
every tunnel crosses it. The paper's scaling answer is horizontal:
partition the dark address space across several gateways, each running
its own farm, with nothing shared but the upstream routers' divert
rules. :class:`FederatedHoneyfarm` builds exactly that: N member farms
with disjoint prefixes on one simulated clock, a dispatch step that
routes each inbound packet to the owning member (what the routers'
tunnel configuration does in deployment), and aggregate reporting.

Members stay fully independent — separate gateways, flow tables,
containment state, clusters — so a member's failure or overload never
touches the others' traffic, which is the operational point of the
partitioning.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import HoneyfarmConfig
from repro.core.delta import MemoryBreakdown, farm_memory_breakdown
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress, Prefix
from repro.net.packet import Packet
from repro.services.guest import InfectionRecord, ScanBehavior
from repro.services.personality import PersonalityRegistry
from repro.sim.engine import Simulator

__all__ = ["FederatedHoneyfarm"]


class FederatedHoneyfarm:
    """N independent farms, disjoint address shards, one clock.

    Parameters
    ----------
    shard_configs:
        One :class:`HoneyfarmConfig` per member; their prefixes must be
        mutually disjoint (each member is sovereign over its shard).
    """

    def __init__(
        self,
        shard_configs: Sequence[HoneyfarmConfig],
        personalities: Optional[PersonalityRegistry] = None,
    ) -> None:
        if not shard_configs:
            raise ValueError("a federation needs at least one member farm")
        self.sim = Simulator()
        self.members: List[Honeyfarm] = []
        claimed: List[Prefix] = []
        for config in shard_configs:
            for prefix in config.parsed_prefixes():
                for existing in claimed:
                    if existing.overlaps(prefix):
                        raise ValueError(
                            f"shard prefix {prefix} overlaps {existing};"
                            " members must own disjoint address space"
                        )
                claimed.append(prefix)
            self.members.append(
                Honeyfarm(config, personalities=personalities, sim=self.sim)
            )
        self.unrouteable_packets = 0

    # ------------------------------------------------------------------ #
    # Routing and driving
    # ------------------------------------------------------------------ #

    def member_for(self, addr: IPAddress) -> Optional[Honeyfarm]:
        """The member whose shard covers ``addr`` (None = not dark space)."""
        for member in self.members:
            if member.inventory.covers(addr):
                return member
        return None

    def inject(self, packet: Packet) -> None:
        """Route one packet to the owning member's gateway."""
        member = self.member_for(packet.dst)
        if member is None:
            self.unrouteable_packets += 1
            return
        member.inject(packet)

    def register_worm(self, behavior: ScanBehavior) -> None:
        """Register the worm's behaviour with every member."""
        for member in self.members:
            member.register_worm(behavior)

    def run(self, until: float) -> None:
        """Run all members (they share the clock) to ``until``."""
        for member in self.members:
            member._ensure_sweeper()
        self.sim.run(until=until)

    # ------------------------------------------------------------------ #
    # Aggregate reporting
    # ------------------------------------------------------------------ #

    @property
    def total_addresses(self) -> int:
        return sum(m.inventory.total_addresses for m in self.members)

    @property
    def live_vms(self) -> int:
        return sum(m.live_vms for m in self.members)

    def infection_count(self) -> int:
        return sum(m.infection_count() for m in self.members)

    def infections(self) -> List[InfectionRecord]:
        records: List[InfectionRecord] = []
        for member in self.members:
            records.extend(member.infections)
        records.sort(key=lambda r: r.time)
        return records

    def memory_breakdown(self) -> MemoryBreakdown:
        merged = MemoryBreakdown(
            capacity=0, image_resident=0, private_resident=0,
            live_vms=0, full_copy_equivalent=0,
        )
        for member in self.members:
            merged = merged.merged_with(member.memory_breakdown())
        return merged

    def aggregate_counters(self) -> Dict[str, int]:
        """Sum of every member's counters, by name."""
        totals: Dict[str, int] = {}
        for member in self.members:
            for name, value in member.metrics.counters().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def per_member_rows(self) -> List[Tuple[str, int, int, int]]:
        """(shard, live VMs, spawned, infections) rows for reports."""
        rows = []
        for index, member in enumerate(self.members):
            counters = member.metrics.counters()
            rows.append((
                ", ".join(member.config.prefixes),
                member.live_vms,
                counters.get("farm.vms_spawned", 0),
                member.infection_count(),
            ))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FederatedHoneyfarm members={len(self.members)}"
            f" addresses={self.total_addresses} t={self.sim.now:.1f}s>"
        )
