"""Gateway scale-out: federating several honeyfarms.

The gateway is the architecture's central chokepoint — every packet of
every tunnel crosses it. The paper's scaling answer is horizontal:
partition the dark address space across several gateways, each running
its own farm, with nothing shared but the upstream routers' divert
rules. :class:`FederatedHoneyfarm` builds exactly that in two shapes:

* **Legacy shared-clock mode** (``interlink=None``, the default): N
  member farms on one simulated clock, a dispatch step that routes each
  inbound packet to the owning member, fully member-local containment.
  Members stay completely independent — a member's failure or overload
  never touches the others' traffic.
* **Interlink mode** (``interlink=InterShardConfig(...)``): each member
  becomes a :class:`~repro.core.intershard.ShardRunner` on a *private*
  clock, advanced in lockstep epochs with cross-shard reflected traffic
  carried by the inter-shard message layer. This is the in-process
  *golden reference* for the multiprocess
  :class:`~repro.core.parallel.ParallelFederation`: both lanes drive the
  identical runners through the identical epoch loop, so their results
  are bit-equal by construction (and gated in
  ``benchmarks/bench_federation.py``).

Either way the federation carries the aggregate books: merged infection
timelines, summed counters, per-member packet ledgers, and a global
packet-conservation check (:meth:`assert_packet_conservation`) that
every packet entering any gateway is delivered, emulated, refused,
dropped-with-cause, still pending, or — interlink only — in flight
between shards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import HoneyfarmConfig
from repro.core.delta import MemoryBreakdown, farm_memory_breakdown
from repro.core.honeyfarm import Honeyfarm
from repro.core.intershard import InterShardConfig, ShardRunner, run_epochs
from repro.net.addr import IPAddress, Prefix
from repro.net.packet import Packet
from repro.net.shardmap import ShardMap
from repro.services.guest import InfectionRecord, ScanBehavior
from repro.services.personality import PersonalityRegistry
from repro.sim.engine import Simulator

__all__ = ["FederatedHoneyfarm"]


class FederatedHoneyfarm:
    """N farms over disjoint address shards. See module docstring.

    Parameters
    ----------
    shard_configs:
        One :class:`HoneyfarmConfig` per member; their prefixes must be
        mutually disjoint (each member is sovereign over its shard).
    interlink:
        None (default) keeps the legacy shared-clock federation. An
        :class:`InterShardConfig` switches to lockstep-epoch members on
        private clocks with cross-shard reflection over the message
        layer — the reference semantics of the parallel lane.
    worms:
        Interlink mode only: ``(name, scan_rate)`` specs registered on
        every shard inside the runner (the multiprocess lane registers
        the identical specs in its workers; see
        :class:`~repro.core.intershard.ShardRunner`).
    shard_recorder_capacity:
        Interlink mode only: give each shard a private flight recorder
        of this capacity (0 disables), surfaced in shard reports.
    """

    def __init__(
        self,
        shard_configs: Sequence[HoneyfarmConfig],
        personalities: Optional[PersonalityRegistry] = None,
        interlink: Optional[InterShardConfig] = None,
        worms: Sequence[Tuple[str, float]] = (),
        shard_recorder_capacity: int = 0,
    ) -> None:
        if not shard_configs:
            raise ValueError("a federation needs at least one member farm")
        self.interlink = interlink
        self.runners: List[ShardRunner] = []
        self.unrouteable_packets = 0
        if interlink is not None:
            shard_map = ShardMap.from_configs(shard_configs)  # validates
            self.sim: Optional[Simulator] = None
            self.shard_map: Optional[ShardMap] = shard_map
            self.runners = [
                ShardRunner(
                    index, config, shard_map, interlink,
                    personalities=personalities, worms=worms,
                    recorder_capacity=shard_recorder_capacity,
                )
                for index, config in enumerate(shard_configs)
            ]
            self.members: List[Honeyfarm] = [r.farm for r in self.runners]
            return
        if worms:
            raise ValueError("worm specs require interlink mode; use"
                             " register_worm() on a legacy federation")
        self.sim = Simulator()
        self.shard_map = None
        self.members = []
        claimed: List[Prefix] = []
        for config in shard_configs:
            for prefix in config.parsed_prefixes():
                for existing in claimed:
                    if existing.overlaps(prefix):
                        raise ValueError(
                            f"shard prefix {prefix} overlaps {existing};"
                            " members must own disjoint address space"
                        )
                claimed.append(prefix)
            self.members.append(
                Honeyfarm(config, personalities=personalities, sim=self.sim)
            )

    # ------------------------------------------------------------------ #
    # Routing and driving
    # ------------------------------------------------------------------ #

    def member_for(self, addr: IPAddress) -> Optional[Honeyfarm]:
        """The member whose shard covers ``addr`` (None = not dark space)."""
        for member in self.members:
            if member.inventory.covers(addr):
                return member
        return None

    def inject(self, packet: Packet) -> None:
        """Route one packet to the owning member's gateway (in interlink
        mode this is a pre-run seeding hook: mid-run injection would
        bypass the epoch barriers)."""
        member = self.member_for(packet.dst)
        if member is None:
            self.unrouteable_packets += 1
            return
        member.inject(packet)

    def register_worm(self, behavior: ScanBehavior) -> None:
        """Register the worm's behaviour with every member."""
        for member in self.members:
            member.register_worm(behavior)

    def attach_telescope(self, telescope, batched: bool = True) -> int:
        """Attach a :class:`~repro.workloads.telescope.PartitionedTelescope`
        (interlink mode): each shard generates and replays its own
        partition, exactly as the parallel lane's workers do."""
        self._require_interlink("attach_telescope")
        if telescope.shard_count != len(self.runners):
            raise ValueError(
                f"telescope has {telescope.shard_count} partitions for"
                f" {len(self.runners)} shards"
            )
        return sum(
            runner.attach_telescope(telescope, batched=batched)
            for runner in self.runners
        )

    def attach_shard_records(
        self, shard: int, records, batched: bool = True
    ) -> int:
        """Feed one shard's explicit record list (interlink mode)."""
        self._require_interlink("attach_shard_records")
        return self.runners[shard].attach_records(records, batched=batched)

    def run(self, until: float) -> None:
        """Run the federation to ``until`` — one shared clock in legacy
        mode, lockstep epochs over private clocks in interlink mode."""
        if self.interlink is not None:
            run_epochs(self.runners, until, self.interlink.lookahead)
            return
        for member in self.members:
            member._ensure_sweeper()
        self.sim.run(until=until)

    def _require_interlink(self, what: str) -> None:
        if self.interlink is None:
            raise ValueError(f"{what} requires interlink mode")

    # ------------------------------------------------------------------ #
    # Aggregate reporting
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """The federation's simulated time (all clocks agree at barriers)."""
        if self.interlink is not None:
            return max(r.farm.sim.now for r in self.runners)
        return self.sim.now

    @property
    def total_addresses(self) -> int:
        return sum(m.inventory.total_addresses for m in self.members)

    @property
    def live_vms(self) -> int:
        return sum(m.live_vms for m in self.members)

    def infection_count(self) -> int:
        return sum(m.infection_count() for m in self.members)

    def infections(self) -> List[InfectionRecord]:
        records: List[InfectionRecord] = []
        for member in self.members:
            records.extend(member.infections)
        records.sort(key=lambda r: r.time)
        return records

    def memory_breakdown(self) -> MemoryBreakdown:
        merged = MemoryBreakdown(
            capacity=0, image_resident=0, private_resident=0,
            live_vms=0, full_copy_equivalent=0,
        )
        for member in self.members:
            merged = merged.merged_with(member.memory_breakdown())
        return merged

    def aggregate_counters(self) -> Dict[str, int]:
        """Sum of every member's counters, by name."""
        totals: Dict[str, int] = {}
        for member in self.members:
            for name, value in member.metrics.counters().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def member_ledgers(self) -> List:
        """One :class:`~repro.analysis.recovery.PacketLedger` per member."""
        from repro.analysis.recovery import packet_ledger

        return [packet_ledger(member) for member in self.members]

    def federation_ledger(self):
        """The federation-wide packet ledger, reconciled *independently*
        from the summed counters (so it cross-checks the per-member
        ledgers rather than restating them)."""
        from repro.analysis.recovery import PENDING_DROP_CAUSES, PacketLedger

        totals = self.aggregate_counters()
        dropped: Dict[str, int] = {}
        for cause in ("no_capacity_drop", "pending_overflow", "dropped_vm_not_running"):
            count = totals.get(f"gateway.{cause}", 0)
            if count:
                dropped[cause.replace("_drop", "").replace("dropped_", "")] = count
        for cause in PENDING_DROP_CAUSES:
            count = totals.get(f"gateway.pending_dropped_{cause}", 0)
            if count:
                dropped[f"pending_{cause}"] = count
        return PacketLedger(
            packets_in=totals.get("gateway.packets_in", 0),
            delivered=totals.get("gateway.delivered", 0),
            refused=(
                totals.get("gateway.ttl_expired", 0)
                + totals.get("gateway.stray", 0)
            ),
            dropped_by_cause=dropped,
            still_pending=sum(
                m.gateway.pending_packet_count for m in self.members
            ),
            emulated=totals.get("gateway.emulated", 0),
        )

    def assert_packet_conservation(self):
        """Global packet conservation, or raise with every violation.

        Checks, in order: each member's own ledger balances (leaked ==
        0); the sum of member ledgers equals the federation ledger,
        bucket by bucket; and — interlink mode — the message layer
        conserves too (every message sent was received by its owner or
        is still in a mailbox past the final barrier). Returns the
        federation ledger on success.
        """
        members = self.member_ledgers()
        federation = self.federation_ledger()
        failures: List[str] = []
        for index, ledger in enumerate(members):
            if ledger.leaked != 0:
                failures.append(
                    f"member {index} leaked {ledger.leaked} packets"
                )
        for bucket in (
            "packets_in", "delivered", "emulated", "refused",
            "dropped", "still_pending",
        ):
            member_sum = sum(getattr(ledger, bucket) for ledger in members)
            fed_value = getattr(federation, bucket)
            if member_sum != fed_value:
                failures.append(
                    f"{bucket}: member ledgers sum to {member_sum}"
                    f" but the federation ledger says {fed_value}"
                )
        if self.interlink is not None:
            sent = sum(r.sent for r in self.runners)
            received = self.aggregate_counters().get("gateway.intershard_in", 0)
            undelivered = sum(r.undelivered_messages for r in self.runners)
            if sent != received + undelivered:
                failures.append(
                    f"inter-shard messages: {sent} sent !="
                    f" {received} received + {undelivered} undelivered"
                )
        if failures:
            raise AssertionError(
                "federation packet conservation violated: "
                + "; ".join(failures)
            )
        return federation

    def shard_reports(self) -> List[Dict]:
        """Per-shard reports in the exact shape the parallel lane's
        workers return (interlink mode) — the bit-equality surface the
        worker-count invariance tests and the federation bench compare."""
        self._require_interlink("shard_reports")
        return [runner.report() for runner in self.runners]

    def per_member_rows(self) -> List[Tuple[str, int, int, int, int]]:
        """(shard, live VMs, spawned, infections, packets in) rows."""
        rows = []
        for member in self.members:
            counters = member.metrics.counters()
            rows.append((
                ", ".join(member.config.prefixes),
                member.live_vms,
                counters.get("farm.vms_spawned", 0),
                member.infection_count(),
                counters.get("gateway.packets_in", 0),
            ))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FederatedHoneyfarm members={len(self.members)}"
            f" addresses={self.total_addresses} t={self.now:.1f}s"
            f"{' interlinked' if self.interlink is not None else ''}>"
        )
