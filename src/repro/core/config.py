"""Declarative honeyfarm configuration.

One :class:`HoneyfarmConfig` fully describes a farm: address space,
cluster shape, per-prefix personalities, policy knobs, and the root seed.
Experiments construct variants with :func:`dataclasses.replace`, which
keeps parameter sweeps explicit and diff-able.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.net.addr import IPAddress, Prefix

__all__ = ["DeceptionConfig", "HoneyfarmConfig", "LadderConfig"]


@dataclass(frozen=True)
class DeceptionConfig:
    """Anti-fingerprinting deception: per-address personality
    randomization plus response-timing jitter.

    Fingerprinting attackers exploit two farm-wide regularities: every
    dark address presents the identical personality, and every reply
    leaves with machine-identical timing. Deception breaks both with
    *seed-deterministic* randomization — pure functions of ``(seed,
    address)``, so repeat visits to one address always see the same host
    and every run replays bit-identically.

    Attributes
    ----------
    enabled:
        Turn deception on. Off by default so the stock farm is
        byte-for-byte the pre-deception system; ``False`` doubles as the
        ablation arm of the capture-rate experiment (the
        ``content_sharing`` pattern).
    personality_pool:
        Personalities assigned round the farm by a stable hash of the
        address. Repeats weight the draw — the default pool is 50%
        ``windows-default`` (vulnerable), so exploits still land.
        Takes precedence over ``personality_mix`` and the per-prefix
        mapping while enabled.
    jitter_max_seconds:
        Upper bound on the per-address reply delay added at the gateway
        egress edge. Each address gets one fixed delay in
        ``[0, jitter_max_seconds)`` — constant per address, so same-flow
        packet order is preserved, but *different* across addresses,
        which destroys the cross-address timing-correlation tell.
        Zero disables the delay while keeping personality randomization.
    """

    enabled: bool = False
    personality_pool: Tuple[str, ...] = (
        "windows-default", "windows-default", "windows-patched",
        "linux-server",
    )
    jitter_max_seconds: float = 0.08

    def __post_init__(self) -> None:
        if self.jitter_max_seconds < 0:
            raise ValueError(
                f"jitter_max_seconds must be >= 0: {self.jitter_max_seconds!r}"
            )
        if self.enabled and not self.personality_pool:
            raise ValueError(
                "an enabled deception config needs a non-empty"
                " personality_pool"
            )


@dataclass(frozen=True)
class LadderConfig:
    """The fidelity ladder: emulator tier + dynamic promotion.

    Attributes
    ----------
    enabled:
        Attach the ladder to the gateway. Off by default: the stock farm
        clones a VM for every cold address, exactly as before. ``False``
        is also the *clone-always ablation* the fidelity benchmark
        compares against.
    promote_on_vuln_probe:
        Promote a flow the instant its packet exploits a vulnerability
        the address's personality actually has. Disabling this is an
        ablation knob only — the emulator cannot be infected, so farms
        running with it off will miss every infection the ladder absorbs.
    promote_payload_bytes:
        Promote once a single flow has carried this many payload bytes
        (None disables the trigger).
    promote_state_depth:
        Promote once a single flow has reached this many application
        exchanges (None disables the trigger).
    max_handoff_packets:
        Bound on the per-session replay buffer carried into a promoted
        VM; the oldest absorbed packets are evicted first (0 disables
        buffering — promotions then hand off no history).
    """

    enabled: bool = False
    promote_on_vuln_probe: bool = True
    promote_payload_bytes: Optional[int] = 512
    promote_state_depth: Optional[int] = 8
    max_handoff_packets: int = 64

    def __post_init__(self) -> None:
        if self.promote_payload_bytes is not None and self.promote_payload_bytes <= 0:
            raise ValueError(
                "promote_payload_bytes must be positive or None:"
                f" {self.promote_payload_bytes!r}"
            )
        if self.promote_state_depth is not None and self.promote_state_depth <= 0:
            raise ValueError(
                "promote_state_depth must be positive or None:"
                f" {self.promote_state_depth!r}"
            )
        if self.max_handoff_packets < 0:
            raise ValueError(
                f"max_handoff_packets must be >= 0: {self.max_handoff_packets!r}"
            )
        if self.enabled and not (
            self.promote_on_vuln_probe
            or self.promote_payload_bytes is not None
            or self.promote_state_depth is not None
        ):
            raise ValueError(
                "an enabled ladder needs at least one promotion trigger"
            )


@dataclass(frozen=True)
class HoneyfarmConfig:
    """Every knob the honeyfarm exposes, with paper-faithful defaults.

    Attributes
    ----------
    prefixes:
        Dark prefixes (as strings, e.g. ``("10.16.0.0/16",)``) the farm
        impersonates. Defaults to one /16, the paper's reference unit.
    personality_by_prefix:
        Prefix string → personality name; prefixes not listed use
        ``default_personality``.
    personality_mix:
        Optional personality-name → weight mapping. When set, each dark
        address is assigned a personality by a stable hash of the
        address, weighted accordingly — so the farm presents a
        heterogeneous population (a /16 that is 70% Windows, 30% Linux)
        while every repeat visit to one address sees the same host.
        Overrides the per-prefix mapping.
    num_hosts / host_memory_bytes / max_vms_per_host:
        Cluster shape. Defaults mirror the paper's testbed class: 2 GiB
        servers.
    vm_image_bytes:
        Guest memory size for reference snapshots (128 MiB default).
    idle_timeout_seconds:
        The central reclamation knob: a VM idle this long is reclaimed.
    sweep_interval_seconds:
        How often the reclamation daemon scans for victims.
    memory_pressure_threshold:
        Host memory utilisation above which the pressure policy starts
        evicting the least-recently-active VMs even before their idle
        timeout (None disables).
    warm_pool_size:
        Pre-created pristine VMs kept waiting for an address (0 disables
        the pool). A packet for a cold address then pays only the
        identity-swap latency (~60 ms) instead of the full clone pipeline
        (~520 ms); a background daemon refills the pool.
    containment:
        Name of the containment policy: ``open``, ``drop-all``,
        ``allow-dns``, or ``reflect``.
    outbound_rate_limit:
        Max *allowed* outbound packets/second per VM (None = unlimited);
        applied on top of whichever policy is selected.
    detain_infected:
        Pause (retain for forensics) rather than destroy infected VMs at
        reclamation time, up to ``max_detained``.
    clone_jitter:
        Coefficient of variation on clone stage latencies.
    clone_mode:
        ``flash`` (delta virtualization, the system under test),
        ``full-copy`` (the eager-copy ablation A-ABL1), or ``boot``
        (the dedicated-honeypot baseline: cold boot + private image).
    content_sharing:
        Content-based page sharing on each host (ESX-style transparent
        sharing layered on delta virtualization): writes of identical
        content tags — worm bodies, chiefly — share one physical frame
        host-wide. On by default; ``False`` is the A-ABL ablation that
        isolates what sharing buys beyond copy-on-write.
    pending_timeout_seconds:
        Watchdog over the gateway's per-address pending queues: if a
        clone has not delivered within this window, the held packets are
        dropped (accounted under the ``timeout`` cause) and the address
        is unbound so the next packet re-dispatches. None (the default)
        disables the watchdog entirely — no timer events are scheduled.
    respawn_backoff_base / respawn_backoff_cap / respawn_backoff_jitter:
        Capped exponential backoff (with seeded jitter) for re-spawning
        the addresses a crashed host was serving onto survivors.
    respawn_max_attempts:
        Give up re-spawning an address after this many failed attempts.
    ladder:
        Fidelity-ladder block (:class:`LadderConfig`): protocol-emulator
        tier with dynamic promotion into flash clones. Disabled by
        default, which doubles as the clone-always ablation.
    deception:
        Anti-fingerprinting block (:class:`DeceptionConfig`): seeded
        per-address personality randomization + reply-timing jitter.
        Disabled by default, which doubles as the deception-off ablation
        of the adversary experiment.
    seed:
        Root seed for every random stream in the run.
    """

    prefixes: Tuple[str, ...] = ("10.16.0.0/16",)
    personality_by_prefix: Dict[str, str] = field(default_factory=dict)
    personality_mix: Optional[Dict[str, float]] = None
    default_personality: str = "windows-default"
    num_hosts: int = 4
    host_memory_bytes: int = 2 * (1 << 30)
    max_vms_per_host: int = 512
    vm_image_bytes: int = 128 * (1 << 20)
    idle_timeout_seconds: float = 60.0
    sweep_interval_seconds: float = 1.0
    memory_pressure_threshold: Optional[float] = 0.95
    flow_idle_timeout_seconds: float = 60.0
    containment: str = "reflect"
    outbound_rate_limit: Optional[float] = None
    detain_infected: bool = False
    max_detained: int = 32
    clone_jitter: float = 0.05
    clone_mode: str = "flash"
    content_sharing: bool = True
    warm_pool_size: int = 0
    warm_pool_refill_interval: float = 0.25
    placement_policy: str = "least-loaded"
    dns_server_ip: str = "198.18.53.53"
    pending_timeout_seconds: Optional[float] = None
    respawn_backoff_base: float = 0.5
    respawn_backoff_cap: float = 8.0
    respawn_backoff_jitter: float = 0.2
    respawn_max_attempts: int = 6
    ladder: LadderConfig = field(default_factory=LadderConfig)
    deception: DeceptionConfig = field(default_factory=DeceptionConfig)
    seed: int = 1

    def __post_init__(self) -> None:
        if self.num_hosts <= 0:
            raise ValueError(f"num_hosts must be positive: {self.num_hosts!r}")
        if self.idle_timeout_seconds <= 0:
            raise ValueError(
                f"idle_timeout_seconds must be positive: {self.idle_timeout_seconds!r}"
            )
        if self.sweep_interval_seconds <= 0:
            raise ValueError(
                f"sweep_interval_seconds must be positive: {self.sweep_interval_seconds!r}"
            )
        if self.containment not in ("open", "drop-all", "allow-dns", "reflect"):
            raise ValueError(f"unknown containment policy: {self.containment!r}")
        if self.clone_mode not in ("flash", "full-copy", "boot"):
            raise ValueError(f"unknown clone_mode: {self.clone_mode!r}")
        if self.warm_pool_size < 0:
            raise ValueError(f"warm_pool_size must be >= 0: {self.warm_pool_size!r}")
        if self.warm_pool_refill_interval <= 0:
            raise ValueError("warm_pool_refill_interval must be positive")
        if self.placement_policy not in ("least-loaded", "round-robin", "pack"):
            raise ValueError(f"unknown placement_policy: {self.placement_policy!r}")
        if self.pending_timeout_seconds is not None and self.pending_timeout_seconds <= 0:
            raise ValueError(
                "pending_timeout_seconds must be positive or None:"
                f" {self.pending_timeout_seconds!r}"
            )
        if self.respawn_backoff_base <= 0:
            raise ValueError(
                f"respawn_backoff_base must be positive: {self.respawn_backoff_base!r}"
            )
        if self.respawn_backoff_cap < self.respawn_backoff_base:
            raise ValueError(
                "respawn_backoff_cap must be >= respawn_backoff_base:"
                f" {self.respawn_backoff_cap!r}"
            )
        if not (0.0 <= self.respawn_backoff_jitter < 1.0):
            raise ValueError(
                f"respawn_backoff_jitter must be in [0, 1): {self.respawn_backoff_jitter!r}"
            )
        if self.respawn_max_attempts <= 0:
            raise ValueError(
                f"respawn_max_attempts must be positive: {self.respawn_max_attempts!r}"
            )
        if self.memory_pressure_threshold is not None and not (
            0.0 < self.memory_pressure_threshold <= 1.0
        ):
            raise ValueError(
                "memory_pressure_threshold must be in (0, 1] or None:"
                f" {self.memory_pressure_threshold!r}"
            )
        for prefix in self.prefixes:
            Prefix.parse(prefix)  # validate eagerly; raises on malformed input
        for prefix in self.personality_by_prefix:
            if prefix not in self.prefixes:
                raise ValueError(
                    f"personality_by_prefix names unknown prefix {prefix!r}"
                )
        if self.personality_mix is not None:
            if not self.personality_mix:
                raise ValueError("personality_mix must not be empty")
            for name, weight in self.personality_mix.items():
                if weight <= 0:
                    raise ValueError(
                        f"personality_mix weight for {name!r} must be positive"
                    )

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #

    def parsed_prefixes(self) -> Tuple[Prefix, ...]:
        return tuple(Prefix.parse(p) for p in self.prefixes)

    def personality_for(self, prefix: Prefix) -> str:
        return self.personality_by_prefix.get(str(prefix), self.default_personality)

    def personality_for_address(self, prefix: Prefix, addr: IPAddress) -> str:
        """The personality backing one dark address.

        With deception enabled, the choice is a stable uniform hash of
        ``(seed, address)`` over the deception pool — a pure function,
        so repeat visits see the same host and runs replay
        bit-identically, yet neighbouring addresses differ (the
        anti-fingerprinting property). With a ``personality_mix``, a
        stable weighted hash of the address applies; otherwise the
        per-prefix mapping.
        """
        if self.deception.enabled:
            import hashlib

            pool = self.deception.personality_pool
            digest = hashlib.sha256(
                f"deception:{self.seed}:{addr.value}".encode()
            ).digest()
            return pool[int.from_bytes(digest[:8], "big") % len(pool)]
        if self.personality_mix is None:
            return self.personality_for(prefix)
        import hashlib

        names = sorted(self.personality_mix)
        total = sum(self.personality_mix[name] for name in names)
        digest = hashlib.sha256(f"personality:{addr.value}".encode()).digest()
        roll = int.from_bytes(digest[:8], "big") / float(1 << 64) * total
        acc = 0.0
        for name in names:
            acc += self.personality_mix[name]
            if roll < acc:
                return name
        return names[-1]

    def all_personalities(self) -> Tuple[str, ...]:
        """Every personality this config can assign (snapshot planning)."""
        names = {self.default_personality}
        names.update(self.personality_by_prefix.values())
        if self.personality_mix is not None:
            names.update(self.personality_mix)
        if self.deception.enabled:
            names.update(self.deception.personality_pool)
        return tuple(sorted(names))

    def reply_jitter(self, addr: IPAddress) -> float:
        """The fixed deception delay added to every reply leaving
        ``addr``: a pure function of ``(seed, address)`` in
        ``[0, jitter_max_seconds)``, zero when deception is off."""
        deception = self.deception
        if not deception.enabled or deception.jitter_max_seconds <= 0.0:
            return 0.0
        import hashlib

        digest = hashlib.sha256(
            f"deception-jitter:{self.seed}:{addr.value}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return unit * deception.jitter_max_seconds

    def dns_address(self) -> IPAddress:
        return IPAddress.parse(self.dns_server_ip)

    def with_overrides(self, **kwargs) -> "HoneyfarmConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **kwargs)
