"""Flash cloning: on-demand VM instantiation from a live snapshot.

The latency half of the paper's scalability argument. Instead of booting
a guest OS when a packet arrives for an unused address (tens of seconds —
the scanner is long gone), the engine *forks* a pre-booted reference
snapshot: create an empty domain, overlay the snapshot's memory
copy-on-write (delta virtualization makes this O(1) in pages), attach CoW
disk and a fresh virtual NIC, and rewrite the clone's network identity to
the target address. Each stage charges simulated time from the
:class:`~repro.vmm.latency.CloneCostModel`, reproducing the paper's
~0.5 s end-to-end clone latency and its stage breakdown (Table T1).

The engine is asynchronous: :meth:`FlashCloneEngine.clone` returns the VM
immediately in ``CLONING`` state and invokes a completion callback when
the pipeline finishes, which is when the gateway flushes the packets it
queued for the address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.addr import IPAddress
from repro.obs import recorder as _obs
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricRegistry
from repro.vmm.host import HostCapacityError, PhysicalHost
from repro.vmm.latency import CloneCostModel, StageCost
from repro.vmm.memory import GuestAddressSpace, OutOfMemoryError
from repro.vmm.snapshot import ReferenceSnapshot
from repro.vmm.vm import VirtualMachine

__all__ = ["CloneResult", "FlashCloneEngine"]


@dataclass
class CloneResult:
    """Outcome of one clone operation, kept for the latency experiments.

    ``failed`` marks a clone the fault-injection hook killed at the end
    of its pipeline: the VM never reached RUNNING and the orchestrator
    must tear it down. Failures surface through this flag (with
    ``failure_reason``) rather than an exception, because by the time
    the pipeline completes the original caller is long gone — only the
    ``on_ready`` callback can react.
    """

    vm: VirtualMachine
    requested_at: float
    completed_at: float
    stages: List[StageCost] = field(default_factory=list)
    failed: bool = False
    failure_reason: Optional[str] = None

    @property
    def total_seconds(self) -> float:
        return self.completed_at - self.requested_at

    def stage_seconds(self) -> Dict[str, float]:
        return {s.stage: s.seconds for s in self.stages}


class FlashCloneEngine:
    """Clones VMs from reference snapshots on a given host.

    Parameters
    ----------
    sim:
        The event clock stages are charged against.
    cost_model:
        Stage latency model (see :mod:`repro.vmm.latency`).
    metrics:
        Registry receiving ``clone.*`` histograms and counters.
    mode:
        ``flash`` — delta virtualization, the system under test;
        ``full-copy`` — the eager-copy ablation (A-ABL1): memory is
        copied instead of CoW-shared, charging both the copy latency and
        the full physical footprint;
        ``boot`` — the dedicated-honeypot baseline: a cold guest boot
        plus a private image (what a conventional honeyfarm pays per
        address).
    """

    MODES = ("flash", "full-copy", "boot")

    def __init__(
        self,
        sim: Simulator,
        cost_model: CloneCostModel,
        metrics: Optional[MetricRegistry] = None,
        mode: str = "flash",
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown clone mode {mode!r}; expected one of {self.MODES}")
        self.sim = sim
        self.cost_model = cost_model
        self.metrics = metrics or MetricRegistry()
        self.mode = mode
        self.results: List[CloneResult] = []
        self.failures: List[CloneResult] = []
        self.in_flight = 0
        # Running sums for the periodic reports, maintained as clones
        # complete: the old re-scan of ``results`` per call made every
        # report O(completed clones) — quadratic over a run that reports
        # each sweep. ``results`` itself stays, for the T1 tables.
        self._latency_sum = 0.0
        self._stage_sums: Dict[str, float] = {}
        self._stage_counts: Dict[str, int] = {}
        # Chaos hook (see repro.faults.injectors.CloneFaultInjector):
        # called once per completing clone; a non-None return is a
        # failure reason and the clone fails instead of starting. None
        # (the default) keeps the pipeline fault-free at zero cost.
        self.fault_hook: Optional[Callable[[VirtualMachine], Optional[str]]] = None

    @property
    def eager_copy(self) -> bool:
        """Whether clones carry a private copy of the whole image."""
        return self.mode in ("full-copy", "boot")

    def clone(
        self,
        host: PhysicalHost,
        snapshot: ReferenceSnapshot,
        ip: IPAddress,
        on_ready: Optional[Callable[[CloneResult], None]] = None,
    ) -> VirtualMachine:
        """Begin cloning ``snapshot`` as a new VM impersonating ``ip``.

        Admission (VM slot + memory) is checked synchronously, so the
        caller can catch :class:`~repro.vmm.host.HostCapacityError` /
        :class:`~repro.vmm.memory.OutOfMemoryError` and reclaim or spill;
        the latency pipeline then plays out on the event clock and
        ``on_ready`` fires when the VM starts running.
        """
        if not host.has_vm_slot():
            raise HostCapacityError(f"{host.name} has no free VM slot")
        address_space = GuestAddressSpace(snapshot.image, eager_copy=self.eager_copy)
        vm = VirtualMachine(
            snapshot=snapshot,
            address_space=address_space,
            ip=ip,
            created_at=self.sim.now,
        )
        try:
            host.admit(vm)
        except HostCapacityError:
            address_space.destroy()
            raise
        snapshot.clones_created += 1
        self.in_flight += 1

        if self.mode == "full-copy":
            stages = self.cost_model.full_copy_stages(snapshot.image_bytes)
        elif self.mode == "boot":
            stages = self.cost_model.boot_stages()
        else:
            stages = self.cost_model.flash_clone_stages()
        result = CloneResult(vm=vm, requested_at=self.sim.now, completed_at=0.0, stages=stages)
        total = sum(s.seconds for s in stages)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "clone", "started",
                ip=str(ip), vm_id=vm.vm_id, host=host.name, mode=self.mode,
                eta_seconds=total,
            )
        self.sim.schedule(total, self._complete, result, on_ready)
        return vm

    def _complete(
        self, result: CloneResult, on_ready: Optional[Callable[[CloneResult], None]]
    ) -> None:
        self.in_flight -= 1
        result.completed_at = self.sim.now
        vm = result.vm
        if not vm.is_live:
            # Reclaimed mid-clone (memory pressure, or its host crashed).
            self.metrics.counter("clone.aborted").increment()
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.emit(
                    self.sim.now, "clone", "aborted",
                    ip=str(vm.ip), vm_id=vm.vm_id,
                )
            return
        if self.fault_hook is not None:
            reason = self.fault_hook(vm)
            if reason is not None:
                result.failed = True
                result.failure_reason = reason
                self.failures.append(result)
                self.metrics.counter("clone.failed").increment()
                if _obs.ACTIVE is not None:
                    _obs.ACTIVE.emit(
                        self.sim.now, "clone", "failed",
                        ip=str(vm.ip), vm_id=vm.vm_id, reason=reason,
                    )
                if on_ready is not None:
                    on_ready(result)
                return
        vm.start(self.sim.now)
        self.results.append(result)
        self._latency_sum += result.total_seconds
        self.metrics.counter("clone.completed").increment()
        if _obs.ACTIVE is not None:
            memory = vm.address_space.memory
            _obs.ACTIVE.emit(
                self.sim.now, "clone", "completed",
                ip=str(vm.ip), vm_id=vm.vm_id, seconds=result.total_seconds,
                host_shared_frames=memory.shared_frames,
                host_sharing_savings=memory.sharing_savings_frames,
            )
        self.metrics.histogram("clone.latency_seconds").observe(result.total_seconds)
        for stage in result.stages:
            self._stage_sums[stage.stage] = (
                self._stage_sums.get(stage.stage, 0.0) + stage.seconds
            )
            self._stage_counts[stage.stage] = self._stage_counts.get(stage.stage, 0) + 1
            self.metrics.histogram(f"clone.stage.{stage.stage}").observe(stage.seconds)
        if on_ready is not None:
            on_ready(result)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def stage_breakdown_ms(self) -> Dict[str, float]:
        """Mean per-stage latency in milliseconds over all completed
        clones — the rows of the Table T1 reproduction. O(stages), from
        running sums."""
        return {
            stage: 1000.0 * self._stage_sums[stage] / self._stage_counts[stage]
            for stage in self._stage_sums
        }

    def mean_latency_seconds(self) -> float:
        if not self.results:
            return 0.0
        return self._latency_sum / len(self.results)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FlashCloneEngine {self.mode} completed={len(self.results)}>"
