"""Delta-virtualization accounting: what copy-on-write sharing buys.

The mechanism lives in :mod:`repro.vmm.memory` (base + overlay address
spaces); this module provides the *measurements* the paper reports on top
of it — per-host and farm-wide breakdowns of where physical memory goes,
and the consolidation factor versus a conventional full-copy deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.vmm.host import PhysicalHost
from repro.vmm.memory import PAGE_SIZE

__all__ = ["MemoryBreakdown", "host_memory_breakdown", "farm_memory_breakdown"]


@dataclass(frozen=True)
class MemoryBreakdown:
    """Where a host's (or farm's) physical memory goes.

    All quantities in bytes. ``full_copy_equivalent`` is what the same VM
    population would consume if every VM carried a private copy of its
    image — the denominatorless way the paper states the delta-
    virtualization win.
    """

    capacity: int
    image_resident: int
    private_resident: int
    live_vms: int
    full_copy_equivalent: int
    # Bytes content-based sharing is saving (0 when sharing is off).
    # ``private_resident`` stays the *logical* overlay footprint, so
    # physical usage is private_resident - sharing_savings.
    sharing_savings: int = 0
    shared_resident: int = 0

    @property
    def total_resident(self) -> int:
        return self.image_resident + self.private_resident

    @property
    def physical_private_resident(self) -> int:
        """Physical bytes actually backing the overlays."""
        return self.private_resident - self.sharing_savings

    @property
    def physical_resident(self) -> int:
        return self.image_resident + self.physical_private_resident

    @property
    def mean_private_per_vm(self) -> float:
        """Mean private footprint per VM, in bytes."""
        return self.private_resident / self.live_vms if self.live_vms else 0.0

    @property
    def consolidation_factor(self) -> float:
        """full-copy bytes / actual bytes — how many times more memory a
        conventional deployment would need for the same VM population."""
        if self.total_resident == 0:
            return 1.0
        return self.full_copy_equivalent / self.total_resident

    @property
    def utilization(self) -> float:
        return self.total_resident / self.capacity if self.capacity else 0.0

    def merged_with(self, other: "MemoryBreakdown") -> "MemoryBreakdown":
        return MemoryBreakdown(
            capacity=self.capacity + other.capacity,
            image_resident=self.image_resident + other.image_resident,
            private_resident=self.private_resident + other.private_resident,
            live_vms=self.live_vms + other.live_vms,
            full_copy_equivalent=self.full_copy_equivalent + other.full_copy_equivalent,
            sharing_savings=self.sharing_savings + other.sharing_savings,
            shared_resident=self.shared_resident + other.shared_resident,
        )


def host_memory_breakdown(host: PhysicalHost) -> MemoryBreakdown:
    """Measure one host.

    ``full_copy_equivalent`` counts each live VM at its full image size
    plus the resident images themselves (a conventional deployment still
    needs one master copy per personality).
    """
    image_resident = sum(
        snap.image.page_count for snap in host.snapshots.values() if not snap.image.released
    )
    private = 0
    full_copy = image_resident
    vms = 0
    for vm in host.vms():
        vms += 1
        private += vm.private_pages
        full_copy += vm.address_space.page_count
    return MemoryBreakdown(
        capacity=host.memory.capacity_bytes,
        image_resident=image_resident * PAGE_SIZE,
        private_resident=private * PAGE_SIZE,
        live_vms=vms,
        full_copy_equivalent=full_copy * PAGE_SIZE,
        sharing_savings=host.memory.sharing_savings_frames * PAGE_SIZE,
        shared_resident=host.memory.shared_frames * PAGE_SIZE,
    )


def farm_memory_breakdown(hosts: Iterable[PhysicalHost]) -> MemoryBreakdown:
    """Aggregate breakdown across the cluster."""
    merged = MemoryBreakdown(
        capacity=0,
        image_resident=0,
        private_resident=0,
        live_vms=0,
        full_copy_equivalent=0,
    )
    for host in hosts:
        merged = merged.merged_with(host_memory_breakdown(host))
    return merged
