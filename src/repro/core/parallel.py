"""The parallel federation: shard workers in separate processes.

This is the scalability tentpole: N shard workers, each owning a full
farm (gateway, hosts, ladder, batched event loop) in its own OS process,
coordinated over pipes by a conservative time-stepped protocol (see
:mod:`repro.core.intershard` and docs/FEDERATION.md). The coordinator's
loop is the same lockstep-epoch structure as the in-process
:func:`~repro.core.intershard.run_epochs` reference — run every shard to
the barrier, exchange outboxes, advance — with a pipe round-trip where
the reference has a function call. Workers run the identical
:class:`~repro.core.intershard.ShardRunner` code, so for any worker
count the results are bit-equal to the reference (the federation bench
gates this on every run).

Determinism does not depend on scheduling: each worker runs its shards
in shard order within an epoch, messages are routed purely by the shard
map, and each mailbox replays its messages in ``(deliver_time,
src_shard, seq)`` order. The only nondeterminism between runs is wall
time.

Workers receive *specs*, not live objects: configs, prefix strings,
worm names, telescope parameters, trace records — everything picklable
and everything reconstructible to an identical farm in any process.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import HoneyfarmConfig
from repro.core.intershard import (
    InterShardConfig,
    ShardMessage,
    ShardRunner,
    assign_shards,
)
from repro.net.shardmap import ShardMap

__all__ = ["FederationResult", "ParallelFederation"]

#: Index of ``dst_shard`` in :meth:`ShardMessage.encode` tuples — the
#: coordinator routes encoded messages without decoding packet bodies.
_ENC_DST_SHARD = 4


def _shard_worker(conn, payload: Dict[str, Any]) -> None:
    """Worker main: build this worker's shards, then serve epochs.

    Protocol (all tuples, coordinator -> worker unless noted):

    * worker sends ``("ready", [shard indices])`` after construction;
    * ``("epoch", end, inbound)`` — deposit the encoded inbound
      messages, run every owned shard to ``end`` (shard order), answer
      ``("done", outbound)`` with the epoch's encoded outbox;
    * ``("deposit", inbound)`` — mailbox-only (the post-final-barrier
      exchange that keeps undelivered accounting identical to the
      reference), answer ``("done", [])``;
    * ``("report",)`` — answer ``("reports", [shard report dicts])``;
    * ``("stop",)`` — exit.

    Any exception is shipped back as ``("error", formatted traceback)``.
    """
    try:
        shard_map = ShardMap(payload["spec"])
        interlink: InterShardConfig = payload["interlink"]
        runners: Dict[int, ShardRunner] = {}
        for index, config, records in payload["shards"]:
            runner = ShardRunner(
                index, config, shard_map, interlink,
                worms=payload["worms"],
                recorder_capacity=payload["recorder_capacity"],
            )
            if payload["telescope"] is not None:
                runner.attach_telescope(
                    payload["telescope"], batched=payload["batched"]
                )
            elif records is not None:
                runner.attach_records(records, batched=payload["batched"])
            runners[index] = runner
        order = sorted(runners)
        conn.send(("ready", order))
        while True:
            message = conn.recv()
            op = message[0]
            if op == "epoch":
                __, end, inbound = message
                for encoded in inbound:
                    decoded = ShardMessage.decode(encoded)
                    runners[decoded.dst_shard].deposit(decoded)
                outbound: List[Tuple] = []
                for index in order:
                    outbound.extend(
                        m.encode() for m in runners[index].run_epoch(end)
                    )
                conn.send(("done", outbound))
            elif op == "deposit":
                for encoded in message[1]:
                    decoded = ShardMessage.decode(encoded)
                    runners[decoded.dst_shard].deposit(decoded)
                conn.send(("done", []))
            elif op == "report":
                conn.send(("reports", [runners[i].report() for i in order]))
            elif op == "stop":
                return
            else:
                raise ValueError(f"unknown coordinator op: {op!r}")
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class FederationResult:
    """Everything a parallel run reports, plus aggregate views.

    ``reports`` (sorted by shard index) is the bit-equality surface: it
    must compare equal across worker counts and against the in-process
    reference's :meth:`~repro.core.federation.FederatedHoneyfarm.shard_reports`.
    """

    reports: List[Dict[str, Any]]
    workers: int
    assignment: List[int]
    epochs: int
    until: float
    wall_seconds: float = 0.0
    ledger_buckets: Tuple[str, ...] = field(
        default=("packets_in", "delivered", "emulated", "refused",
                 "still_pending"),
        repr=False,
    )

    def aggregate_counters(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for report in self.reports:
            for name, value in report["counters"].items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def infection_count(self) -> int:
        return sum(len(r["infections"]) for r in self.reports)

    def infections(self) -> List[Tuple]:
        """All shards' infection tuples merged in time order."""
        merged: List[Tuple] = []
        for report in self.reports:
            merged.extend(tuple(i) for i in report["infections"])
        merged.sort()
        return merged

    def ledger_totals(self) -> Dict[str, int]:
        totals = {bucket: 0 for bucket in self.ledger_buckets}
        totals["dropped"] = 0
        totals["leaked"] = 0
        for report in self.reports:
            ledger = report["ledger"]
            for bucket in self.ledger_buckets:
                totals[bucket] += ledger[bucket]
            totals["dropped"] += sum(ledger["dropped_by_cause"].values())
            totals["leaked"] += ledger["leaked"]
        return totals

    def intershard_totals(self) -> Dict[str, int]:
        keys = ("sent", "received", "undelivered")
        return {
            key: sum(r["intershard"][key] for r in self.reports)
            for key in keys
        }

    def assert_packet_conservation(self) -> Dict[str, int]:
        """Mirror of the in-process federation's conservation check over
        the shipped reports; returns the summed ledger on success."""
        failures: List[str] = []
        for report in self.reports:
            if report["ledger"]["leaked"] != 0:
                failures.append(
                    f"shard {report['shard']} leaked"
                    f" {report['ledger']['leaked']} packets"
                )
        totals = self.ledger_totals()
        flows = self.intershard_totals()
        if flows["sent"] != flows["received"] + flows["undelivered"]:
            failures.append(
                f"inter-shard messages: {flows['sent']} sent !="
                f" {flows['received']} received +"
                f" {flows['undelivered']} undelivered"
            )
        if failures:
            raise AssertionError(
                "parallel federation packet conservation violated: "
                + "; ".join(failures)
            )
        return totals


class ParallelFederation:
    """Coordinator for one multiprocess federated run.

    Parameters
    ----------
    shard_configs / interlink:
        Per-shard farm configs (globally disjoint prefixes) and the
        epoch protocol constants — the same inputs the in-process
        reference takes.
    workers:
        Worker process count. Shards are placed by ``placement``; a
        worker with no shards is simply never spawned, so any
        ``workers >= 1`` is valid for any shard count.
    telescope / shard_records:
        The workload, exactly one of: a picklable
        :class:`~repro.workloads.telescope.PartitionedTelescope` each
        worker expands for its own shards, or one explicit
        ``TraceRecord`` list per shard. (No workload is also legal —
        worm-only experiments seed via records.)
    worms:
        ``(name, scan_rate)`` specs registered on every shard.
    placement:
        ``"balanced"`` (default), ``"round-robin"``, or a callable —
        see :func:`~repro.core.intershard.assign_shards`. The placement
        affects wall time only, never results.
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (cheap on Linux) and falls back to whatever the platform has.
    """

    def __init__(
        self,
        shard_configs: Sequence[HoneyfarmConfig],
        interlink: InterShardConfig,
        workers: int,
        *,
        telescope=None,
        shard_records: Optional[Sequence[Optional[list]]] = None,
        worms: Sequence[Tuple[str, float]] = (),
        placement: Union[str, Callable] = "balanced",
        batched: bool = True,
        shard_recorder_capacity: int = 0,
        start_method: Optional[str] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive: {workers!r}")
        if telescope is not None and shard_records is not None:
            raise ValueError("pass telescope or shard_records, not both")
        self.shard_configs = list(shard_configs)
        self.shard_map = ShardMap.from_configs(self.shard_configs)  # validates
        if telescope is not None and telescope.shard_count != len(self.shard_configs):
            raise ValueError(
                f"telescope has {telescope.shard_count} partitions for"
                f" {len(self.shard_configs)} shards"
            )
        if shard_records is not None and len(shard_records) != len(self.shard_configs):
            raise ValueError(
                f"got {len(shard_records)} record lists for"
                f" {len(self.shard_configs)} shards"
            )
        self.interlink = interlink
        self.workers = workers
        self.telescope = telescope
        self.shard_records = shard_records
        self.worms = tuple((name, float(rate)) for name, rate in worms)
        self.batched = batched
        self.shard_recorder_capacity = shard_recorder_capacity
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        loads = [
            self.shard_map.addresses_of(i)
            for i in range(self.shard_map.shard_count)
        ]
        self.assignment = assign_shards(loads, workers, placement)
        self._ran = False

    def _payload_for(self, worker: int) -> Dict[str, Any]:
        shards = []
        for index, owner in enumerate(self.assignment):
            if owner != worker:
                continue
            records = (
                self.shard_records[index]
                if self.shard_records is not None else None
            )
            shards.append((index, self.shard_configs[index], records))
        return {
            "spec": self.shard_map.spec(),
            "interlink": self.interlink,
            "shards": shards,
            "telescope": self.telescope,
            "worms": self.worms,
            "batched": self.batched,
            "recorder_capacity": self.shard_recorder_capacity,
        }

    @staticmethod
    def _recv(conn, worker: int):
        message = conn.recv()
        if message[0] == "error":
            raise RuntimeError(
                f"federation worker {worker} failed:\n{message[1]}"
            )
        return message[1]

    def run(self, until: float) -> FederationResult:
        """Execute the lockstep run to ``until`` and collect reports.

        One-shot: the workers' farms end with the run, so a second call
        would silently restart from zero — rejected instead.
        """
        if self._ran:
            raise ValueError("a ParallelFederation instance runs once")
        self._ran = True
        ctx = mp.get_context(self.start_method)
        active = sorted(set(self.assignment))
        processes: Dict[int, Any] = {}
        conns: Dict[int, Any] = {}
        t0 = time.perf_counter()
        try:
            for worker in active:
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_shard_worker,
                    args=(child_conn, self._payload_for(worker)),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                processes[worker] = process
                conns[worker] = parent_conn
            for worker in active:
                self._recv(conns[worker], worker)  # ready
            lookahead = self.interlink.lookahead
            pending: Dict[int, List[Tuple]] = {w: [] for w in active}
            clock, epochs = 0.0, 0
            while clock < until:
                end = min(clock + lookahead, until)
                for worker in active:
                    conns[worker].send(("epoch", end, pending[worker]))
                    pending[worker] = []
                for worker in active:
                    for encoded in self._recv(conns[worker], worker):
                        owner = self.assignment[encoded[_ENC_DST_SHARD]]
                        pending[owner].append(encoded)
                clock = end
                epochs += 1
            # Final-epoch sends are all due past ``until`` (the epoch is
            # narrower than the latency); park them in their owners'
            # mailboxes so undelivered accounting matches the reference.
            for worker in active:
                conns[worker].send(("deposit", pending[worker]))
                pending[worker] = []
            for worker in active:
                self._recv(conns[worker], worker)
            reports: List[Dict[str, Any]] = []
            for worker in active:
                conns[worker].send(("report",))
            for worker in active:
                reports.extend(self._recv(conns[worker], worker))
            for worker in active:
                conns[worker].send(("stop",))
            for worker in active:
                processes[worker].join(timeout=30)
        finally:
            for process in processes.values():
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=5)
            for conn in conns.values():
                conn.close()
        reports.sort(key=lambda r: r["shard"])
        return FederationResult(
            reports=reports,
            workers=self.workers,
            assignment=list(self.assignment),
            epochs=epochs,
            until=until,
            wall_seconds=time.perf_counter() - t0,
        )
