"""Reclamation: taking honeypot VMs back to serve the next arrival.

Scalability depends on *recycling*: the farm only needs as many live VMs
as there are simultaneously-active addresses, and "active" is defined by
policy. Two policies from the paper, composable:

* :class:`IdleTimeoutPolicy` — reclaim a VM once it has been silent for a
  configurable period. The timeout is the farm's central knob: long
  timeouts retain state for slow-returning scanners at the price of
  thousands of resident VMs (experiment F-CONC sweeps exactly this).
* :class:`MemoryPressurePolicy` — when a host's memory passes a
  threshold, evict least-recently-active VMs regardless of timeout,
  so a burst can never wedge the host.

Both honour **detention**: an infected VM is evidence, and the farm may
prefer to pause it for forensics rather than destroy it (bounded by
``max_detained``; beyond that infected VMs are recycled like the rest).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.obs import recorder as _obs
from repro.vmm.host import PhysicalHost
from repro.vmm.vm import VirtualMachine, VMState

__all__ = ["ReclamationPolicy", "IdleTimeoutPolicy", "MemoryPressurePolicy", "ReclamationPlan"]


class ReclamationPlan:
    """What a policy decided for one sweep of one host."""

    def __init__(
        self,
        destroy: Optional[List[VirtualMachine]] = None,
        detain: Optional[List[VirtualMachine]] = None,
    ) -> None:
        self.destroy = destroy or []
        self.detain = detain or []

    @property
    def total(self) -> int:
        return len(self.destroy) + len(self.detain)

    def merge(self, other: "ReclamationPlan") -> "ReclamationPlan":
        seen = {vm.vm_id for vm in self.destroy} | {vm.vm_id for vm in self.detain}
        merged = ReclamationPlan(list(self.destroy), list(self.detain))
        for vm in other.destroy:
            if vm.vm_id not in seen:
                merged.destroy.append(vm)
                seen.add(vm.vm_id)
        for vm in other.detain:
            if vm.vm_id not in seen:
                merged.detain.append(vm)
                seen.add(vm.vm_id)
        return merged


class ReclamationPolicy:
    """Interface: inspect a host, produce a :class:`ReclamationPlan`."""

    def plan(self, host: PhysicalHost, now: float) -> ReclamationPlan:
        raise NotImplementedError


def _split_detainees(
    victims: List[VirtualMachine],
    detain_infected: bool,
    detained_so_far: int,
    max_detained: int,
) -> ReclamationPlan:
    """Partition victims into detain (infected, capacity permitting) and
    destroy lists."""
    plan = ReclamationPlan()
    budget = max(0, max_detained - detained_so_far) if detain_infected else 0
    for vm in victims:
        guest = vm.guest
        infected = guest is not None and getattr(guest, "infected", False)
        if infected and budget > 0:
            plan.detain.append(vm)
            budget -= 1
        else:
            plan.destroy.append(vm)
    return plan


class IdleTimeoutPolicy(ReclamationPolicy):
    """Reclaim running VMs idle for at least ``timeout`` seconds."""

    def __init__(
        self,
        timeout: float,
        detain_infected: bool = False,
        max_detained: int = 32,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive: {timeout!r}")
        self.timeout = timeout
        self.detain_infected = detain_infected
        self.max_detained = max_detained
        self.detained_total = 0

    def plan(self, host: PhysicalHost, now: float) -> ReclamationPlan:
        victims = host.idle_vms(now, self.timeout)
        plan = _split_detainees(
            victims, self.detain_infected, self.detained_total, self.max_detained
        )
        self.detained_total += len(plan.detain)
        if plan.total and _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                now, "reclamation", "plan",
                policy="idle_timeout", host=host.name,
                destroy=len(plan.destroy), detain=len(plan.detain),
            )
        return plan


class MemoryPressurePolicy(ReclamationPolicy):
    """Evict least-recently-active VMs when memory crosses a threshold.

    Eviction continues (in LRU order) until projected utilisation falls
    back below the threshold, counting each VM's *reclaimable* frames —
    the frames it holds exclusively — as the memory recovered. Under
    content sharing, raw ``private_pages`` over-counts what an eviction
    returns (shared frames survive the victim), which would end the
    sweep early and leave the host still over threshold. The projection
    is conservative the other way: a frame shared only among victims is
    credited to none of them, so the plan may slightly over-evict rather
    than under-evict. Infected VMs are detained under the same rules as
    the idle policy.

    Victim selection is a partial sort: candidates are heapified (O(n))
    and popped (O(log n) each) only until the projection clears the
    threshold, instead of fully sorting every running VM each sweep.
    """

    def __init__(
        self,
        threshold: float,
        detain_infected: bool = False,
        max_detained: int = 32,
    ) -> None:
        if not (0.0 < threshold <= 1.0):
            raise ValueError(f"threshold must be in (0, 1]: {threshold!r}")
        self.threshold = threshold
        self.detain_infected = detain_infected
        self.max_detained = max_detained
        self.detained_total = 0
        self.pressure_events = 0

    def plan(self, host: PhysicalHost, now: float) -> ReclamationPlan:
        memory = host.memory
        limit = int(self.threshold * memory.capacity_frames)
        if memory.allocated_frames <= limit:
            return ReclamationPlan()
        self.pressure_events += 1
        candidates = [
            (vm.last_activity, vm.vm_id, vm)
            for vm in host.vms()
            if vm.state is VMState.RUNNING and not vm.parked
        ]
        heapq.heapify(candidates)
        victims: List[VirtualMachine] = []
        projected = memory.allocated_frames
        while candidates and projected > limit:
            _, _, vm = heapq.heappop(candidates)
            victims.append(vm)
            projected -= vm.reclaimable_frames
        plan = _split_detainees(
            victims, self.detain_infected, self.detained_total, self.max_detained
        )
        self.detained_total += len(plan.detain)
        if plan.total and _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                now, "reclamation", "plan",
                policy="memory_pressure", host=host.name,
                destroy=len(plan.destroy), detain=len(plan.detain),
            )
        return plan


class CompositeReclamation(ReclamationPolicy):
    """Run several policies and merge their plans (idle + pressure)."""

    def __init__(self, policies: List[ReclamationPolicy]) -> None:
        if not policies:
            raise ValueError("composite reclamation needs at least one policy")
        self.policies = policies

    def plan(self, host: PhysicalHost, now: float) -> ReclamationPlan:
        merged = ReclamationPlan()
        for policy in self.policies:
            merged = merged.merge(policy.plan(host, now))
        return merged


__all__.append("CompositeReclamation")
