"""VM placement: which server receives the next clone?

The gateway's resource-management role includes steering clones across
the cluster. Three policies, which the A-PLACE ablation compares:

* :class:`LeastLoadedPlacement` — lowest memory utilisation first.
  Balances load, maximising the burst headroom on every host (the
  default, and what the paper's gateway effectively does by tracking
  per-server load).
* :class:`RoundRobinPlacement` — rotate over eligible hosts. Cheap and
  stateless-ish; balances counts rather than bytes.
* :class:`PackingPlacement` — fill the first eligible host before
  touching the next. Concentrates VMs (attractive for powering down
  idle servers) at the price of hitting per-host limits sooner.

A policy sees only hosts that carry the required personality's snapshot
and have both a VM slot and at least one free frame.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.vmm.host import PhysicalHost

__all__ = [
    "PlacementPolicy",
    "LeastLoadedPlacement",
    "RoundRobinPlacement",
    "PackingPlacement",
    "make_placement",
]


def _eligible(hosts: Sequence[PhysicalHost], personality: str) -> List[PhysicalHost]:
    return [
        host
        for host in hosts
        if personality in host.snapshots
        and host.has_vm_slot()
        and host.memory.can_fit(1)
    ]


class PlacementPolicy:
    """Interface: pick a host for the next clone (None = no capacity)."""

    name = "abstract"

    def select(
        self, hosts: Sequence[PhysicalHost], personality: str
    ) -> Optional[PhysicalHost]:
        raise NotImplementedError


class LeastLoadedPlacement(PlacementPolicy):
    """Lowest memory utilisation wins, then fewest live VMs.

    The VM-count tiebreak matters: clones charge no memory until their
    guests run, so during a burst memory utilisation alone cannot see
    the in-flight clones already steered at a host.
    """

    name = "least-loaded"

    def select(self, hosts, personality):
        eligible = _eligible(hosts, personality)
        if not eligible:
            return None
        return min(
            eligible,
            key=lambda h: (h.memory_utilization, h.live_vms, h.host_id),
        )


class RoundRobinPlacement(PlacementPolicy):
    """Rotate across eligible hosts in order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, hosts, personality):
        eligible = _eligible(hosts, personality)
        if not eligible:
            return None
        choice = eligible[self._next % len(eligible)]
        self._next += 1
        return choice


class PackingPlacement(PlacementPolicy):
    """First eligible host in order: fill, then spill."""

    name = "pack"

    def select(self, hosts, personality):
        eligible = _eligible(hosts, personality)
        return eligible[0] if eligible else None


def make_placement(name: str) -> PlacementPolicy:
    """Config-string → policy object."""
    if name == "least-loaded":
        return LeastLoadedPlacement()
    if name == "round-robin":
        return RoundRobinPlacement()
    if name == "pack":
        return PackingPlacement()
    raise ValueError(f"unknown placement policy: {name!r}")
