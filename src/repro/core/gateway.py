"""The gateway router: the honeyfarm's single point of policy.

Every packet entering or leaving the farm crosses the gateway, which is
what makes the paper's architecture work: physical servers hold only
mechanisms (VMs), while the gateway holds all four roles:

1. **Tunnel termination** — decapsulate GRE traffic from border routers,
   re-encapsulate honeypot replies so they exit through the network that
   owns the impersonated address.
2. **Dispatch** — map each destination address to a live VM; if none
   exists, ask the backend to flash-clone one and queue packets for the
   address until the clone is running (cloning takes ~0.5 s, and the
   first packet must not be lost — it is usually the exploit).
3. **Containment** — classify each honeypot-emitted packet as a *reply*
   on an externally-initiated flow (always allowed: answering scanners is
   the farm's purpose) or *honeypot-initiated* (subject to the configured
   :class:`~repro.core.containment.ContainmentPolicy`), and carry out the
   verdict, including reflection NAT bookkeeping.
4. **Resource directives** — notify interested parties as VMs come and
   go, and keep the flow table consistent with reclamation.

The backend (normally :class:`~repro.core.honeyfarm.Honeyfarm`) provides
``spawn_vm(ip)`` and ``deliver(vm, packet)``; the gateway provides
``vm_ready(vm)`` / ``vm_retired(vm)`` in return.

The per-packet decision path is deliberately allocation-free and O(1)-ish
(O(log prefixes) for membership): counters are pre-resolved handles,
inventory and tunnel ownership are binary searches over sorted ranges,
and the flow table maintains its own indexes — see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol, Tuple

from repro.core.containment import (
    ContainmentAction,
    ContainmentPolicy,
    OutboundRateLimiter,
    ReflectionNat,
)
from repro.net.addr import AddressSpaceInventory, IPAddress, Prefix
from repro.net.flow import FlowRecord, FlowTable
from repro.net.gre import GrePacket, GreTunnel, decapsulate, encapsulate
from repro.net.link import Link
from repro.net.packet import Packet
from repro.obs import recorder as _obs
from repro.services.dns import DnsServer
from repro.sim.engine import Event, Simulator
from repro.sim.metrics import MetricRegistry
from repro.vmm.vm import VirtualMachine, VMState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.fidelity.ladder import FidelityLadder

__all__ = ["Gateway", "HoneyfarmBackend"]


class HoneyfarmBackend(Protocol):
    """What the gateway needs from the orchestrator behind it."""

    def spawn_vm(self, ip: IPAddress) -> Optional[VirtualMachine]:
        """Begin flash-cloning a VM for ``ip``; returns the VM (in
        CLONING state) or None if the farm is out of capacity."""

    def deliver(self, vm: VirtualMachine, packet: Packet) -> None:
        """Hand an inbound packet to a running VM's guest."""

    def deliver_replay(self, vm: VirtualMachine, packet: Packet) -> None:
        """Hand a handoff-replay packet to a running VM's guest with
        replies suppressed — the emulator tier already answered it."""


class _EmulatedSource:
    """Containment-policy stand-in for the emulator tier, where no VM
    exists. Policies consult only ``ip`` (reflection's never-self check)
    and ``vm_id`` (the rate limiter's bucket key); one bucket per
    emulated address matches the one-VM-per-address clone world."""

    __slots__ = ("ip", "vm_id")

    def __init__(self, ip: IPAddress) -> None:
        self.ip = ip
        self.vm_id = f"emulated:{ip}"


class Gateway:
    """See module docstring."""

    def __init__(
        self,
        sim: Simulator,
        inventory: AddressSpaceInventory,
        policy: ContainmentPolicy,
        backend: HoneyfarmBackend,
        flow_idle_timeout: float = 60.0,
        dns_server: Optional[DnsServer] = None,
        metrics: Optional[MetricRegistry] = None,
        external_sink: Optional[Callable[[Packet], None]] = None,
        max_pending_per_ip: int = 256,
        packet_tap: Optional[Callable[[Packet], None]] = None,
        pending_timeout: Optional[float] = None,
    ) -> None:
        if pending_timeout is not None and pending_timeout <= 0:
            raise ValueError(f"pending_timeout must be positive or None: {pending_timeout!r}")
        self.sim = sim
        self.inventory = inventory
        self.policy = policy
        self.backend = backend
        self.flows = FlowTable(idle_timeout=flow_idle_timeout)
        self.dns_server = dns_server
        self.metrics = metrics or MetricRegistry()
        self.external_sink = external_sink
        self.max_pending_per_ip = max_pending_per_ip
        self.packet_tap = packet_tap
        self.pending_timeout = pending_timeout
        # Fidelity ladder (attached by the farm when the ladder config
        # block is enabled): consulted for cold addresses before a clone
        # is dispatched, and handed the replay when the clone is ready.
        self.ladder: Optional["FidelityLadder"] = None
        self.nat = ReflectionNat()
        self.vm_map: Dict[IPAddress, VirtualMachine] = {}
        # Packets held while a clone is in flight, each with the flow
        # record that already accounted it (observed exactly once).
        self._pending: Dict[IPAddress, List[Tuple[Packet, FlowRecord]]] = {}
        # Watchdog timers over pending queues (armed only when
        # ``pending_timeout`` is configured, so the default path never
        # schedules an extra event).
        self._pending_timers: Dict[IPAddress, Event] = {}
        self._tunnels: Dict[int, GreTunnel] = {}
        self._tunnel_links: Dict[int, Link] = {}
        self._tunnel_by_prefix: Dict[Prefix, int] = {}
        # Sorted, non-overlapping address ranges for O(log n) reply-tunnel
        # ownership on the egress path.
        self._tunnel_starts: List[int] = []
        self._tunnel_ends: List[int] = []
        self._tunnel_range_keys: List[int] = []

        # Counter handles, resolved once: per-packet increments are a
        # single attribute store, never a string-keyed registry lookup.
        handle = self.metrics.handle
        self._c_tunnel_in = handle("gateway.tunnel_in")
        self._c_packets_in = handle("gateway.packets_in")
        self._c_ttl_expired = handle("gateway.ttl_expired")
        self._c_stray = handle("gateway.stray")
        self._c_no_capacity = handle("gateway.no_capacity_drop")
        self._c_clones_requested = handle("gateway.clones_requested")
        self._c_queued_during_clone = handle("gateway.queued_during_clone")
        self._c_pending_overflow = handle("gateway.pending_overflow")
        self._c_vm_not_running = handle("gateway.dropped_vm_not_running")
        self._c_delivered = handle("gateway.delivered")
        self._c_vm_packets_out = handle("gateway.vm_packets_out")
        self._c_out_allowed = handle("gateway.outbound.allowed")
        self._c_out_dropped = handle("gateway.outbound.dropped")
        self._c_out_dns_redirected = handle("gateway.outbound.dns_redirected")
        self._c_out_reflected = handle("gateway.outbound.reflected")
        self._c_out_nat_rewritten = handle("gateway.outbound.nat_rewritten")
        self._c_reply_allowed = handle("gateway.outbound.reply_allowed")
        self._c_initiated_external = handle("gateway.initiated_external_out")
        self._c_reply_external = handle("gateway.reply_external_out")
        self._c_external_out = handle("gateway.external_out")
        self._c_dns_malformed = handle("gateway.dns_malformed")
        self._c_dns_answered = handle("gateway.dns_answered")
        # Fidelity-ladder buckets: packets fully served by the emulator
        # tier (a first-class ledger bucket alongside delivered/refused/
        # dropped) and the replies it sent on their behalf.
        self._c_emulated = handle("gateway.emulated")
        self._c_emulated_replies = handle("gateway.ladder_replies_out")
        self._c_emulated_contained = handle("gateway.ladder_replies_contained")
        # Pending-queue drops, keyed by cause, so packet totals reconcile
        # exactly even through host crashes and clone failures:
        #   host_down    — the VM's host crashed mid-clone
        #   vm_retired   — the VM was reclaimed/detained with packets held
        #   timeout      — the watchdog gave up on a stuck clone
        #   clone_failed — the clone pipeline itself failed (fault injection)
        #   vm_died      — the VM stopped RUNNING mid-flush
        self._c_pending_dropped = {
            cause: handle(f"gateway.pending_dropped_{cause}")
            for cause in ("host_down", "vm_retired", "timeout", "clone_failed", "vm_died")
        }

    # ------------------------------------------------------------------ #
    # Tunnel configuration
    # ------------------------------------------------------------------ #

    def register_tunnel(
        self,
        tunnel: GreTunnel,
        prefixes: List[Prefix],
        return_link: Optional[Link] = None,
    ) -> None:
        """Associate a tunnel with the prefixes whose replies return
        through it; ``return_link`` carries encapsulated replies back to
        the border router (optional in pure-simulation setups).

        Tunnel prefixes must be in the farm inventory and must not overlap
        a prefix already bound to any tunnel — reply ownership has to be
        unambiguous for the egress path's range search to be exact.
        """
        if tunnel.key in self._tunnels:
            raise ValueError(f"tunnel key {tunnel.key} already registered")
        self._tunnels[tunnel.key] = tunnel
        if return_link is not None:
            self._tunnel_links[tunnel.key] = return_link
        for prefix in prefixes:
            if self.inventory.lookup(prefix.network) is None:
                raise ValueError(f"tunnel prefix {prefix} is not in the farm inventory")
            start = prefix.network.value
            end = start + prefix.size - 1
            i = bisect.bisect_left(self._tunnel_starts, start)
            if i > 0 and self._tunnel_ends[i - 1] >= start:
                raise ValueError(
                    f"tunnel prefix {prefix} overlaps an already-registered"
                    f" tunnel prefix"
                )
            if i < len(self._tunnel_starts) and self._tunnel_starts[i] <= end:
                raise ValueError(
                    f"tunnel prefix {prefix} overlaps an already-registered"
                    f" tunnel prefix"
                )
            self._tunnel_starts.insert(i, start)
            self._tunnel_ends.insert(i, end)
            self._tunnel_range_keys.insert(i, tunnel.key)
            self._tunnel_by_prefix[prefix] = tunnel.key

    def _tunnel_key_for(self, addr: IPAddress) -> Optional[int]:
        i = bisect.bisect_right(self._tunnel_starts, addr.value) - 1
        if i >= 0 and addr.value <= self._tunnel_ends[i]:
            return self._tunnel_range_keys[i]
        return None

    # ------------------------------------------------------------------ #
    # Inbound path (Internet -> farm, and reflected internal traffic)
    # ------------------------------------------------------------------ #

    def receive_tunnel(self, gre: GrePacket) -> None:
        """Entry point for GRE traffic from border routers."""
        self._c_tunnel_in.increment()
        self.process_inbound(decapsulate(gre))

    def process_inbound(self, packet: Packet) -> None:
        """Dispatch one packet addressed into the farm's dark space."""
        self._c_packets_in.increment()
        if self.packet_tap is not None:
            self.packet_tap(packet)
        if packet.ttl <= 0:
            self._c_ttl_expired.increment()
            if _obs.ACTIVE is not None:
                self._trace_dispatch("ttl_expired", packet)
            return
        if not self.inventory.covers(packet.dst):
            self._c_stray.increment()
            if _obs.ACTIVE is not None:
                self._trace_dispatch("stray", packet)
            return
        record, created = self.flows.observe(packet, self.sim.now)

        vm = self.vm_map.get(packet.dst)
        if vm is None and self.ladder is not None:
            # Cold address with the fidelity ladder attached: let the
            # emulator tier absorb the packet unless a trigger promotes
            # the flow — in which case fall through, and this packet
            # (never emulated) takes the normal clone-and-queue path.
            verdict = self.ladder.consider(packet, self.sim.now)
            if not verdict.promoted:
                self._c_emulated.increment()
                if _obs.ACTIVE is not None:
                    self._trace_dispatch("emulated", packet)
                for reply in verdict.replies:
                    self._emit_emulated_reply(reply)
                return
        if vm is None:
            vm = self.backend.spawn_vm(packet.dst)
            if vm is None:
                self._c_no_capacity.increment()
                if _obs.ACTIVE is not None:
                    self._trace_dispatch("no_capacity", packet)
                return
            self._c_clones_requested.increment()
            self.vm_map[packet.dst] = vm
            if vm.state is not VMState.RUNNING:
                # Normal case: the clone pipeline is in flight; hold the
                # packet until vm_ready flushes it.
                self._pending[packet.dst] = [(packet, record)]
                self._c_queued_during_clone.increment()
                if self.pending_timeout is not None:
                    self._arm_pending_timer(packet.dst, vm)
                if _obs.ACTIVE is not None:
                    self._trace_dispatch("clone_requested", packet, vm_id=vm.vm_id)
                return
        if vm.state is VMState.CLONING:
            queue = self._pending.get(packet.dst)
            if queue is None:
                queue = self._pending[packet.dst] = []
                if self.pending_timeout is not None:
                    self._arm_pending_timer(packet.dst, vm)
            if len(queue) >= self.max_pending_per_ip:
                self._c_pending_overflow.increment()
                # The observe() above already accounted this packet on
                # its flow record, but the packet never reaches a VM:
                # roll the accounting back, and drop the record entirely
                # if this packet was the only thing it ever carried.
                record.packets -= 1
                record.bytes -= packet.size
                if created and record.packets == 0:
                    self.flows.discard(record)
                if _obs.ACTIVE is not None:
                    self._trace_dispatch("overflow", packet, vm_id=vm.vm_id)
                return
            queue.append((packet, record))
            self._c_queued_during_clone.increment()
            if _obs.ACTIVE is not None:
                self._trace_dispatch("queued", packet, vm_id=vm.vm_id)
            return
        if vm.state is not VMState.RUNNING:
            # Momentary window between reclamation and map cleanup.
            self._c_vm_not_running.increment()
            if _obs.ACTIVE is not None:
                self._trace_dispatch("vm_not_running", packet, vm_id=vm.vm_id)
            return
        record.vm_id = vm.vm_id
        self._c_delivered.increment()
        if _obs.ACTIVE is not None:
            self._trace_dispatch("delivered", packet, vm_id=vm.vm_id)
        self.backend.deliver(vm, packet)

    def _trace_dispatch(self, verdict: str, packet: Packet, **extra) -> None:
        """Emit one dispatch-verdict event (caller guards on ACTIVE)."""
        _obs.ACTIVE.emit(
            self.sim.now,
            "gateway",
            "dispatch",
            verdict=verdict,
            src=str(packet.src),
            dst=str(packet.dst),
            **extra,
        )

    # ------------------------------------------------------------------ #
    # Pending-queue watchdog (armed only when pending_timeout is set)
    # ------------------------------------------------------------------ #

    def _arm_pending_timer(self, ip: IPAddress, vm: VirtualMachine) -> None:
        self._pending_timers[ip] = self.sim.schedule(
            self.pending_timeout, self._pending_timed_out, ip, vm.vm_id
        )

    def _cancel_pending_timer(self, ip: IPAddress) -> None:
        timer = self._pending_timers.pop(ip, None)
        if timer is not None:
            timer.cancel()

    def _pending_timed_out(self, ip: IPAddress, vm_id: int) -> None:
        """The clone a queue was waiting on never delivered; give up.

        Drops the held packets (accounted under the ``timeout`` cause) and
        — the failover half — unbinds the address from the stuck VM so the
        next packet for it dispatches a fresh clone instead of queueing
        behind a corpse forever.
        """
        self._pending_timers.pop(ip, None)
        queued = self._pending.pop(ip, None)
        if queued:
            self._c_pending_dropped["timeout"].increment(len(queued))
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.emit(
                    self.sim.now, "gateway", "pending_dropped",
                    cause="timeout", ip=str(ip), count=len(queued),
                )
        current = self.vm_map.get(ip)
        if (
            current is not None
            and current.vm_id == vm_id
            and current.state is not VMState.RUNNING
        ):
            del self.vm_map[ip]

    def _drop_pending(self, ip: IPAddress, cause: str) -> None:
        self._cancel_pending_timer(ip)
        queued = self._pending.pop(ip, None)
        if queued:
            self._c_pending_dropped[cause].increment(len(queued))
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.emit(
                    self.sim.now, "gateway", "pending_dropped",
                    cause=cause, ip=str(ip), count=len(queued),
                )

    # ------------------------------------------------------------------ #
    # VM lifecycle notifications from the backend
    # ------------------------------------------------------------------ #

    def vm_ready(self, vm: VirtualMachine) -> None:
        """Flush packets queued while ``vm`` was cloning.

        Each queued packet was already observed by the flow table when it
        arrived; the flush reuses that record rather than observing again
        (which would double-count the packet's flow statistics).
        """
        self._cancel_pending_timer(vm.ip)
        if self.ladder is not None:
            # Replay the emulated prefix of the conversation first, so
            # the queued live packets land on a guest whose state already
            # reflects everything the attacker has seen.
            self._replay_handoff(vm)
        queued = self._pending.pop(vm.ip, [])
        recorder = _obs.ACTIVE
        for index, (packet, record) in enumerate(queued):
            if vm.state is not VMState.RUNNING:
                # The VM died mid-flush: account the unflushed remainder
                # so packet totals still reconcile.
                self._c_pending_dropped["vm_died"].increment(len(queued) - index)
                if recorder is not None:
                    recorder.emit(
                        self.sim.now, "gateway", "pending_dropped",
                        cause="vm_died", ip=str(vm.ip), count=len(queued) - index,
                    )
                break
            record.vm_id = vm.vm_id
            self._c_delivered.increment()
            if recorder is not None:
                recorder.emit(
                    self.sim.now, "gateway", "dispatch",
                    verdict="flushed", src=str(packet.src), dst=str(packet.dst),
                    vm_id=vm.vm_id,
                )
            self.backend.deliver(vm, packet)

    def _replay_handoff(self, vm: VirtualMachine) -> None:
        """Replay a promotion's buffered packets into the fresh VM.

        Replies are suppressed (``deliver_replay``): the emulator already
        answered these packets byte-identically, so re-emitting would
        duplicate what the attacker saw. The replay is accounted only
        under ``ladder.handoff_packets_replayed`` — each packet was
        already counted once, under ``gateway.emulated``, when absorbed.
        """
        handoff = self.ladder.take_handoff(vm.ip)
        if handoff is None:
            return
        replayed = 0
        for packet in handoff.buffered:
            if vm.state is not VMState.RUNNING:
                break
            self.backend.deliver_replay(vm, packet)
            replayed += 1
        self.ladder.handoff_complete(handoff, replayed, vm.vm_id, self.sim.now)

    def vm_retired(self, vm: VirtualMachine, pending_cause: str = "vm_retired") -> None:
        """Drop all state bound to a reclaimed/detained/crashed VM.

        ``pending_cause`` labels any held packets this drops (the farm
        passes ``host_down`` when the VM's host crashed, ``clone_failed``
        when the clone pipeline failed).
        """
        current = self.vm_map.get(vm.ip)
        if current is not None and current.vm_id == vm.vm_id:
            del self.vm_map[vm.ip]
        self._drop_pending(vm.ip, pending_cause)
        self.flows.drop_vm(vm.vm_id)
        self.nat.forget_vm(vm.ip)
        if self.ladder is not None:
            self.ladder.vm_retired(vm.ip, pending_cause)

    # ------------------------------------------------------------------ #
    # Outbound path (honeypot -> anywhere)
    # ------------------------------------------------------------------ #

    def emit_from_vm(self, vm: VirtualMachine, packet: Packet) -> None:
        """Handle one packet emitted by a honeypot VM."""
        self._c_vm_packets_out.increment()

        # Internal resolver traffic is farm infrastructure, not egress.
        if self.dns_server is not None and packet.dst == self.dns_server.address:
            self._deliver_dns(vm, packet, original_resolver=None)
            return

        # Reverse reflection NAT: this VM was previously reflected onto an
        # internal stand-in for packet.dst, so the whole conversation must
        # keep routing to the stand-in. Without this, the stand-in's
        # NAT-translated reply leaves a flow whose initiator looks
        # external, and the VM's next packet (e.g. the exploit payload
        # after the SYN handshake) would sail out the reply path.
        rewritten = self.nat.translate_outbound_destination(packet)
        if rewritten is not None:
            self._c_out_nat_rewritten.increment()
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.emit(
                    self.sim.now, "gateway", "containment",
                    action="nat-rewrite", src=str(packet.src),
                    dst=str(packet.dst), vm_id=vm.vm_id,
                )
            self.process_inbound(rewritten.decremented_ttl())
            return

        record, created = self.flows.observe(packet, self.sim.now)
        if not created and record.initiator != vm.ip:
            self._emit_reply(vm, packet)
            return

        # Honeypot-initiated traffic: the containment policy decides.
        verdict = self.policy.decide(vm, packet, self.sim.now)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "gateway", "containment",
                action=verdict.action.value,
                src=str(packet.src), dst=str(packet.dst), vm_id=vm.vm_id,
            )
        if verdict.action is ContainmentAction.ALLOW:
            self._c_out_allowed.increment()
            if self.inventory.covers(packet.dst):
                self.process_inbound(packet.decremented_ttl())
            else:
                self._c_initiated_external.increment()
                self._send_external(packet)
        elif verdict.action is ContainmentAction.DROP:
            self._c_out_dropped.increment()
        elif verdict.action is ContainmentAction.REDIRECT_DNS:
            self._c_out_dns_redirected.increment()
            self._deliver_dns(vm, packet, original_resolver=packet.dst)
        elif verdict.action is ContainmentAction.REFLECT:
            assert verdict.new_destination is not None
            self._c_out_reflected.increment()
            self.nat.record(vm.ip, verdict.new_destination, packet.dst)
            reflected = packet.with_destination(verdict.new_destination)
            self.process_inbound(reflected.decremented_ttl())
        else:  # pragma: no cover - exhaustive over the enum
            raise AssertionError(f"unhandled containment action: {verdict.action!r}")

    def _emit_reply(self, vm: VirtualMachine, packet: Packet) -> None:
        """Reply on an externally- or peer-initiated flow: always allowed,
        routed externally or internally by destination."""
        self._c_reply_allowed.increment()
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "gateway", "containment",
                action="reply", src=str(packet.src), dst=str(packet.dst),
                vm_id=vm.vm_id,
            )
        if self.inventory.covers(packet.dst):
            translated = self.nat.translate_reply_source(packet)
            self.process_inbound(translated.decremented_ttl())
        else:
            self._c_reply_external.increment()
            self._send_external(packet)

    def _emit_emulated_reply(self, packet: Packet) -> None:
        """Route one emulator-tier reply exactly as a VM reply would be.

        Classification mirrors :meth:`emit_from_vm` so the emulator tier
        is policy-invisible: a reply riding the externally-initiated flow
        is always allowed (NAT-translated back toward internal stand-ins,
        shipped through the owning tunnel otherwise), while a
        *flow-creating* emission — the ICMP unreachable answering a
        closed-port UDP probe opens a fresh ICMP flow — faces the same
        containment verdict the guest's identical packet would, else the
        ladder world leaks packets that clone-always contains. Counted
        under the ladder's own buckets so tier accounting stays distinct
        from ``gateway.outbound.reply_allowed``."""
        self._c_emulated_replies.increment()
        record, created = self.flows.observe(packet, self.sim.now)
        if created or record.initiator == packet.src:
            verdict = self.policy.decide(
                _EmulatedSource(packet.src), packet, self.sim.now
            )
            if verdict.action is ContainmentAction.REFLECT:
                assert verdict.new_destination is not None
                self._c_out_reflected.increment()
                self.nat.record(packet.src, verdict.new_destination, packet.dst)
                reflected = packet.with_destination(verdict.new_destination)
                self.process_inbound(reflected.decremented_ttl())
                return
            if verdict.action is not ContainmentAction.ALLOW:
                # DROP, or DNS redirection the emulator never initiates.
                self._c_emulated_contained.increment()
                return
        if self.inventory.covers(packet.dst):
            translated = self.nat.translate_reply_source(packet)
            self.process_inbound(translated.decremented_ttl())
        else:
            self._c_reply_external.increment()
            self._send_external(packet)

    def _send_external(self, packet: Packet) -> None:
        """Ship a permitted packet to the Internet through the tunnel that
        owns its (impersonated) source address."""
        self._c_external_out.increment()
        key = self._tunnel_key_for(packet.src)
        link = self._tunnel_links.get(key) if key is not None else None
        if key is not None and link is not None:
            gre = encapsulate(self._tunnels[key], packet)
            link.deliver(gre, gre.size)
        elif self.external_sink is not None:
            self.external_sink(packet)

    def _deliver_dns(
        self,
        vm: VirtualMachine,
        packet: Packet,
        original_resolver: Optional[IPAddress],
    ) -> None:
        """Complete a DNS transaction against the internal resolver.

        When the query targeted an external resolver and was redirected,
        the response's source is rewritten back to that resolver so the
        guest cannot tell the difference.
        """
        if self.dns_server is None:
            self._c_out_dropped.increment()
            return
        query = (
            packet
            if original_resolver is None
            else packet.with_destination(self.dns_server.address)
        )
        response = self.dns_server.handle_query(query)
        if response is None:
            self._c_dns_malformed.increment()
            return
        if original_resolver is not None:
            response = Packet(
                src=original_resolver,
                dst=response.dst,
                protocol=response.protocol,
                src_port=response.src_port,
                dst_port=response.dst_port,
                payload=response.payload,
                size=response.size,
            )
        self._c_dns_answered.increment()
        # Small, fixed resolver turnaround before the answer reaches the VM.
        self.sim.schedule(0.001, self._deliver_dns_response, vm, response)

    def _deliver_dns_response(self, vm: VirtualMachine, response: Packet) -> None:
        if vm.state is VMState.RUNNING:
            self.backend.deliver(vm, response)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def sweep_flows(self) -> int:
        """Expire idle flows; returns how many were dropped."""
        if self.ladder is not None:
            self.ladder.sweep(self.sim.now)
        return len(self.flows.expire_idle(self.sim.now))

    def tunnel_links(self) -> Dict[int, Link]:
        """The registered tunnel return links, keyed by tunnel key (the
        chaos subsystem impairs these by name)."""
        return dict(self._tunnel_links)

    @property
    def live_vm_count(self) -> int:
        return len(self.vm_map)

    @property
    def pending_packet_count(self) -> int:
        """Packets currently held in pending queues (reconciliation)."""
        return sum(len(queue) for queue in self._pending.values())

    def pending_dropped_total(self) -> int:
        """Sum of pending-queue drops across every cause."""
        return sum(c.value for c in self._c_pending_dropped.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Gateway vms={len(self.vm_map)} flows={len(self.flows)}"
            f" policy={self.policy.name}>"
        )
