"""The gateway router: the honeyfarm's single point of policy.

Every packet entering or leaving the farm crosses the gateway, which is
what makes the paper's architecture work: physical servers hold only
mechanisms (VMs), while the gateway holds all four roles:

1. **Tunnel termination** — decapsulate GRE traffic from border routers,
   re-encapsulate honeypot replies so they exit through the network that
   owns the impersonated address.
2. **Dispatch** — map each destination address to a live VM; if none
   exists, ask the backend to flash-clone one and queue packets for the
   address until the clone is running (cloning takes ~0.5 s, and the
   first packet must not be lost — it is usually the exploit).
3. **Containment** — classify each honeypot-emitted packet as a *reply*
   on an externally-initiated flow (always allowed: answering scanners is
   the farm's purpose) or *honeypot-initiated* (subject to the configured
   :class:`~repro.core.containment.ContainmentPolicy`), and carry out the
   verdict, including reflection NAT bookkeeping.
4. **Resource directives** — notify interested parties as VMs come and
   go, and keep the flow table consistent with reclamation.

The backend (normally :class:`~repro.core.honeyfarm.Honeyfarm`) provides
``spawn_vm(ip)`` and ``deliver(vm, packet)``; the gateway provides
``vm_ready(vm)`` / ``vm_retired(vm)`` in return.

The per-packet decision path is deliberately allocation-free and O(1)-ish
(O(log prefixes) for membership): counters are pre-resolved handles,
inventory and tunnel ownership are binary searches over sorted ranges,
and the flow table maintains its own indexes — see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol, Tuple

from repro.core.containment import (
    ContainmentAction,
    ContainmentPolicy,
    DropAllPolicy,
    OutboundRateLimiter,
    ReflectionNat,
)
from repro.net.addr import AddressSpaceInventory, IPAddress, Prefix
from repro.net.flow import FlowKey, FlowRecord, FlowTable
from repro.net.gre import GrePacket, GreTunnel, decapsulate, encapsulate
from repro.net.link import Link
from repro.net.packet import PROTO_ICMP, Packet
from repro.obs import recorder as _obs
from repro.services.dns import DnsServer
from repro.sim.engine import Event, Simulator
from repro.sim.metrics import MetricRegistry
from repro.vmm.vm import VirtualMachine, VMState

try:  # numpy is optional: it only accelerates the span lane's aggregation
    import numpy as _np
except ImportError:  # pragma: no cover - per-packet span loop covers this
    _np = None

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.fidelity.ladder import FidelityLadder
    from repro.sim.batch import PacketColumns

__all__ = ["Gateway", "HoneyfarmBackend"]


def _parse_addr(text: str, _cls=IPAddress, _new=object.__new__, _set=object.__setattr__) -> IPAddress:
    """Strict dotted-quad parse with :meth:`IPAddress.parse`'s exact
    accept/reject set, unrolled for the span lane's once-per-address cost
    (``parse``'s generic loop is ~2x slower and runs ~10^5 times per
    large replay)."""
    a, b, c, d = text.split(".")
    if a.isdigit() and b.isdigit() and c.isdigit() and d.isdigit():
        a = int(a)
        b = int(b)
        c = int(c)
        d = int(d)
        if a < 256 and b < 256 and c < 256 and d < 256:
            addr = _new(_cls)
            _set(addr, "value", a << 24 | b << 16 | c << 8 | d)
            return addr
    raise ValueError(f"malformed IPv4 address: {text!r}")


class HoneyfarmBackend(Protocol):
    """What the gateway needs from the orchestrator behind it."""

    def spawn_vm(self, ip: IPAddress) -> Optional[VirtualMachine]:
        """Begin flash-cloning a VM for ``ip``; returns the VM (in
        CLONING state) or None if the farm is out of capacity."""

    def deliver(self, vm: VirtualMachine, packet: Packet) -> None:
        """Hand an inbound packet to a running VM's guest."""

    def deliver_replay(self, vm: VirtualMachine, packet: Packet) -> None:
        """Hand a handoff-replay packet to a running VM's guest with
        replies suppressed — the emulator tier already answered it."""


class _EmulatedSource:
    """Containment-policy stand-in for the emulator tier, where no VM
    exists. Policies consult only ``ip`` (reflection's never-self check)
    and ``vm_id`` (the rate limiter's bucket key); one bucket per
    emulated address matches the one-VM-per-address clone world."""

    __slots__ = ("ip", "vm_id")

    def __init__(self, ip: IPAddress) -> None:
        self.ip = ip
        self.vm_id = f"emulated:{ip}"


class Gateway:
    """See module docstring."""

    def __init__(
        self,
        sim: Simulator,
        inventory: AddressSpaceInventory,
        policy: ContainmentPolicy,
        backend: HoneyfarmBackend,
        flow_idle_timeout: float = 60.0,
        dns_server: Optional[DnsServer] = None,
        metrics: Optional[MetricRegistry] = None,
        external_sink: Optional[Callable[[Packet], None]] = None,
        max_pending_per_ip: int = 256,
        packet_tap: Optional[Callable[[Packet], None]] = None,
        pending_timeout: Optional[float] = None,
    ) -> None:
        if pending_timeout is not None and pending_timeout <= 0:
            raise ValueError(f"pending_timeout must be positive or None: {pending_timeout!r}")
        self.sim = sim
        self.inventory = inventory
        self.policy = policy
        self.backend = backend
        self.flows = FlowTable(idle_timeout=flow_idle_timeout)
        self.dns_server = dns_server
        self.metrics = metrics or MetricRegistry()
        self.external_sink = external_sink
        self.max_pending_per_ip = max_pending_per_ip
        self.packet_tap = packet_tap
        self.pending_timeout = pending_timeout
        # Fidelity ladder (attached by the farm when the ladder config
        # block is enabled): consulted for cold addresses before a clone
        # is dispatched, and handed the replay when the clone is ready.
        self.ladder: Optional["FidelityLadder"] = None
        # Deception reply-timing jitter (attached by the farm when the
        # deception config block is enabled): maps a honeypot source
        # address to its fixed egress delay. None keeps the zero-cost
        # synchronous egress path.
        self.reply_jitter: Optional[Callable[[IPAddress], float]] = None
        # Inter-shard port (attached by a federation ShardRunner when the
        # farm is one shard of many): duck-typed against ``is_remote``
        # and ``send``. None on standalone farms — every check below is
        # one attribute load and an identity test.
        self.intershard = None
        # Last-seen infection generation per remote source address,
        # recorded from inter-shard message metadata so infections caused
        # by cross-shard scans chain the epidemic depth correctly.
        self.remote_generations: Dict[IPAddress, int] = {}
        self.nat = ReflectionNat()
        self.vm_map: Dict[IPAddress, VirtualMachine] = {}
        # Packets held while a clone is in flight, each with the flow
        # record that already accounted it (observed exactly once).
        self._pending: Dict[IPAddress, List[Tuple[Packet, FlowRecord]]] = {}
        # Watchdog timers over pending queues (armed only when
        # ``pending_timeout`` is configured, so the default path never
        # schedules an extra event).
        self._pending_timers: Dict[IPAddress, Event] = {}
        self._tunnels: Dict[int, GreTunnel] = {}
        self._tunnel_links: Dict[int, Link] = {}
        self._tunnel_by_prefix: Dict[Prefix, int] = {}
        # Sorted, non-overlapping address ranges for O(log n) reply-tunnel
        # ownership on the egress path.
        self._tunnel_starts: List[int] = []
        self._tunnel_ends: List[int] = []
        self._tunnel_range_keys: List[int] = []

        # Span-lane state (see dispatch_span): a persistent cache of
        # resolved fast-path flows keyed by arrival 5-tuple, invalidated
        # wholesale by bumping the epoch whenever anything outside the
        # span lane mutates farm state an entry may depend on.
        self._span_epoch = 0
        self._span_cache: Dict[Tuple[str, int, str, int, int], list] = {}
        self._span_classes: Dict[Tuple[int, int, int, int], Tuple] = {}
        self._span_sup: Optional[Tuple[float, float]] = None
        self._span_sup_for: Optional[object] = None
        self._span_catalog = None
        self._span_droppall = False
        self._span_personality = None
        self._span_session_cls = None
        self._span_state_cls = None
        # Vectorized-lane flow cache, keyed by the columns' integer
        # arrival ids instead of 5-tuples (see PacketColumns.key_ids):
        # a flat entry list plus numpy epoch/last-seen mirrors, rebuilt
        # when a different columns object shows up.
        self._span_cols = None
        self._span_kid_entries: Optional[list] = None
        self._span_kid_epoch = None
        self._span_kid_last = None
        self._span_kid_sid = None
        self._span_sessions: Optional[list] = None
        self._span_sess_gid: Optional[dict] = None

        # Counter handles, resolved once: per-packet increments are a
        # single attribute store, never a string-keyed registry lookup.
        handle = self.metrics.handle
        self._c_tunnel_in = handle("gateway.tunnel_in")
        self._c_packets_in = handle("gateway.packets_in")
        self._c_ttl_expired = handle("gateway.ttl_expired")
        self._c_stray = handle("gateway.stray")
        self._c_no_capacity = handle("gateway.no_capacity_drop")
        self._c_clones_requested = handle("gateway.clones_requested")
        self._c_queued_during_clone = handle("gateway.queued_during_clone")
        self._c_pending_overflow = handle("gateway.pending_overflow")
        self._c_vm_not_running = handle("gateway.dropped_vm_not_running")
        self._c_delivered = handle("gateway.delivered")
        self._c_vm_packets_out = handle("gateway.vm_packets_out")
        self._c_out_allowed = handle("gateway.outbound.allowed")
        self._c_out_dropped = handle("gateway.outbound.dropped")
        self._c_out_dns_redirected = handle("gateway.outbound.dns_redirected")
        self._c_out_reflected = handle("gateway.outbound.reflected")
        self._c_out_nat_rewritten = handle("gateway.outbound.nat_rewritten")
        self._c_reply_allowed = handle("gateway.outbound.reply_allowed")
        self._c_initiated_external = handle("gateway.initiated_external_out")
        self._c_reply_external = handle("gateway.reply_external_out")
        self._c_external_out = handle("gateway.external_out")
        # Cross-shard traffic through the federation's message layer:
        # counted on both sides of the boundary so the federation-level
        # conservation check (sum out == sum in + in flight) is exact.
        self._c_intershard_out = handle("gateway.intershard_out")
        self._c_intershard_in = handle("gateway.intershard_in")
        self._c_deception_delayed = handle("gateway.deception_delayed")
        self._c_dns_malformed = handle("gateway.dns_malformed")
        self._c_dns_answered = handle("gateway.dns_answered")
        # Fidelity-ladder buckets: packets fully served by the emulator
        # tier (a first-class ledger bucket alongside delivered/refused/
        # dropped) and the replies it sent on their behalf.
        self._c_emulated = handle("gateway.emulated")
        self._c_emulated_replies = handle("gateway.ladder_replies_out")
        self._c_emulated_contained = handle("gateway.ladder_replies_contained")
        # Pending-queue drops, keyed by cause, so packet totals reconcile
        # exactly even through host crashes and clone failures:
        #   host_down    — the VM's host crashed mid-clone
        #   vm_retired   — the VM was reclaimed/detained with packets held
        #   timeout      — the watchdog gave up on a stuck clone
        #   clone_failed — the clone pipeline itself failed (fault injection)
        #   vm_died      — the VM stopped RUNNING mid-flush
        self._c_pending_dropped = {
            cause: handle(f"gateway.pending_dropped_{cause}")
            for cause in ("host_down", "vm_retired", "timeout", "clone_failed", "vm_died")
        }

    # ------------------------------------------------------------------ #
    # Tunnel configuration
    # ------------------------------------------------------------------ #

    def register_tunnel(
        self,
        tunnel: GreTunnel,
        prefixes: List[Prefix],
        return_link: Optional[Link] = None,
    ) -> None:
        """Associate a tunnel with the prefixes whose replies return
        through it; ``return_link`` carries encapsulated replies back to
        the border router (optional in pure-simulation setups).

        Tunnel prefixes must be in the farm inventory and must not overlap
        a prefix already bound to any tunnel — reply ownership has to be
        unambiguous for the egress path's range search to be exact.
        """
        if tunnel.key in self._tunnels:
            raise ValueError(f"tunnel key {tunnel.key} already registered")
        self._tunnels[tunnel.key] = tunnel
        if return_link is not None:
            self._tunnel_links[tunnel.key] = return_link
        for prefix in prefixes:
            if self.inventory.lookup(prefix.network) is None:
                raise ValueError(f"tunnel prefix {prefix} is not in the farm inventory")
            start = prefix.network.value
            end = start + prefix.size - 1
            i = bisect.bisect_left(self._tunnel_starts, start)
            if i > 0 and self._tunnel_ends[i - 1] >= start:
                raise ValueError(
                    f"tunnel prefix {prefix} overlaps an already-registered"
                    f" tunnel prefix"
                )
            if i < len(self._tunnel_starts) and self._tunnel_starts[i] <= end:
                raise ValueError(
                    f"tunnel prefix {prefix} overlaps an already-registered"
                    f" tunnel prefix"
                )
            self._tunnel_starts.insert(i, start)
            self._tunnel_ends.insert(i, end)
            self._tunnel_range_keys.insert(i, tunnel.key)
            self._tunnel_by_prefix[prefix] = tunnel.key

    def _tunnel_key_for(self, addr: IPAddress) -> Optional[int]:
        i = bisect.bisect_right(self._tunnel_starts, addr.value) - 1
        if i >= 0 and addr.value <= self._tunnel_ends[i]:
            return self._tunnel_range_keys[i]
        return None

    # ------------------------------------------------------------------ #
    # Inbound path (Internet -> farm, and reflected internal traffic)
    # ------------------------------------------------------------------ #

    def receive_tunnel(self, gre: GrePacket) -> None:
        """Entry point for GRE traffic from border routers."""
        self._c_tunnel_in.increment()
        self.process_inbound(decapsulate(gre))

    def process_inbound(self, packet: Packet) -> None:
        """Dispatch one packet addressed into the farm's dark space."""
        # Any per-packet dispatch may mutate state a span-cache entry
        # depends on (promote a session, spawn a VM, advance flow state):
        # invalidate the span cache by epoch.
        self._span_epoch += 1
        self._c_packets_in.increment()
        if self.packet_tap is not None:
            self.packet_tap(packet)
        if packet.ttl <= 0:
            self._c_ttl_expired.increment()
            if _obs.ACTIVE is not None:
                self._trace_dispatch("ttl_expired", packet)
            return
        if not self.inventory.covers(packet.dst):
            self._c_stray.increment()
            if _obs.ACTIVE is not None:
                self._trace_dispatch("stray", packet)
            return
        record, created = self.flows.observe(packet, self.sim.now)

        vm = self.vm_map.get(packet.dst)
        if vm is None and self.ladder is not None:
            # Cold address with the fidelity ladder attached: let the
            # emulator tier absorb the packet unless a trigger promotes
            # the flow — in which case fall through, and this packet
            # (never emulated) takes the normal clone-and-queue path.
            verdict = self.ladder.consider(packet, self.sim.now)
            if not verdict.promoted:
                self._c_emulated.increment()
                if _obs.ACTIVE is not None:
                    self._trace_dispatch("emulated", packet)
                for reply in verdict.replies:
                    self._emit_emulated_reply(reply)
                return
        self._dispatch_to_vm(packet, record, created, vm)

    def dispatch_batch(
        self, packets: List[Packet], start: int, end: int, now: float
    ) -> None:
        """Dispatch ``packets[start:end]`` (all sharing timestamp ``now``)
        with per-packet Python overhead hoisted out of the loop.

        Behaviourally identical to calling :meth:`process_inbound` on each
        packet in order — same per-packet verdicts, ledger buckets, ladder
        consultation, and containment classification — but the dominant
        cold-address/emulated path is fused inline: the canonical flow key
        is computed once per packet and threaded through the flow table,
        the ladder session, and same-flow reply routing, and every
        attribute lookup on the path is a preresolved local. Any packet
        that leaves the fused path (VM exists, promotion, TTL/stray, or a
        protocol-changing reply) falls back to the exact per-packet code.

        Only the batched arrival stream calls this, and only when no
        flight recorder is installed; with a recorder (or a packet tap)
        the stream uses the faithful per-packet lane instead, so traces
        stay bit-identical.
        """
        if self.packet_tap is not None or _obs.ACTIVE is not None:
            process_inbound = self.process_inbound
            for k in range(start, end):
                process_inbound(packets[k])
            return
        self._span_epoch += 1  # same invalidation rule as process_inbound
        # Hoisted hot-path locals (see docs/PERFORMANCE.md).
        c_packets_in = self._c_packets_in
        c_ttl_expired = self._c_ttl_expired
        c_stray = self._c_stray
        c_emulated = self._c_emulated
        inventory_covers = self.inventory.covers
        from_packet = FlowKey.from_packet
        observe_keyed = self.flows.observe_keyed
        vm_map_get = self.vm_map.get
        ladder = self.ladder
        consider = ladder.consider if ladder is not None else None
        emit_reply_keyed = self._emit_emulated_reply_keyed
        dispatch_to_vm = self._dispatch_to_vm
        for k in range(start, end):
            packet = packets[k]
            c_packets_in.increment()
            if packet.ttl <= 0:
                c_ttl_expired.increment()
                continue
            if not inventory_covers(packet.dst):
                c_stray.increment()
                continue
            key = from_packet(packet)
            record, created = observe_keyed(key, packet, now)
            vm = vm_map_get(packet.dst)
            if vm is None and consider is not None:
                verdict = consider(packet, now, key=key)
                if not verdict.promoted:
                    c_emulated.increment()
                    for reply in verdict.replies:
                        emit_reply_keyed(reply, key)
                    continue
            dispatch_to_vm(packet, record, created, vm)

    # ------------------------------------------------------------------ #
    # Span lane (multi-timestamp batched dispatch; see docs/PERFORMANCE.md)
    # ------------------------------------------------------------------ #

    def dispatch_span(self, columns: "PacketColumns", start: int, limit: int) -> int:
        """Consume the longest prefix of ``columns[start:limit]`` that is
        provably equivalent to per-event dispatch, without materializing
        packets, and return how many arrivals were consumed.

        The lane handles exactly the storm-dominant case: an emulator-tier
        packet with an **empty payload** addressed to a cold covered
        address from an external source, whose reply classification is
        constant per ``(personality, protocol, dst_port, tcp_flags)``.
        Everything per-packet is O(1) dict hits on a persistent cache;
        flow/session/reply bookkeeping is applied with plain arithmetic
        and counters are flushed in bulk at the end. Any packet outside
        the proof (payload-carrying, VM-backed or promotable destination,
        expired cache entry, unsupported trigger/policy/route
        configuration) stops the span; the caller falls back to the exact
        per-packet lanes for it. Returns 0 when the lane is unavailable.

        Correctness rests on three invariants:

        * nothing here schedules events or reads ``sim.now``, so the
          caller's span bound (next heap event) stays valid throughout;
        * every *other* dispatch path bumps ``_span_epoch``, so a cache
          entry whose epoch matches cannot have been invalidated by a
          promotion, VM spawn, sweep, or flow-state advance;
        * bucket placement is deferred to ``FlowTable.expire_idle``'s
          self-heal (records touched here keep their creation-time
          bucket), which visits stale-bucketed records no later than
          their expiry sweep — so expiry timing and counts match the
          per-event arm exactly.
        """
        ladder = self.ladder
        if (
            ladder is None
            or self.packet_tap is not None
            or self.external_sink is not None
            or self.reply_jitter is not None
            or self._tunnel_links
        ):
            # reply_jitter disqualifies the lane because jittered egress
            # schedules events, violating the span invariant (fidelity
            # over speed: deception-on runs use the exact lanes).
            return 0
        support = self._span_support(ladder)
        if support is None:
            return 0

        times = columns.times
        if (
            _np is not None
            and limit - start >= 4
            and times[limit - 1] - times[start] <= self.flows.idle_timeout
        ):
            # Vectorized aggregation: per-flow sums replace the per-packet
            # loop. Valid only when the span's wall-clock extent cannot
            # idle-expire a flow between two of its own packets (checked
            # above); each flow's first touch still gets the exact
            # liveness check below.
            view = columns.numpy_view()
            if view is not None:
                return self._dispatch_span_np(columns, start, limit, ladder, view)

        keys = columns.keys
        payloads = columns.payloads
        sizes = columns.sizes
        cache = self._span_cache
        cache_get = cache.get
        resolve = self._span_resolve
        epoch = self._span_epoch
        idle_timeout = self.flows.idle_timeout
        buffer_limit = ladder.ladder_config.max_handoff_packets
        n_replies = n_contained = n_external = n_buffer_dropped = 0

        i = start
        while i < limit:
            if payloads[i]:
                break  # payload advances flow state / may promote: slow path
            key = keys[i]
            t = times[i]
            entry = cache_get(key)
            if entry is None or entry[4] != epoch:
                entry = resolve(columns, i, key, t)
                if entry is None:
                    break
                cache[key] = entry
            record = entry[1]
            if record._table is None or t - record.last_seen > idle_timeout:
                break  # flow gone or idle-expired: per-event recreation path
            kind = entry[0]
            session = entry[3]
            size = sizes[i]
            record.last_seen = t
            session.last_seen = t
            session.packets_absorbed += 1
            if buffer_limit > 0:
                buffered = session.buffered
                if len(buffered) >= buffer_limit:
                    del buffered[0]
                    session.buffer_dropped += 1
                    n_buffer_dropped += 1
                buffered.append((columns, i))  # lazy; materialized on promote
            if kind == 1:  # fixed-size same-protocol reply (SYN/RST ack, banner)
                record.packets += 2
                record.bytes += size + entry[6]
                banner = entry[7]
                if banner is not None:
                    session.banner = banner
                n_replies += 1
                if entry[9]:
                    n_contained += 1
                else:
                    n_external += 1
            elif kind == 0:  # silently absorbed, no reply
                record.packets += 1
                record.bytes += size
            elif kind == 3:  # ICMP port-unreachable on its own flow, contained
                record.packets += 1
                record.bytes += size
                icmp_record = entry[5]
                icmp_record.last_seen = t
                icmp_record.packets += 1
                icmp_record.bytes += 56
                n_replies += 1
                n_contained += 1
            else:  # kind == 2: ICMP echo reply mirroring the request size
                record.packets += 2
                record.bytes += size + size
                n_replies += 1
                if entry[9]:
                    n_contained += 1
                else:
                    n_external += 1
            i += 1

        consumed = i - start
        if consumed:
            self._c_packets_in.increment(consumed)
            self._c_emulated.increment(consumed)
            if n_replies:
                self._c_emulated_replies.increment(n_replies)
            if n_contained:
                self._c_emulated_contained.increment(n_contained)
            if n_external:
                self._c_reply_external.increment(n_external)
                self._c_external_out.increment(n_external)
            if n_buffer_dropped:
                ladder._c_buffer_dropped.increment(n_buffer_dropped)
        return consumed

    def _dispatch_span_np(
        self,
        columns: "PacketColumns",
        start: int,
        limit: int,
        ladder: "FidelityLadder",
        view,
    ) -> int:
        """Vectorized body of :meth:`dispatch_span`.

        Arrivals are pre-factorized to integer ids
        (:meth:`PacketColumns.key_ids`), so the whole span reduces with
        ``numpy.unique``: one Python pass visits each *flow* (not each
        packet) in first-touch order to validate its cached entry —
        epoch and liveness checks come vectorized off flat mirror
        arrays — or resolve it; numpy then aggregates per-flow packet
        counts, byte sums, and last-touch times in C, and two short
        loops — one per flow, one per session — apply the sums to the
        same records, sessions, and counters the per-packet loop would
        have touched one arrival at a time.

        Stopping at the first unresolvable arrival leaves exactly the
        side effects the per-event arm would have accumulated up to that
        packet: first occurrences are visited in arrival order, so at a
        cut no flow first seen later has been touched. The caller has
        already proven no flow can idle-expire *between* two of its own
        in-span packets (span extent <= idle timeout), which is what
        makes first-touch-only liveness checking exact.
        """
        np_ = _np
        times_np, sizes_np, pay_np = view
        seg_pay = pay_np[start:limit]
        if seg_pay.any():
            limit = start + int(seg_pay.argmax())
            if limit <= start:
                return 0
        kids_np = columns.key_ids()
        if self._span_cols is not columns:
            # New columns object: rebuild the kid-indexed caches (ids are
            # per-columns) and batch-parse its address strings.
            n = columns.n
            self._span_cols = columns
            self._span_kid_entries = [None] * n
            self._span_kid_epoch = np_.full(n, -1, dtype=np_.int64)
            self._span_kid_last = np_.zeros(n, dtype=np_.float64)
            self._span_kid_sid = np_.zeros(n, dtype=np_.intp)
            self._span_sessions = []
            self._span_sess_gid = {}
        entry_by_kid = self._span_kid_entries
        epoch_np = self._span_kid_epoch
        last_np = self._span_kid_last
        sid_by_kid = self._span_kid_sid
        sessions_g = self._span_sessions
        sess_gid = self._span_sess_gid

        epoch = self._span_epoch
        idle_timeout = self.flows.idle_timeout
        seg = kids_np[start:limit]
        times_seg = times_np[start:limit]
        uniq, first_rel, inv = np_.unique(
            seg, return_index=True, return_inverse=True
        )
        ok_l = (
            (epoch_np[uniq] == epoch)
            & (times_seg[first_rel] - last_np[uniq] <= idle_timeout)
        ).tolist()
        uniq_l = uniq.tolist()
        first_l = first_rel.tolist()
        nu = len(uniq_l)
        entries: List = [None] * nu
        cut_rel = limit - start
        resolve = self._span_resolve
        keys = columns.keys
        times = columns.times
        for pos in np_.argsort(first_rel).tolist():
            kid = uniq_l[pos]
            if ok_l[pos]:
                e = entry_by_kid[kid]
                if e[1]._table is not None:
                    entries[pos] = e
                    continue
                # Record lazily expired under a live epoch: fall through
                # and resolve afresh (live_record recreates it exactly as
                # the per-event arm's observe would).
            rel = first_l[pos]
            j = start + rel
            e = resolve(columns, j, keys[j], times[j])
            if e is None:
                cut_rel = rel
                break
            entries[pos] = entry_by_kid[kid] = e
            epoch_np[kid] = epoch
            last_np[kid] = e[1].last_seen
            session = e[3]
            gid = sess_gid.get(id(session))
            if gid is None:
                # sessions_g keeps every session alive, so id() stays
                # unambiguous for the lifetime of this columns cache.
                gid = sess_gid[id(session)] = len(sessions_g)
                sessions_g.append(session)
            sid_by_kid[kid] = gid
        m = cut_rel
        if m <= 0:
            return 0
        if m < limit - start:
            # Conservative cut: first occurrences are visited in arrival
            # order, so every flow in the kept prefix was validated above
            # — re-factorizing it yields only cached entries.
            seg = seg[:m]
            times_seg = times_seg[:m]
            uniq, first_rel, inv = np_.unique(
                seg, return_index=True, return_inverse=True
            )
            uniq_l = uniq.tolist()
            entries = [entry_by_kid[k] for k in uniq_l]
        nf = len(uniq_l)

        intp = np_.intp
        arange = np_.arange(m, dtype=intp)
        cnt_l = np_.bincount(inv, minlength=nf).tolist()
        bsum_l = (
            np_.bincount(inv, weights=sizes_np[start:start + m], minlength=nf)
            .astype(np_.int64)
            .tolist()
        )
        last_local = np_.zeros(nf, dtype=intp)
        last_local[inv] = arange  # forward assignment: last write wins
        t_last = times_seg[last_local]
        t_last_l = t_last.tolist()
        # Refresh the liveness mirror; max, because a sibling arrival key
        # may already have pushed a shared record further.
        last_np[uniq] = np_.maximum(last_np[uniq], t_last)

        n_replies = n_contained = n_external = 0
        for f in range(nf):
            entry = entries[f]
            kind = entry[0]
            rec = entry[1]
            c = cnt_l[f]
            tl = t_last_l[f]
            # max, not assignment: both directions of a conversation are
            # distinct arrival keys sharing one record.
            if tl > rec.last_seen:
                rec.last_seen = tl
            if kind == 1:  # fixed-size same-protocol reply
                rec.packets += 2 * c
                rec.bytes += bsum_l[f] + c * entry[6]
                n_replies += c
                if entry[9]:
                    n_contained += c
                else:
                    n_external += c
            elif kind == 0:  # silently absorbed
                rec.packets += c
                rec.bytes += bsum_l[f]
            elif kind == 3:  # ICMP unreachable on its own flow, contained
                rec.packets += c
                rec.bytes += bsum_l[f]
                ir = entry[5]
                if tl > ir.last_seen:
                    ir.last_seen = tl
                ir.packets += c
                ir.bytes += 56 * c
                n_replies += c
                n_contained += c
            else:  # kind == 2: echo reply mirroring request size
                rec.packets += 2 * c
                rec.bytes += 2 * bsum_l[f]
                n_replies += c
                if entry[9]:
                    n_contained += c
                else:
                    n_external += c

        gsid = sid_by_kid[uniq]  # per-flow global session id
        suniq, sinv = np_.unique(gsid, return_inverse=True)
        ns = len(suniq)
        sess_list = [sessions_g[g] for g in suniq.tolist()]
        sid_np = sinv[inv]  # per-packet span-local session id
        scnt = np_.bincount(sid_np, minlength=ns)
        s_last = np_.zeros(ns, dtype=intp)
        s_last[sid_np] = arange
        s_tlast_l = times_seg[s_last].tolist()
        scnt_l = scnt.tolist()
        fban = [entry[7] is not None for entry in entries]
        last_b_l = None
        if True in fban:
            bmask = np_.array(fban, dtype=np_.bool_)[inv]
            bidx = bmask.nonzero()[0]
            last_b = np_.full(ns, -1, dtype=intp)
            last_b[sid_np[bidx]] = bidx
            last_b_l = last_b.tolist()
        buffer_limit = ladder.ladder_config.max_handoff_packets
        pairs = None
        if buffer_limit > 0:
            # One flat list of lazy (columns, index) pairs in
            # session-grouped arrival order; each session extends its
            # replay buffer with a plain slice of it.
            order_l = np_.argsort(sid_np, kind="stable").tolist()
            bounds_l = scnt.cumsum().tolist()
            pairs = [(columns, start + k) for k in order_l]
        n_buffer_dropped = 0
        lo = 0
        for s in range(ns):
            session = sess_list[s]
            c = scnt_l[s]
            tl = s_tlast_l[s]
            if tl > session.last_seen:
                session.last_seen = tl
            session.packets_absorbed += c
            if last_b_l is not None:
                lb = last_b_l[s]
                if lb >= 0:
                    session.banner = entries[inv[lb]][7]
            if pairs is not None:
                hi = bounds_l[s]
                buffered = session.buffered
                # Per-arrival eviction (cap, pop-front, append) telescopes
                # to: final = (old + new)[-cap:], dropped = overflow.
                drop = len(buffered) + c - buffer_limit
                if drop > 0:
                    session.buffer_dropped += drop
                    n_buffer_dropped += drop
                    if c >= buffer_limit:
                        del buffered[:]
                        buffered.extend(pairs[hi - buffer_limit:hi])
                        lo = hi
                        continue
                    del buffered[:drop]
                if c == 1:
                    buffered.append(pairs[lo])
                else:
                    buffered.extend(pairs[lo:hi])
                lo = hi

        self._c_packets_in.increment(m)
        self._c_emulated.increment(m)
        if n_replies:
            self._c_emulated_replies.increment(n_replies)
        if n_contained:
            self._c_emulated_contained.increment(n_contained)
        if n_external:
            self._c_reply_external.increment(n_external)
            self._c_external_out.increment(n_external)
        if n_buffer_dropped:
            ladder._c_buffer_dropped.increment(n_buffer_dropped)
        return m

    def _span_support(self, ladder: "FidelityLadder") -> Optional[Tuple[float, float]]:
        """Whether the ladder's trigger stack is one the span lane can
        evaluate without packets: vuln-probe triggers fold into the class
        descriptor, payload/depth triggers into two thresholds (``inf``
        when absent — empty-payload packets never advance either counter,
        so a below-threshold flow stays below for the whole span).
        Returns ``(payload_bytes, state_depth)`` thresholds, or None."""
        if self._span_sup_for is ladder:
            return self._span_sup
        # Function-local imports: repro.fidelity pulls in repro.core at
        # package-import time, so a module-level import here would cycle.
        from repro.fidelity.emulator import EmulatedSession, FlowState
        from repro.fidelity.triggers import (
            PayloadBytesTrigger,
            StateDepthTrigger,
            VulnProbeTrigger,
        )

        self._span_session_cls = EmulatedSession
        self._span_state_cls = FlowState

        inf = float("inf")
        byte_threshold = depth_threshold = inf
        catalog = None
        supported = True
        for trigger in ladder.triggers:
            kind = type(trigger)
            if kind is VulnProbeTrigger:
                catalog = trigger.catalog
            elif kind is PayloadBytesTrigger:
                byte_threshold = min(byte_threshold, trigger.threshold)
            elif kind is StateDepthTrigger:
                depth_threshold = min(depth_threshold, trigger.threshold)
            else:  # custom trigger: only the real per-packet path is safe
                supported = False
                break
        self._span_sup_for = ladder
        self._span_cache = {}
        self._span_classes = {}
        if supported:
            self._span_catalog = catalog
            self._span_droppall = type(self.policy) is DropAllPolicy
            self._span_sup = (byte_threshold, depth_threshold)
            # Single-prefix farm without a personality mix: every cold
            # address resolves to one personality, so hoist the
            # prefix-lookup + registry chain out of the per-flow path.
            self._span_personality = None
            if ladder.config.personality_mix is None:
                prefixes = list(ladder.inventory.prefixes)
                if len(prefixes) == 1:
                    self._span_personality = ladder.registry.get(
                        ladder.config.personality_for(prefixes[0])
                    )
        else:
            self._span_sup = None
        return self._span_sup

    def _span_classify(self, columns: "PacketColumns", i: int, personality) -> Tuple:
        """Class descriptor ``(kind, reply_size, banner)`` for every
        empty-payload packet sharing arrival ``i``'s ``(personality,
        protocol, dst_port, tcp_flags)``: the emulator's reply (and the
        vuln catalog's verdict) depends only on those fields once the
        payload is empty. ``kind < 0`` means the class must take the slow
        path (promotes, multi-reply, or an unmodelled containment case)."""
        from repro.fidelity.emulator import emulator_replies

        packet = columns.packet_at(i)
        slow = (-1, 0, None)
        catalog = self._span_catalog
        if catalog is not None:
            vuln = catalog.match(packet)
            if vuln is not None and vuln.name in personality.vulnerability_names:
                return slow  # would promote: per-packet path handles it
        replies = emulator_replies(personality, packet)
        if not replies:
            return (0, 0, None)
        if len(replies) != 1:
            return slow
        reply = replies[0]
        if reply.protocol != packet.protocol:
            # Protocol-changing reply (ICMP unreachable): it opens its own
            # flow and faces the containment policy. Only exact drop-all
            # is modelled as a counter; anything else goes per-packet.
            if (
                not self._span_droppall
                or reply.protocol != PROTO_ICMP
                or reply.size != 56
            ):
                return slow
            return (3, 56, None)
        if packet.protocol == PROTO_ICMP:
            return (2, 0, None)  # echo reply: size mirrors the request
        payload = reply.payload
        banner = payload[7:] if payload.startswith("banner:") else None
        return (1, reply.size, banner)

    def _span_resolve(self, columns: "PacketColumns", i: int, key, t: float):
        """Build (or rebuild) the span-cache entry for arrival ``key`` —
        the once-per-flow slow half of the span lane. The caller owns the
        cache store (tuple dict for the per-packet loop, kid arrays for
        the vectorized lane); re-resolving is idempotent either way.

        Ordering is load-bearing: every bail-out that sends the packet to
        the per-packet path happens **before** any flow-record mutation,
        so the slow path sees exactly the state the per-event arm would
        have (in particular its ``created`` flag for overflow rollback).
        Pre-creating the *session* and *flow state* is safe either way:
        the per-event path would create identical objects at the same
        timestamp, and the creation counters are incremented exactly once,
        here."""
        ladder = self.ladder
        addr_cache = columns.addr_cache
        src_s, src_port, dst_s, dst_port, protocol = key
        dst_addr = addr_cache.get(dst_s)
        src_addr = addr_cache.get(src_s)
        try:
            if dst_addr is None:
                dst_addr = addr_cache[dst_s] = _parse_addr(dst_s)
            if src_addr is None:
                src_addr = addr_cache[src_s] = _parse_addr(src_s)
        except ValueError:
            return None  # malformed address: per-event parse raises properly
        inventory = self.inventory
        starts = inventory._starts
        if len(starts) == 1:  # single-prefix farm: hoist covers() to a compare
            lo = starts[0]
            hi = inventory._ends[0]
            if not lo <= dst_addr.value <= hi or lo <= src_addr.value <= hi:
                return None  # stray, or an internal source: slow path
        elif not inventory.covers(dst_addr) or inventory.covers(src_addr):
            return None
        if self.intershard is not None and self.intershard.is_remote(src_addr):
            # A sibling shard's address probing this darknet: its replies
            # must ride the federation message layer, never the span
            # lane's counter-only absorption.
            return None
        vm_map = self.vm_map
        if vm_map and vm_map.get(dst_addr) is not None:
            return None  # VM-backed address: clone/deliver path
        session = ladder.sessions.get(dst_addr)
        if session is not None:
            personality = session.personality
        else:
            personality = self._span_personality
            if personality is None:
                prefix = ladder.inventory.lookup(dst_addr)
                personality = ladder.registry.get(
                    ladder.config.personality_for_address(prefix, dst_addr)
                )
        class_key = (id(personality), protocol, dst_port, columns.records[i].tcp_flags)
        cls = self._span_classes.get(class_key)
        if cls is None:
            cls = self._span_classes[class_key] = self._span_classify(
                columns, i, personality
            )
        kind = cls[0]
        if kind < 0:
            return None
        # Canonical flow key: exactly FlowKey.from_packet's ordering,
        # spelled with scalar compares.
        sv = src_addr.value
        dv = dst_addr.value
        if sv < dv or (sv == dv and src_port <= dst_port):
            flow_key = FlowKey(src_addr, src_port, dst_addr, dst_port, protocol)
        else:
            flow_key = FlowKey(dst_addr, dst_port, src_addr, src_port, protocol)
        state = session.flows.get(flow_key) if session is not None else None
        if state is not None:
            byte_threshold, depth_threshold = self._span_sup
            if (
                state.payload_bytes >= byte_threshold
                or state.exchanges >= depth_threshold
            ):
                return None  # next packet promotes: per-packet path
        flows = self.flows
        record = flows.live_record(flow_key, t)
        contained = False
        if record is None:
            record = flows.create(flow_key, src_addr, t)
        elif kind in (1, 2) and record.initiator.value == dv:
            # The reply rides a flow the farm side initiated: per-event
            # routing consults the policy. Drop-all (the only policy this
            # lane supports beyond reply routing) contains it.
            if not self._span_droppall:
                return None
            contained = True
        if session is None:
            # Field-by-field EmulatedSession.__init__, sans the call: this
            # is the hottest allocation in a cold-storm span.
            session = object.__new__(self._span_session_cls)
            session.personality = personality
            session.created_at = t
            session.last_seen = t
            session.flows = {}
            session.buffered = []
            session.buffer_dropped = 0
            session.banner = None
            session.packets_absorbed = 0
            session.payload_bytes_total = 0
            ladder.sessions[dst_addr] = session
            ladder._c_sessions_started.value += 1  # Counter.increment, sans call
            if t < ladder._session_floor:
                ladder._session_floor = t
        if state is None:
            state = object.__new__(self._span_state_cls)
            state.exchanges = 0
            state.payload_bytes = 0
            session.flows[flow_key] = state
            ladder._c_flows_seen.value += 1
        icmp_record = None
        if kind == 3:
            # The unreachable's flow: same endpoints, ICMP. Same canonical
            # ordering as the inbound key (identical endpoint pairs).
            icmp_key = FlowKey(
                flow_key.addr_low,
                flow_key.port_low,
                flow_key.addr_high,
                flow_key.port_high,
                PROTO_ICMP,
            )
            icmp_record = flows.live_record(icmp_key, t)
            if icmp_record is None:
                icmp_record = flows.create(icmp_key, dst_addr, t)
            elif icmp_record.initiator.value != dv:
                return None  # externally-initiated ICMP flow: reply routes out
        entry = [
            kind,           # 0: per-class reply shape
            record,         # 1: the conversation's flow record
            state,          # 2: ladder flow state (threshold-checked above)
            session,        # 3: the emulated session
            self._span_epoch,  # 4: validity epoch
            icmp_record,    # 5: kind-3 reply flow record
            cls[1],         # 6: fixed reply size (kind 1)
            cls[2],         # 7: banner payload, if any
            dst_addr,       # 8: parsed destination
            contained,      # 9: reply faces (and loses to) drop-all policy
        ]
        return entry

    def _dispatch_to_vm(
        self,
        packet: Packet,
        record: FlowRecord,
        created: bool,
        vm: Optional[VirtualMachine],
    ) -> None:
        """The clone/queue/deliver tail shared by the per-packet and
        batched inbound paths (the packet has been flow-accounted and was
        not absorbed by the emulator tier)."""
        if vm is None:
            vm = self.backend.spawn_vm(packet.dst)
            if vm is None:
                self._c_no_capacity.increment()
                if _obs.ACTIVE is not None:
                    self._trace_dispatch("no_capacity", packet)
                return
            self._c_clones_requested.increment()
            self.vm_map[packet.dst] = vm
            if vm.state is not VMState.RUNNING:
                # Normal case: the clone pipeline is in flight; hold the
                # packet until vm_ready flushes it.
                self._pending[packet.dst] = [(packet, record)]
                self._c_queued_during_clone.increment()
                if self.pending_timeout is not None:
                    self._arm_pending_timer(packet.dst, vm)
                if _obs.ACTIVE is not None:
                    self._trace_dispatch("clone_requested", packet, vm_id=vm.vm_id)
                return
        if vm.state is VMState.CLONING:
            queue = self._pending.get(packet.dst)
            if queue is None:
                queue = self._pending[packet.dst] = []
                if self.pending_timeout is not None:
                    self._arm_pending_timer(packet.dst, vm)
            if len(queue) >= self.max_pending_per_ip:
                self._c_pending_overflow.increment()
                # The observe() above already accounted this packet on
                # its flow record, but the packet never reaches a VM:
                # roll the accounting back, and drop the record entirely
                # if this packet was the only thing it ever carried.
                record.packets -= 1
                record.bytes -= packet.size
                if created and record.packets == 0:
                    self.flows.discard(record)
                if _obs.ACTIVE is not None:
                    self._trace_dispatch("overflow", packet, vm_id=vm.vm_id)
                return
            queue.append((packet, record))
            self._c_queued_during_clone.increment()
            if _obs.ACTIVE is not None:
                self._trace_dispatch("queued", packet, vm_id=vm.vm_id)
            return
        if vm.state is not VMState.RUNNING:
            # Momentary window between reclamation and map cleanup.
            self._c_vm_not_running.increment()
            if _obs.ACTIVE is not None:
                self._trace_dispatch("vm_not_running", packet, vm_id=vm.vm_id)
            return
        record.vm_id = vm.vm_id
        self._c_delivered.increment()
        if _obs.ACTIVE is not None:
            self._trace_dispatch("delivered", packet, vm_id=vm.vm_id)
        self.backend.deliver(vm, packet)

    def _trace_dispatch(self, verdict: str, packet: Packet, **extra) -> None:
        """Emit one dispatch-verdict event (caller guards on ACTIVE)."""
        _obs.ACTIVE.emit(
            self.sim.now,
            "gateway",
            "dispatch",
            verdict=verdict,
            src=str(packet.src),
            dst=str(packet.dst),
            **extra,
        )

    # ------------------------------------------------------------------ #
    # Pending-queue watchdog (armed only when pending_timeout is set)
    # ------------------------------------------------------------------ #

    def _arm_pending_timer(self, ip: IPAddress, vm: VirtualMachine) -> None:
        self._pending_timers[ip] = self.sim.schedule(
            self.pending_timeout, self._pending_timed_out, ip, vm.vm_id
        )

    def _cancel_pending_timer(self, ip: IPAddress) -> None:
        timer = self._pending_timers.pop(ip, None)
        if timer is not None:
            timer.cancel()

    def _pending_timed_out(self, ip: IPAddress, vm_id: int) -> None:
        """The clone a queue was waiting on never delivered; give up.

        Drops the held packets (accounted under the ``timeout`` cause) and
        — the failover half — unbinds the address from the stuck VM so the
        next packet for it dispatches a fresh clone instead of queueing
        behind a corpse forever.
        """
        self._pending_timers.pop(ip, None)
        queued = self._pending.pop(ip, None)
        if queued:
            self._c_pending_dropped["timeout"].increment(len(queued))
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.emit(
                    self.sim.now, "gateway", "pending_dropped",
                    cause="timeout", ip=str(ip), count=len(queued),
                )
        current = self.vm_map.get(ip)
        if (
            current is not None
            and current.vm_id == vm_id
            and current.state is not VMState.RUNNING
        ):
            del self.vm_map[ip]

    def _drop_pending(self, ip: IPAddress, cause: str) -> None:
        self._cancel_pending_timer(ip)
        queued = self._pending.pop(ip, None)
        if queued:
            self._c_pending_dropped[cause].increment(len(queued))
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.emit(
                    self.sim.now, "gateway", "pending_dropped",
                    cause=cause, ip=str(ip), count=len(queued),
                )

    # ------------------------------------------------------------------ #
    # VM lifecycle notifications from the backend
    # ------------------------------------------------------------------ #

    def vm_ready(self, vm: VirtualMachine) -> None:
        """Flush packets queued while ``vm`` was cloning.

        Each queued packet was already observed by the flow table when it
        arrived; the flush reuses that record rather than observing again
        (which would double-count the packet's flow statistics).
        """
        self._cancel_pending_timer(vm.ip)
        if self.ladder is not None:
            # Replay the emulated prefix of the conversation first, so
            # the queued live packets land on a guest whose state already
            # reflects everything the attacker has seen.
            self._replay_handoff(vm)
        queued = self._pending.pop(vm.ip, [])
        recorder = _obs.ACTIVE
        for index, (packet, record) in enumerate(queued):
            if vm.state is not VMState.RUNNING:
                # The VM died mid-flush: account the unflushed remainder
                # so packet totals still reconcile.
                self._c_pending_dropped["vm_died"].increment(len(queued) - index)
                if recorder is not None:
                    recorder.emit(
                        self.sim.now, "gateway", "pending_dropped",
                        cause="vm_died", ip=str(vm.ip), count=len(queued) - index,
                    )
                break
            record.vm_id = vm.vm_id
            self._c_delivered.increment()
            if recorder is not None:
                recorder.emit(
                    self.sim.now, "gateway", "dispatch",
                    verdict="flushed", src=str(packet.src), dst=str(packet.dst),
                    vm_id=vm.vm_id,
                )
            self.backend.deliver(vm, packet)

    def _replay_handoff(self, vm: VirtualMachine) -> None:
        """Replay a promotion's buffered packets into the fresh VM.

        Replies are suppressed (``deliver_replay``): the emulator already
        answered these packets byte-identically, so re-emitting would
        duplicate what the attacker saw. The replay is accounted only
        under ``ladder.handoff_packets_replayed`` — each packet was
        already counted once, under ``gateway.emulated``, when absorbed.
        """
        handoff = self.ladder.take_handoff(vm.ip)
        if handoff is None:
            return
        replayed = 0
        for packet in handoff.buffered:
            if vm.state is not VMState.RUNNING:
                break
            self.backend.deliver_replay(vm, packet)
            replayed += 1
        self.ladder.handoff_complete(handoff, replayed, vm.vm_id, self.sim.now)

    def vm_retired(self, vm: VirtualMachine, pending_cause: str = "vm_retired") -> None:
        """Drop all state bound to a reclaimed/detained/crashed VM.

        ``pending_cause`` labels any held packets this drops (the farm
        passes ``host_down`` when the VM's host crashed, ``clone_failed``
        when the clone pipeline failed).
        """
        current = self.vm_map.get(vm.ip)
        if current is not None and current.vm_id == vm.vm_id:
            del self.vm_map[vm.ip]
        self._drop_pending(vm.ip, pending_cause)
        self.flows.drop_vm(vm.vm_id)
        self.nat.forget_vm(vm.ip)
        if self.ladder is not None:
            self.ladder.vm_retired(vm.ip, pending_cause)

    # ------------------------------------------------------------------ #
    # Outbound path (honeypot -> anywhere)
    # ------------------------------------------------------------------ #

    def emit_from_vm(self, vm: VirtualMachine, packet: Packet) -> None:
        """Handle one packet emitted by a honeypot VM."""
        self._c_vm_packets_out.increment()

        # Internal resolver traffic is farm infrastructure, not egress.
        if self.dns_server is not None and packet.dst == self.dns_server.address:
            self._deliver_dns(vm, packet, original_resolver=None)
            return

        # Reverse reflection NAT: this VM was previously reflected onto an
        # internal stand-in for packet.dst, so the whole conversation must
        # keep routing to the stand-in. Without this, the stand-in's
        # NAT-translated reply leaves a flow whose initiator looks
        # external, and the VM's next packet (e.g. the exploit payload
        # after the SYN handshake) would sail out the reply path.
        rewritten = self.nat.translate_outbound_destination(packet)
        if rewritten is not None:
            self._c_out_nat_rewritten.increment()
            if _obs.ACTIVE is not None:
                _obs.ACTIVE.emit(
                    self.sim.now, "gateway", "containment",
                    action="nat-rewrite", src=str(packet.src),
                    dst=str(packet.dst), vm_id=vm.vm_id,
                )
            # Under federation-wide reflection the recorded stand-in may
            # live in a sibling shard's darknet.
            if not self._route_intershard(rewritten, reply=False):
                self.process_inbound(rewritten.decremented_ttl())
            return

        record, created = self.flows.observe(packet, self.sim.now)
        if not created and record.initiator != vm.ip:
            self._emit_reply(vm, packet)
            return

        # Honeypot-initiated traffic: the containment policy decides.
        verdict = self.policy.decide(vm, packet, self.sim.now)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "gateway", "containment",
                action=verdict.action.value,
                src=str(packet.src), dst=str(packet.dst), vm_id=vm.vm_id,
            )
        if verdict.action is ContainmentAction.ALLOW:
            self._c_out_allowed.increment()
            if self.inventory.covers(packet.dst):
                self.process_inbound(packet.decremented_ttl())
            elif not self._route_intershard(packet, reply=False):
                self._c_initiated_external.increment()
                self._send_external(packet)
        elif verdict.action is ContainmentAction.DROP:
            self._c_out_dropped.increment()
        elif verdict.action is ContainmentAction.REDIRECT_DNS:
            self._c_out_dns_redirected.increment()
            self._deliver_dns(vm, packet, original_resolver=packet.dst)
        elif verdict.action is ContainmentAction.REFLECT:
            assert verdict.new_destination is not None
            self._c_out_reflected.increment()
            # The NAT record stays on the initiating VM's shard: replies
            # come back through the message layer raw and are translated
            # here, mirroring the local reflection path exactly.
            self.nat.record(vm.ip, verdict.new_destination, packet.dst)
            reflected = packet.with_destination(verdict.new_destination)
            if not self._route_intershard(reflected, reply=False):
                self.process_inbound(reflected.decremented_ttl())
        else:  # pragma: no cover - exhaustive over the enum
            raise AssertionError(f"unhandled containment action: {verdict.action!r}")

    def _emit_reply(self, vm: VirtualMachine, packet: Packet) -> None:
        """Reply on an externally- or peer-initiated flow: always allowed,
        routed externally or internally by destination."""
        self._c_reply_allowed.increment()
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "gateway", "containment",
                action="reply", src=str(packet.src), dst=str(packet.dst),
                vm_id=vm.vm_id,
            )
        if self.inventory.covers(packet.dst):
            translated = self.nat.translate_reply_source(packet)
            self.process_inbound(translated.decremented_ttl())
        elif not self._route_intershard(packet, reply=True):
            # Without the reply=True lane, a reply to a sibling shard's
            # VM would sail out here as a false external escape — the
            # PR 5 escape class, across shard boundaries.
            self._c_reply_external.increment()
            self._send_external(packet)

    def _emit_emulated_reply(self, packet: Packet) -> None:
        """Route one emulator-tier reply exactly as a VM reply would be.

        Classification mirrors :meth:`emit_from_vm` so the emulator tier
        is policy-invisible: a reply riding the externally-initiated flow
        is always allowed (NAT-translated back toward internal stand-ins,
        shipped through the owning tunnel otherwise), while a
        *flow-creating* emission — the ICMP unreachable answering a
        closed-port UDP probe opens a fresh ICMP flow — faces the same
        containment verdict the guest's identical packet would, else the
        ladder world leaks packets that clone-always contains. Counted
        under the ladder's own buckets so tier accounting stays distinct
        from ``gateway.outbound.reply_allowed``."""
        self._c_emulated_replies.increment()
        record, created = self.flows.observe(packet, self.sim.now)
        self._route_emulated_reply(packet, record, created)

    def _emit_emulated_reply_keyed(self, packet: Packet, inbound_key: FlowKey) -> None:
        """:meth:`_emit_emulated_reply` for the batched lane: a reply that
        keeps the inbound packet's protocol mirrors its canonical flow key
        exactly (the key is direction-independent), so the inbound key is
        reused; a protocol-changing reply (the ICMP unreachable answering
        a UDP probe) opens a different flow and takes the generic path."""
        if packet.protocol != inbound_key.protocol:
            self._emit_emulated_reply(packet)
            return
        self._c_emulated_replies.increment()
        record, created = self.flows.observe_keyed(inbound_key, packet, self.sim.now)
        self._route_emulated_reply(packet, record, created)

    def _route_emulated_reply(
        self, packet: Packet, record: FlowRecord, created: bool
    ) -> None:
        if created or record.initiator == packet.src:
            verdict = self.policy.decide(
                _EmulatedSource(packet.src), packet, self.sim.now
            )
            if verdict.action is ContainmentAction.REFLECT:
                assert verdict.new_destination is not None
                self._c_out_reflected.increment()
                self.nat.record(packet.src, verdict.new_destination, packet.dst)
                reflected = packet.with_destination(verdict.new_destination)
                if not self._route_intershard(reflected, reply=False):
                    self.process_inbound(reflected.decremented_ttl())
                return
            if verdict.action is not ContainmentAction.ALLOW:
                # DROP, or DNS redirection the emulator never initiates.
                self._c_emulated_contained.increment()
                return
        if self.inventory.covers(packet.dst):
            translated = self.nat.translate_reply_source(packet)
            self.process_inbound(translated.decremented_ttl())
        elif not self._route_intershard(packet, reply=True):
            self._c_reply_external.increment()
            self._send_external(packet)

    def _route_intershard(self, packet: Packet, reply: bool) -> bool:
        """Hand ``packet`` to the federation message layer when a sibling
        shard owns its destination; False means the caller keeps routing
        locally (standalone farm, own shard, or genuinely external)."""
        port = self.intershard
        if port is None or not port.is_remote(packet.dst):
            return False
        self._c_intershard_out.increment()
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "gateway", "intershard",
                direction="out", reply=reply,
                src=str(packet.src), dst=str(packet.dst),
            )
        generation = -1
        if not reply:
            src_vm = self.vm_map.get(packet.src)
            if (
                src_vm is not None
                and src_vm.guest is not None
                and src_vm.guest.infection is not None
            ):
                generation = src_vm.guest.infection.generation
        port.send(packet, reply, generation)
        return True

    def receive_intershard(
        self, packet: Packet, reply: bool, generation: int = -1
    ) -> None:
        """Deliver one packet arriving from a sibling shard.

        Reply-kind packets cross the boundary raw (the sender holds no
        NAT state for them) and are source-translated *here*, on the
        shard whose VM initiated the reflected flow — the exact mirror of
        the local reply path. The TTL decrements once per gateway
        traversal, same as local forwarding, so reflection ping-pong
        between shards still dies at the TTL horizon. ``generation`` is
        the remote sender's infection depth (``-1`` when the source is
        not an infected farm VM); it is remembered per source address so
        an infection this packet causes chains from the true cross-shard
        generation instead of restarting at zero.
        """
        self._c_intershard_in.increment()
        if not reply and generation >= 0:
            self.remote_generations[packet.src] = generation
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "gateway", "intershard",
                direction="in", reply=reply,
                src=str(packet.src), dst=str(packet.dst),
            )
        if reply:
            packet = self.nat.translate_reply_source(packet)
        self.process_inbound(packet.decremented_ttl())

    def _send_external(self, packet: Packet) -> None:
        """Ship a permitted packet toward the Internet, applying the
        deception egress delay when the controller is attached.

        The delay is keyed on the packet's *source* — the honeypot
        address the attacker is probing — and is constant per address, so
        packets of one flow never reorder; it only de-correlates timing
        *across* addresses, which is the tell fingerprinting scanners
        measure. Purely observational: nothing inside the farm reacts to
        an external packet's departure time, so conservation and guest
        behavior are unchanged."""
        jitter = self.reply_jitter
        if jitter is not None:
            delay = jitter(packet.src)
            if delay > 0.0:
                self._c_deception_delayed.increment()
                self.sim.schedule(delay, self._send_external_now, packet)
                return
        self._send_external_now(packet)

    def _send_external_now(self, packet: Packet) -> None:
        """Ship a permitted packet to the Internet through the tunnel that
        owns its (impersonated) source address."""
        self._c_external_out.increment()
        key = self._tunnel_key_for(packet.src)
        link = self._tunnel_links.get(key) if key is not None else None
        if key is not None and link is not None:
            gre = encapsulate(self._tunnels[key], packet)
            link.deliver(gre, gre.size)
        elif self.external_sink is not None:
            self.external_sink(packet)

    def _deliver_dns(
        self,
        vm: VirtualMachine,
        packet: Packet,
        original_resolver: Optional[IPAddress],
    ) -> None:
        """Complete a DNS transaction against the internal resolver.

        When the query targeted an external resolver and was redirected,
        the response's source is rewritten back to that resolver so the
        guest cannot tell the difference.
        """
        if self.dns_server is None:
            self._c_out_dropped.increment()
            return
        query = (
            packet
            if original_resolver is None
            else packet.with_destination(self.dns_server.address)
        )
        response = self.dns_server.handle_query(query)
        if response is None:
            self._c_dns_malformed.increment()
            return
        if original_resolver is not None:
            response = Packet(
                src=original_resolver,
                dst=response.dst,
                protocol=response.protocol,
                src_port=response.src_port,
                dst_port=response.dst_port,
                payload=response.payload,
                size=response.size,
            )
        self._c_dns_answered.increment()
        # Small, fixed resolver turnaround before the answer reaches the VM.
        self.sim.schedule(0.001, self._deliver_dns_response, vm, response)

    def _deliver_dns_response(self, vm: VirtualMachine, response: Packet) -> None:
        if vm.state is VMState.RUNNING:
            self.backend.deliver(vm, response)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def sweep_flows(self) -> int:
        """Expire idle flows; returns how many were dropped."""
        if self.ladder is not None:
            if self.ladder.sweep(self.sim.now):
                # Sessions died: span-cache entries hold session refs.
                # (Expired flow *records* need no epoch — the span lane
                # re-checks record liveness on every touch.)
                self._span_epoch += 1
        return len(self.flows.expire_idle(self.sim.now))

    def tunnel_links(self) -> Dict[int, Link]:
        """The registered tunnel return links, keyed by tunnel key (the
        chaos subsystem impairs these by name)."""
        return dict(self._tunnel_links)

    @property
    def live_vm_count(self) -> int:
        return len(self.vm_map)

    @property
    def pending_packet_count(self) -> int:
        """Packets currently held in pending queues (reconciliation)."""
        return sum(len(queue) for queue in self._pending.values())

    def pending_dropped_total(self) -> int:
        """Sum of pending-queue drops across every cause."""
        return sum(c.value for c in self._c_pending_dropped.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Gateway vms={len(self.vm_map)} flows={len(self.flows)}"
            f" policy={self.policy.name}>"
        )
