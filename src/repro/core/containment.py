"""Containment: what may an infected honeypot do to the outside world?

The honeyfarm invites compromise, so every *honeypot-initiated* packet is
a potential attack on a third party and must pass a policy check at the
gateway. (Replies on externally-initiated flows are exempt — answering
your scanner is the whole point — and the gateway enforces that
distinction, not this module.)

The paper frames containment as a fidelity dial. This module implements
the points on that dial it discusses:

* :class:`OpenPolicy` — allow everything (the unsafe comparator; shows
  what containment prevents).
* :class:`DropAllPolicy` — allow nothing. Perfectly safe, but malware
  that needs a second connection (download stage, DNS rendezvous) stalls,
  destroying fidelity.
* :class:`AllowDnsPolicy` — drop everything except DNS, which is
  *redirected* to the farm's internal resolver: the transaction
  completes, nothing leaves.
* :class:`ReflectionPolicy` — the paper's signature policy: outbound
  scans are rewritten to target *other honeyfarm addresses*, so the worm
  propagates inside the farm — multi-stage behaviour stays observable,
  the epidemic stays bottled. DNS is redirected as in AllowDnsPolicy.

:class:`OutboundRateLimiter` composes with any policy (a token bucket per
VM) and :class:`ReflectionNat` keeps reflection transparent to the
infected guest: the reply from the internal stand-in is rewritten so it
appears to come from the address the worm actually targeted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.net.addr import AddressSpaceInventory, IPAddress
from repro.net.packet import PROTO_UDP, Packet
from repro.vmm.vm import VirtualMachine

__all__ = [
    "ContainmentAction",
    "Verdict",
    "ContainmentPolicy",
    "OpenPolicy",
    "DropAllPolicy",
    "AllowDnsPolicy",
    "ReflectionPolicy",
    "CompositePolicy",
    "OutboundRateLimiter",
    "ReflectionNat",
    "make_policy",
]


class ContainmentAction(enum.Enum):
    """What the gateway does with one outbound packet."""

    ALLOW = "allow"          # forward to the Internet via the GRE tunnel
    DROP = "drop"            # discard silently
    REFLECT = "reflect"      # rewrite destination into the farm's dark space
    REDIRECT_DNS = "redirect-dns"  # deliver to the internal resolver


@dataclass(frozen=True)
class Verdict:
    """A policy decision; ``new_destination`` is set for REFLECT."""

    action: ContainmentAction
    new_destination: Optional[IPAddress] = None
    reason: str = ""


def _is_dns_query(packet: Packet) -> bool:
    return packet.protocol == PROTO_UDP and packet.dst_port == 53


class ContainmentPolicy:
    """Interface: map an outbound packet to a :class:`Verdict`."""

    name = "abstract"

    def decide(self, vm: VirtualMachine, packet: Packet, now: float) -> Verdict:
        raise NotImplementedError


class OpenPolicy(ContainmentPolicy):
    """Allow everything — the no-containment comparator."""

    name = "open"

    def decide(self, vm: VirtualMachine, packet: Packet, now: float) -> Verdict:
        return Verdict(ContainmentAction.ALLOW, reason="open policy")


class DropAllPolicy(ContainmentPolicy):
    """Allow nothing that the honeypot initiates."""

    name = "drop-all"

    def decide(self, vm: VirtualMachine, packet: Packet, now: float) -> Verdict:
        return Verdict(ContainmentAction.DROP, reason="drop-all policy")


class AllowDnsPolicy(ContainmentPolicy):
    """Drop everything except DNS, which goes to the internal resolver."""

    name = "allow-dns"

    def decide(self, vm: VirtualMachine, packet: Packet, now: float) -> Verdict:
        if _is_dns_query(packet):
            return Verdict(ContainmentAction.REDIRECT_DNS, reason="dns redirected")
        return Verdict(ContainmentAction.DROP, reason="non-dns initiated traffic")


class ReflectionPolicy(ContainmentPolicy):
    """Reflect outbound scans back into the farm's own dark space.

    The target choice must be **deterministic per (vm, original
    destination)** so that retransmissions and follow-up connections from
    the same worm land on the same internal stand-in — otherwise TCP
    handshakes would shear across different VMs. Determinism comes from
    hashing the original destination into the farm's flat address index.
    """

    name = "reflect"

    def __init__(self, inventory: AddressSpaceInventory) -> None:
        if inventory.total_addresses < 2:
            raise ValueError("reflection needs at least two farm addresses")
        self.inventory = inventory

    def decide(self, vm: VirtualMachine, packet: Packet, now: float) -> Verdict:
        if _is_dns_query(packet):
            return Verdict(ContainmentAction.REDIRECT_DNS, reason="dns redirected")
        internal = self._reflect_target(vm.ip, packet.dst)
        return Verdict(
            ContainmentAction.REFLECT,
            new_destination=internal,
            reason=f"scan to {packet.dst} reflected",
        )

    def _reflect_target(self, vm_ip: IPAddress, original: IPAddress) -> IPAddress:
        total = self.inventory.total_addresses
        index = (original.value * 2654435761) % total  # Knuth multiplicative hash
        candidate = self.inventory.address_at_flat_index(index)
        if candidate == vm_ip:  # never reflect a VM onto itself
            candidate = self.inventory.address_at_flat_index((index + 1) % total)
        return candidate


class CompositePolicy(ContainmentPolicy):
    """A rate limiter stacked in front of a base policy.

    Packets the limiter rejects are dropped regardless of the base
    policy's opinion; this models the paper's observation that even
    permissive policies need a volumetric backstop (a honeyfarm must
    never become a useful DDoS amplifier).
    """

    def __init__(self, base: ContainmentPolicy, limiter: "OutboundRateLimiter") -> None:
        self.base = base
        self.limiter = limiter
        self.name = f"{base.name}+ratelimit"

    def decide(self, vm: VirtualMachine, packet: Packet, now: float) -> Verdict:
        verdict = self.base.decide(vm, packet, now)
        if verdict.action is ContainmentAction.DROP:
            return verdict
        if not self.limiter.admit(vm.vm_id, now):
            return Verdict(ContainmentAction.DROP, reason="outbound rate limit")
        return verdict


class OutboundRateLimiter:
    """Per-VM token bucket: ``rate`` packets/second, ``burst`` tokens."""

    def __init__(self, rate: float, burst: float = 10.0) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive: {rate!r}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1: {burst!r}")
        self.rate = rate
        self.burst = burst
        self._buckets: Dict[int, Tuple[float, float]] = {}  # vm_id -> (tokens, last)
        self.rejected = 0

    def admit(self, vm_id: int, now: float) -> bool:
        tokens, last = self._buckets.get(vm_id, (self.burst, now))
        tokens = min(self.burst, tokens + (now - last) * self.rate)
        if tokens >= 1.0:
            self._buckets[vm_id] = (tokens - 1.0, now)
            return True
        self._buckets[vm_id] = (tokens, now)
        self.rejected += 1
        return False

    def forget(self, vm_id: int) -> None:
        """Drop state for a reclaimed VM."""
        self._buckets.pop(vm_id, None)


class ReflectionNat:
    """Address translation that keeps reflection invisible to the worm.

    When VM ``v`` scanning external address ``X`` is reflected onto
    internal address ``Y``: record ``(v, Y) -> X``. A later packet from
    ``Y`` to ``v`` (the stand-in answering) has its source rewritten back
    to ``X`` before delivery, so ``v``'s TCP stack sees the peer it
    contacted. Entries are per (vm address, internal address) pair, so
    one VM may converse with many reflected peers concurrently.

    The reverse direction matters just as much for containment: once the
    translated reply is delivered, ``v``'s flow state says it is talking
    to external ``X``, so its *next* packet on that conversation is
    addressed to ``X`` — and without the ``(v, X) -> Y`` rewrite it would
    ride the reply path straight out of the farm (the differential
    harness caught exactly this: a reflected worm's exploit payload
    escaping to the real external host).
    """

    def __init__(self) -> None:
        self._map: Dict[Tuple[IPAddress, IPAddress], IPAddress] = {}
        self._reverse: Dict[Tuple[IPAddress, IPAddress], IPAddress] = {}
        self.translations = 0
        self.outbound_translations = 0

    def record(self, vm_ip: IPAddress, internal: IPAddress, original: IPAddress) -> None:
        self._map[(vm_ip, internal)] = original
        self._reverse[(vm_ip, original)] = internal

    def translate_outbound_destination(self, packet: Packet) -> Optional[Packet]:
        """If ``packet`` (infected VM → external address it was told it
        reached) matches a reflection entry, rewrite the destination back
        to the internal stand-in; returns None when no entry applies."""
        internal = self._reverse.get((packet.src, packet.dst))
        if internal is None:
            return None
        self.outbound_translations += 1
        return packet.with_destination(internal)

    def translate_reply_source(self, reply: Packet) -> Packet:
        """If ``reply`` (internal stand-in → infected VM) matches a
        reflection entry, rewrite its source to the original external
        address; otherwise return it unchanged."""
        original = self._map.get((reply.dst, reply.src))
        if original is None:
            return reply
        self.translations += 1
        rewritten = Packet(
            src=original,
            dst=reply.dst,
            protocol=reply.protocol,
            src_port=reply.src_port,
            dst_port=reply.dst_port,
            flags=reply.flags,
            icmp_type=reply.icmp_type,
            payload=reply.payload,
            size=reply.size,
            ttl=reply.ttl,
        )
        return rewritten

    def forget_vm(self, vm_ip: IPAddress) -> int:
        """Drop all entries involving a reclaimed VM's address."""
        doomed = [key for key in self._map if key[0] == vm_ip or key[1] == vm_ip]
        for key in doomed:
            del self._map[key]
        reverse_doomed = [
            key
            for key, internal in self._reverse.items()
            if key[0] == vm_ip or internal == vm_ip
        ]
        for key in reverse_doomed:
            del self._reverse[key]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._map)


def make_policy(
    name: str,
    inventory: AddressSpaceInventory,
    rate_limit: Optional[float] = None,
) -> ContainmentPolicy:
    """Build the named policy (config-string → object), optionally wrapped
    in a rate limiter."""
    if name == "open":
        policy: ContainmentPolicy = OpenPolicy()
    elif name == "drop-all":
        policy = DropAllPolicy()
    elif name == "allow-dns":
        policy = AllowDnsPolicy()
    elif name == "reflect":
        policy = ReflectionPolicy(inventory)
    else:
        raise ValueError(f"unknown containment policy: {name!r}")
    if rate_limit is not None:
        policy = CompositePolicy(policy, OutboundRateLimiter(rate_limit))
    return policy
