"""Content sifting at the gateway (Earlybird/Autograph-class).

The insight from the content-sifting literature the paper's group built
alongside Potemkin: worm traffic is *prevalent* (the same payload
repeats) and *dispersed* (it flows between many distinct sources and
destinations), while benign traffic rarely combines both. The sifter
watches every inbound payload at the gateway and raises a
:class:`WormAlert` for any payload whose

* occurrence count reaches ``prevalence_threshold``, and
* distinct source count reaches ``source_threshold``, and
* distinct destination count reaches ``destination_threshold``.

State is bounded: per-payload source/destination sets are capped (counts
keep rising after the cap, the sets just stop growing), and only the
``max_tracked`` most-recently-seen payloads are retained, evicting the
least-recently-seen — the same scaling compromises real sifters make.

Payload semantics: the reproduction's packets carry semantic tags, so
"payload" here is the tag; a real deployment would sift Rabin
fingerprints of byte content. Response payloads (``banner:*`` and DNS
answers) and empty payloads are never sifted.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.net.packet import Packet
from repro.services.vulnerabilities import EXPLOIT_PREFIX

__all__ = ["SifterConfig", "WormAlert", "ContentSifter"]


@dataclass(frozen=True)
class SifterConfig:
    """Detection thresholds and state bounds."""

    prevalence_threshold: int = 20
    source_threshold: int = 3
    destination_threshold: int = 10
    max_tracked_payloads: int = 4096
    max_addresses_per_payload: int = 256

    def __post_init__(self) -> None:
        if self.prevalence_threshold < 1:
            raise ValueError("prevalence_threshold must be >= 1")
        if self.source_threshold < 1 or self.destination_threshold < 1:
            raise ValueError("address thresholds must be >= 1")
        if self.max_tracked_payloads < 1:
            raise ValueError("max_tracked_payloads must be >= 1")
        if self.max_addresses_per_payload < 1:
            raise ValueError("max_addresses_per_payload must be >= 1")


@dataclass
class WormAlert:
    """A payload that crossed all three thresholds."""

    payload: str
    time: float
    prevalence: int
    distinct_sources: int
    distinct_destinations: int
    protocol: int
    dst_port: int

    @property
    def is_known_exploit(self) -> bool:
        """Whether the flagged payload is a catalogued exploit tag (the
        reproduction's ground truth; a real sifter cannot know this)."""
        return self.payload.startswith(EXPLOIT_PREFIX)


class _PayloadState:
    __slots__ = ("count", "sources", "destinations", "protocol", "dst_port", "alerted")

    def __init__(self, protocol: int, dst_port: int) -> None:
        self.count = 0
        self.sources: Set[int] = set()
        self.destinations: Set[int] = set()
        self.protocol = protocol
        self.dst_port = dst_port
        self.alerted = False


class ContentSifter:
    """Streaming prevalence × dispersion detector; see module docstring.

    Install as the gateway's ``packet_tap`` or call :meth:`observe`
    directly. ``on_alert`` fires once per distinct payload.
    """

    _IGNORED_PREFIXES = ("banner:", "dns:")

    def __init__(
        self,
        config: Optional[SifterConfig] = None,
        on_alert: Optional[Callable[[WormAlert], None]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.config = config or SifterConfig()
        self.on_alert = on_alert
        self.clock = clock or (lambda: 0.0)
        self.alerts: List[WormAlert] = []
        self.packets_observed = 0
        self.payloads_evicted = 0
        self._state: "OrderedDict[str, _PayloadState]" = OrderedDict()

    # ------------------------------------------------------------------ #

    def observe(self, packet: Packet) -> Optional[WormAlert]:
        """Account one inbound packet; returns a new alert if one fired."""
        self.packets_observed += 1
        payload = packet.payload
        if not payload or payload.startswith(self._IGNORED_PREFIXES):
            return None

        state = self._state.get(payload)
        if state is None:
            state = _PayloadState(packet.protocol, packet.dst_port)
            self._state[payload] = state
            self._evict_if_needed()
        else:
            self._state.move_to_end(payload)

        state.count += 1
        cap = self.config.max_addresses_per_payload
        if len(state.sources) < cap:
            state.sources.add(packet.src.value)
        if len(state.destinations) < cap:
            state.destinations.add(packet.dst.value)

        if state.alerted:
            return None
        if (
            state.count >= self.config.prevalence_threshold
            and len(state.sources) >= self.config.source_threshold
            and len(state.destinations) >= self.config.destination_threshold
        ):
            state.alerted = True
            alert = WormAlert(
                payload=payload,
                time=self.clock(),
                prevalence=state.count,
                distinct_sources=len(state.sources),
                distinct_destinations=len(state.destinations),
                protocol=state.protocol,
                dst_port=state.dst_port,
            )
            self.alerts.append(alert)
            if self.on_alert is not None:
                self.on_alert(alert)
            return alert
        return None

    def _evict_if_needed(self) -> None:
        while len(self._state) > self.config.max_tracked_payloads:
            self._state.popitem(last=False)
            self.payloads_evicted += 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def prevalence_of(self, payload: str) -> int:
        state = self._state.get(payload)
        return state.count if state is not None else 0

    def tracked_payloads(self) -> int:
        return len(self._state)

    def alert_for(self, payload: str) -> Optional[WormAlert]:
        for alert in self.alerts:
            if alert.payload == payload:
                return alert
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ContentSifter tracked={len(self._state)}"
            f" alerts={len(self.alerts)} seen={self.packets_observed}>"
        )
