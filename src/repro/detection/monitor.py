"""Infection-rate monitoring: the honeyfarm's ground-truth detector.

Content sifting infers a worm from traffic; the honeyfarm can do better
— its honeypots *are* the confirmation. This monitor watches the stream
of :class:`~repro.services.guest.InfectionRecord`s and alerts when the
confirmed-infection rate for one worm crosses a threshold within a
sliding window. By construction it has no false positives (every event
is an actual compromise of an executing system), at the price of
waiting for clones and exploit delivery — the latency the D-DETECT
experiment measures against the sifter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.services.guest import InfectionRecord

__all__ = ["InfectionAlert", "InfectionRateMonitor"]


@dataclass
class InfectionAlert:
    """A worm whose confirmed-compromise rate crossed the threshold."""

    worm_name: str
    time: float
    infections_in_window: int
    window_seconds: float


class InfectionRateMonitor:
    """Sliding-window rate detector over confirmed infections.

    Install via ``farm.infections``' producer by passing
    :meth:`record` as (or inside) the farm's infection callback, or feed
    it records after the fact with :meth:`replay`.
    """

    def __init__(
        self,
        threshold: int = 3,
        window_seconds: float = 10.0,
        on_alert: Optional[Callable[[InfectionAlert], None]] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        self.threshold = threshold
        self.window_seconds = window_seconds
        self.on_alert = on_alert
        self.alerts: List[InfectionAlert] = []
        self._windows: Dict[str, Deque[float]] = {}
        self._alerted: Dict[str, bool] = {}

    def record(self, infection: InfectionRecord) -> Optional[InfectionAlert]:
        """Account one confirmed infection; returns a new alert if fired.

        One alert per worm name; later infections of the same worm are
        still windowed (for rate introspection) but do not re-alert.
        """
        window = self._windows.setdefault(infection.worm_name, deque())
        window.append(infection.time)
        horizon = infection.time - self.window_seconds
        while window and window[0] < horizon:
            window.popleft()

        if self._alerted.get(infection.worm_name):
            return None
        if len(window) >= self.threshold:
            self._alerted[infection.worm_name] = True
            alert = InfectionAlert(
                worm_name=infection.worm_name,
                time=infection.time,
                infections_in_window=len(window),
                window_seconds=self.window_seconds,
            )
            self.alerts.append(alert)
            if self.on_alert is not None:
                self.on_alert(alert)
            return alert
        return None

    def replay(self, infections) -> List[InfectionAlert]:
        """Feed a time-ordered iterable of records; returns new alerts."""
        fired = []
        for infection in sorted(infections, key=lambda r: r.time):
            alert = self.record(infection)
            if alert is not None:
                fired.append(alert)
        return fired

    def current_rate(self, worm_name: str) -> int:
        """Infections of ``worm_name`` inside the most recent window."""
        return len(self._windows.get(worm_name, ()))

    def alert_for(self, worm_name: str) -> Optional[InfectionAlert]:
        for alert in self.alerts:
            if alert.worm_name == worm_name:
                return alert
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<InfectionRateMonitor worms={len(self._windows)}"
            f" alerts={len(self.alerts)}>"
        )
