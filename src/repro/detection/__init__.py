"""Outbreak detection: turning the honeyfarm into a sensor.

A honeyfarm doesn't just *capture* malware — it is a detector: the paper
positions Potemkin's gateway as the place where new worms announce
themselves. This package provides two complementary detectors:

* :mod:`repro.detection.sifting` — **content sifting** at the gateway
  (Earlybird/Autograph-style): payloads that become prevalent *and*
  spread across many sources and destinations are flagged, yielding a
  signature before any host-level confirmation.
* :mod:`repro.detection.monitor` — **infection-rate monitoring** over
  the farm's ground truth: the honeypots themselves confirm compromise,
  slower but with zero false positives by construction.

The detection-latency benchmark (experiment D-DETECT, an extension
beyond the paper's evaluation) races the two against worm outbreaks of
varying speed.
"""

from repro.detection.monitor import InfectionRateMonitor
from repro.detection.sifting import ContentSifter, SifterConfig, WormAlert

__all__ = [
    "ContentSifter",
    "InfectionRateMonitor",
    "SifterConfig",
    "WormAlert",
]
