"""``potemkin`` command-line interface.

Three subcommands cover the interactive workflows a user reaches for
before writing code against the API:

* ``potemkin demo`` — run a small farm under a worm outbreak and print
  the containment outcome.
* ``potemkin telescope`` — generate a background-radiation trace to a
  JSONL file (inspectable, replayable input for experiments).
* ``potemkin concurrency`` — the idle-timeout sweep over a trace file
  (or a freshly generated one), printing the F-CONC table.
* ``potemkin forensics`` — run a multi-worm incident, then triage the
  captured VMs: label-free family clustering, body-size estimates, and
  the content-sharing (dedup) opportunity.
* ``potemkin chaos`` — a fault-injection drill: a worm outbreak with a
  mid-run host crash (or a JSON fault plan), ending in a recovery report
  whose packet ledger must balance.
* ``potemkin trace`` — the flight recorder: re-run a scenario with the
  structured event trace armed and dump JSONL, or inspect an existing
  trace file (``--filter subsystem=gateway``, ``--tail 20``).
* ``potemkin conform`` — the differential conformance fuzzer: generate
  random scenarios from a root seed, run each through the world matrix
  (delta / full-copy / sharing flip / alternate containment / fidelity
  ladder / responder baseline), check every invariant oracle, and
  optionally shrink any failure to a minimal JSON repro plus a
  paste-ready pytest case.
* ``potemkin federation`` — a parallel sharded federation run: N shard
  farms over M worker processes in lockstep epochs, cross-shard
  reflection over the message layer, per-shard rows, and a global
  packet-conservation check (docs/FEDERATION.md).
* ``potemkin adversary`` — the attacker-vs-deception experiment: run
  fingerprinting scanners (tiers 0-3) and a botnet campaign against the
  farm with the deception defense off and on, printing dwell time,
  capture rate, and abort rate per tier (docs/ADVERSARIES.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.concurrency import sweep_timeouts
from repro.analysis.report import format_table
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import Prefix
from repro.workloads.scenarios import outbreak_scenario
from repro.workloads.telescope import TelescopeConfig, TelescopeWorkload
from repro.workloads.trace import TraceReader, TraceWriter

__all__ = ["main"]


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.analysis.summary import farm_run_report

    farm, outbreak = outbreak_scenario(
        worm_name=args.worm,
        scan_rate=args.scan_rate,
        containment=args.containment,
        seed=args.seed,
    )
    outbreak.start()
    farm.run(until=args.duration)
    print(f"{args.worm} outbreak demo — {args.duration:.0f}s simulated\n")
    print(farm_run_report(farm))
    return 0


def _cmd_telescope(args: argparse.Namespace) -> int:
    prefixes = [Prefix.parse(p) for p in args.prefix]
    workload = TelescopeWorkload(prefixes, TelescopeConfig(seed=args.seed))
    records = workload.generate(args.duration)
    with TraceWriter(args.output) as writer:
        writer.write_all(records)
    print(f"wrote {len(records)} records covering {args.duration:.0f}s to {args.output}")
    return 0


def _cmd_concurrency(args: argparse.Namespace) -> int:
    if args.trace:
        records = TraceReader(args.trace).read_all()
    else:
        prefixes = [Prefix.parse(p) for p in args.prefix]
        workload = TelescopeWorkload(prefixes, TelescopeConfig(seed=args.seed))
        records = workload.generate(args.duration)
    results = sweep_timeouts(records, args.timeout)
    rows = [
        [f"{r.timeout:g}", r.peak_vms, f"{r.mean_vms:.1f}", r.vm_instantiations]
        for r in results
    ]
    print(
        format_table(
            ["idle timeout (s)", "peak VMs", "mean VMs", "instantiations"],
            rows,
            title=f"Concurrency vs idle timeout ({len(records)} arrivals)",
        )
    )
    return 0


def _cmd_forensics(args: argparse.Namespace) -> int:
    from repro.analysis.dedup import dedup_opportunity
    from repro.forensics import ForensicTriage
    from repro.net.addr import IPAddress
    from repro.net.packet import TcpFlags, tcp_packet, udp_packet

    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/25",), num_hosts=2,
        containment="drop-all", idle_timeout_seconds=600.0,
        clone_jitter=0.0, seed=args.seed,
    ))
    attacker = IPAddress.parse("203.0.113.80")
    addr = iter(range(1, 126))
    for __ in range(16):  # clean population for the baseline
        dst = IPAddress.parse(f"10.16.0.{next(addr)}")
        farm.inject(tcp_packet(attacker, dst, 1000, 445))
    for __ in range(args.victims):
        dst = IPAddress.parse(f"10.16.0.{next(addr)}")
        farm.inject(udp_packet(attacker, dst, 2000, 1434, payload="exploit:slammer"))
    for __ in range(args.victims // 2):
        dst = IPAddress.parse(f"10.16.0.{next(addr)}")
        farm.inject(tcp_packet(attacker, dst, 3000, 80))
        farm.inject(tcp_packet(attacker, dst, 3000, 80,
                               flags=TcpFlags.PSH | TcpFlags.ACK,
                               payload="exploit:codered"))
    farm.run(until=10.0)

    triage = ForensicTriage(farm)
    triage.collect()
    print(triage.report().render())
    print()
    print(dedup_opportunity(farm.hosts).render())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.analysis.recovery import recovery_report
    from repro.analysis.summary import farm_run_report
    from repro.faults import FaultPlan
    from repro.workloads.scenarios import chaos_drill_scenario

    plan = FaultPlan.from_file(args.fault_plan) if args.fault_plan else None
    duration, crash_at, repair_after = args.duration, args.crash_at, args.repair_after
    if args.smoke:
        # The epidemic reaches the farm ~15 s in; crash just after so the
        # drill actually displaces VMs.
        duration, crash_at, repair_after = 45.0, 25.0, 10.0
    farm, outbreak, controller = chaos_drill_scenario(
        crash_at=crash_at,
        repair_after=repair_after,
        plan=plan,
        seed=args.seed,
    )
    outbreak.start()
    controller.start()
    farm.run(until=duration)
    report = recovery_report(farm, controller)
    print(
        f"chaos drill — {duration:.0f}s simulated,"
        f" {controller.faults_fired} fault(s) fired\n"
    )
    print(farm_run_report(farm))
    print()
    print(report.render())
    if report.ledger.leaked != 0:
        print(
            f"\nERROR: packet ledger leaked {report.ledger.leaked} packet(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.trace import (
        filter_events,
        format_event,
        load_trace,
        parse_filter,
        render_trace_summary,
    )

    try:
        filters = [parse_filter(expr) for expr in (args.filter or [])]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.ladder:
        # Shorthand for the fidelity-ladder lifecycle stream
        # (promotion / handoff / demotion events).
        filters.append(("sub", "ladder"))

    if args.input:
        # Inspect mode: analyse a previously recorded trace.
        events = load_trace(args.input)
        timing = None
        evicted = 0
    else:
        # Record mode: run the scenario with the flight recorder armed.
        from repro.obs import FlightRecorder, install, uninstall
        from repro.workloads.scenarios import chaos_drill_scenario

        duration = args.duration
        recorder = FlightRecorder(capacity=args.capacity)
        install(recorder)
        try:
            if args.scenario == "chaos-drill":
                crash_at, repair_after = args.crash_at, args.repair_after
                if args.smoke:
                    duration, crash_at, repair_after = 45.0, 25.0, 10.0
                farm, outbreak, controller = chaos_drill_scenario(
                    crash_at=crash_at,
                    repair_after=repair_after,
                    seed=args.seed,
                )
                outbreak.start()
                controller.start()
            else:  # outbreak
                farm, outbreak = outbreak_scenario(seed=args.seed)
                outbreak.start()
            if args.snapshot_interval > 0:
                recorder.start_snapshots(
                    farm.sim, farm.metrics, args.snapshot_interval
                )
            farm.run(until=duration)
        finally:
            uninstall()
        recorder.dump(args.output)
        print(
            f"recorded {recorder.emitted} event(s)"
            f" ({recorder.evicted} evicted, capacity {args.capacity})"
            f" over {duration:.0f}s simulated -> {args.output}\n"
        )
        events = [json.loads(line) for line in recorder.iter_jsonl()]
        timing = recorder.timing_summary()
        evicted = recorder.evicted

    if filters:
        events = filter_events(events, filters)
    if args.tail:
        for event in events[-args.tail:]:
            print(format_event(event))
        print()
    print(render_trace_summary(events, timing=timing, evicted=evicted))
    return 0


def _cmd_conform(args: argparse.Namespace) -> int:
    import time
    from pathlib import Path

    from repro.testing import run_conformance
    from repro.testing.shrink import failure_predicate, pytest_case, shrink_scenario

    seed = args.seed
    if seed is None:
        import os

        seed = int.from_bytes(os.urandom(4), "big")
    runs = 10 if args.smoke else args.runs

    print(f"conformance fuzz: root seed {seed}, {runs} scenarios")
    print(f"replay with: potemkin conform --seed {seed} --runs {runs}")

    started = time.perf_counter()

    def progress(index: int, verdict) -> None:
        s = verdict.scenario
        status = "ok" if verdict.passed else (
            "FAIL " + ",".join(verdict.failing_oracles)
        )
        print(
            f"  [{index}] {s.name}: containment={s.containment}"
            f" memory={s.memory_profile} waves={len(s.worm_waves)}"
            f" faults={len(s.fault_events)} -> {status}"
            f" ({verdict.elapsed_seconds:.2f}s)"
        )

    report = run_conformance(seed, runs, on_verdict=progress)
    elapsed = time.perf_counter() - started
    print(
        f"\n{report.scenarios_run} scenarios x {report.worlds_per_scenario}"
        f" worlds, {len(report.oracle_names)} oracles"
        f" ({', '.join(report.oracle_names)}) in {elapsed:.1f}s"
    )
    if report.passed:
        print("all oracles green")
        return 0

    artifacts = Path(args.artifacts)
    artifacts.mkdir(parents=True, exist_ok=True)
    for verdict in report.failures:
        index = report.verdicts.index(verdict)
        stem = f"seed{seed}-idx{index}"
        failure_path = artifacts / f"{stem}.json"
        failure_path.write_text(json.dumps(verdict.to_dict(), indent=2) + "\n")
        print(f"\nFAILURE [{index}] {verdict.scenario.name} -> {failure_path}")
        for violation in verdict.violations:
            print(f"  {violation}")
        if args.shrink:
            print("  shrinking (re-verifying the failure each step)...")
            result = shrink_scenario(
                verdict.scenario,
                failure_predicate(verdict.failing_oracles),
                failing_oracles=verdict.failing_oracles,
                max_evaluations=args.shrink_budget,
            )
            min_path = artifacts / f"{stem}-min.json"
            min_path.write_text(json.dumps(result.to_dict(), indent=2) + "\n")
            repro_path = artifacts / f"{stem}-repro.py"
            repro_path.write_text(
                pytest_case(result.minimized, result.failing_oracles)
            )
            print(
                f"  minimized size {result.original.size()} ->"
                f" {result.minimized.size()}"
                f" in {result.evaluations} evaluations -> {min_path}"
            )
            print(f"  paste-ready pytest case -> {repro_path}")
    print(
        f"\n{len(report.failures)}/{report.scenarios_run} scenarios failed;"
        f" replay with: potemkin conform --seed {seed} --runs {runs}"
    )
    return 1


def _cmd_adversary(args: argparse.Namespace) -> int:
    from repro.adversary import FINGERPRINT_TIERS, experiment_digest, run_adversary_experiment

    duration = 12.0 if args.smoke else args.duration
    result = run_adversary_experiment(
        seed=args.seed,
        duration=duration,
        containment=args.containment,
        num_targets=args.targets,
        include_botnet=not args.no_botnet,
    )
    print(
        f"adversary experiment: seed {args.seed}, containment "
        f"{args.containment}, {args.targets} targets, {duration}s"
    )
    for arm in ("off", "on"):
        scanners = result["arms"][arm]["scanners"]
        print(f"\ndeception {arm}:")
        print("  tier  verdict      stage    tells  captures  dwell")
        for tier in sorted(scanners, key=int):
            s = scanners[tier]
            dwell = "-" if s["dwell_time"] is None else f"{s['dwell_time']:.1f}s"
            print(
                f"  {tier:>4}  {s['verdict'] or '-':<11}"
                f"  {s['abort_stage'] or '-':<7}"
                f"  {s['tell_total']:>5.2f}  {len(s['captures']):>8}  {dwell}"
            )
        if "botnet" in result["arms"][arm]:
            b = result["arms"][arm]["botnet"]
            print(
                f"  botnet: {len(b['captures'])} captures,"
                f" {b['lateral_infections']} lateral,"
                f" {b['stage2_pushed']} stage-2 pushes,"
                f" {b['checkins_seen']} check-ins heard"
            )
    off = result["headline"]["fingerprint_captures_off"]
    on = result["headline"]["fingerprint_captures_on"]
    print(
        f"\ncaptures from fingerprinting scanners (tiers"
        f" {list(FINGERPRINT_TIERS)}): {off} without deception,"
        f" {on} with deception"
    )
    print(f"digest: {experiment_digest(result)[:16]}")
    if args.json:
        from pathlib import Path

        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"full report -> {path}")
    return 0


def _cmd_federation(args: argparse.Namespace) -> int:
    from repro.testing.fedscenario import FederationScenario
    from repro.workloads.worms import KNOWN_WORMS

    scenario = FederationScenario(
        seed=args.seed, shards=args.shards, shard_bits=args.shard_bits,
        duration=args.duration, latency=args.latency,
        telescope_rate=args.telescope_rate, exploit_fraction=0.4,
        probes_max=100, max_packets_per_shard=args.max_packets,
        containment=args.containment,
        worms=tuple((name, 2.0) for name in sorted(KNOWN_WORMS)),
        name="cli",
    )
    if args.scenario_file:
        scenario = FederationScenario.from_json(
            open(args.scenario_file).read()
        )
    if args.workers > 0:
        lane = f"{args.workers} worker process(es)"
        result = scenario.build_parallel(
            args.workers, placement=args.placement
        ).run(until=scenario.duration)
        reports = result.reports
    else:
        lane = "in-process reference"
        federation = scenario.build_reference()
        federation.run(until=scenario.duration)
        reports = federation.shard_reports()

    print(
        f"federation run — {scenario.shards} shard(s) over {lane},"
        f" {scenario.duration:.0f}s simulated,"
        f" epoch lookahead {scenario.interlink().lookahead:g}s\n"
    )
    rows = [
        [
            report["shard"],
            ", ".join(report["prefixes"]),
            report["live_vms"],
            len(report["infections"]),
            report["ledger"]["packets_in"],
            report["intershard"]["sent"],
            report["intershard"]["received"],
            report["nat"]["reply_translations"],
        ]
        for report in reports
    ]
    print(format_table(
        ["shard", "prefixes", "live VMs", "infections", "packets in",
         "x-shard out", "x-shard in", "NAT replies"],
        rows,
        title="Per-shard outcome",
    ))

    try:
        if args.workers > 0:
            totals = result.assert_packet_conservation()
        else:
            ledger = federation.assert_packet_conservation()
            totals = {
                "packets_in": ledger.packets_in,
                "delivered": ledger.delivered,
                "emulated": ledger.emulated,
                "refused": ledger.refused,
                "dropped": ledger.dropped,
                "still_pending": ledger.still_pending,
            }
    except AssertionError as exc:
        print(f"\nERROR: {exc}", file=sys.stderr)
        return 1
    print(
        f"\npacket conservation holds: {totals['packets_in']} in ="
        f" {totals['delivered']} delivered + {totals['emulated']} emulated +"
        f" {totals['refused']} refused + {totals['dropped']} dropped +"
        f" {totals['still_pending']} pending"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="potemkin",
        description="Potemkin virtual honeyfarm reproduction (SOSP 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a worm outbreak against a small farm")
    demo.add_argument("--worm", default="codered", help="worm name (default: codered)")
    demo.add_argument("--scan-rate", type=float, default=20.0, help="scans/s per host")
    demo.add_argument(
        "--containment",
        default="reflect",
        choices=["open", "drop-all", "allow-dns", "reflect"],
    )
    demo.add_argument("--duration", type=float, default=120.0, help="simulated seconds")
    demo.add_argument("--seed", type=int, default=1)
    demo.set_defaults(func=_cmd_demo)

    telescope = sub.add_parser("telescope", help="generate a background-radiation trace")
    telescope.add_argument("--prefix", action="append", default=None,
                           help="dark prefix (repeatable; default 10.16.0.0/16)")
    telescope.add_argument("--duration", type=float, default=60.0)
    telescope.add_argument("--seed", type=int, default=77)
    telescope.add_argument("--output", default="telescope.jsonl")
    telescope.set_defaults(func=_cmd_telescope)

    conc = sub.add_parser("concurrency", help="idle-timeout sweep over a trace")
    conc.add_argument("--trace", default=None, help="JSONL trace file (else generate)")
    conc.add_argument("--prefix", action="append", default=None)
    conc.add_argument("--duration", type=float, default=60.0)
    conc.add_argument("--seed", type=int, default=77)
    conc.add_argument(
        "--timeout",
        type=float,
        action="append",
        default=None,
        help="idle timeout to evaluate (repeatable)",
    )
    conc.set_defaults(func=_cmd_concurrency)

    forensics = sub.add_parser(
        "forensics", help="run a multi-worm incident and triage the captures"
    )
    forensics.add_argument("--victims", type=int, default=10,
                           help="slammer victims (codered gets half)")
    forensics.add_argument("--seed", type=int, default=55)
    forensics.set_defaults(func=_cmd_forensics)

    chaos = sub.add_parser(
        "chaos", help="fault-injection drill with a recovery report"
    )
    chaos.add_argument(
        "--fault-plan", default=None,
        help="JSON fault plan file (overrides --crash-at/--repair-after)",
    )
    chaos.add_argument("--duration", type=float, default=180.0, help="simulated seconds")
    chaos.add_argument("--crash-at", type=float, default=60.0,
                       help="host crash time (default fault plan only)")
    chaos.add_argument("--repair-after", type=float, default=30.0,
                       help="repair delay after the crash")
    chaos.add_argument("--seed", type=int, default=42)
    chaos.add_argument("--smoke", action="store_true",
                       help="short CI drill (45s, crash at 25s)")
    chaos.set_defaults(func=_cmd_chaos)

    trace = sub.add_parser(
        "trace", help="record or inspect a flight-recorder trace"
    )
    trace.add_argument(
        "--input", default=None,
        help="inspect an existing JSONL trace instead of recording one",
    )
    trace.add_argument(
        "--scenario", default="chaos-drill", choices=["chaos-drill", "outbreak"],
        help="scenario to record (ignored with --input)",
    )
    trace.add_argument("--duration", type=float, default=120.0,
                       help="simulated seconds to record")
    trace.add_argument("--crash-at", type=float, default=60.0,
                       help="chaos-drill host crash time")
    trace.add_argument("--repair-after", type=float, default=30.0,
                       help="chaos-drill repair delay")
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument("--output", default="flight.jsonl",
                       help="JSONL trace destination (record mode)")
    trace.add_argument(
        "--snapshot-interval", type=float, default=10.0,
        help="sim-seconds between metric snapshots (0 disables)",
    )
    trace.add_argument("--capacity", type=int, default=100_000,
                       help="ring-buffer size; oldest events evict beyond it")
    trace.add_argument(
        "--filter", action="append", default=None, metavar="KEY=VALUE",
        help="keep only matching events, e.g. subsystem=gateway (repeatable)",
    )
    trace.add_argument("--tail", type=int, default=0, metavar="N",
                       help="print the last N events follow-style")
    trace.add_argument(
        "--ladder", action="store_true",
        help="keep only fidelity-ladder events (promotion/handoff/demotion);"
        " shorthand for --filter subsystem=ladder",
    )
    trace.add_argument("--smoke", action="store_true",
                       help="short CI drill (45s, crash at 25s)")
    trace.set_defaults(func=_cmd_trace)

    conform = sub.add_parser(
        "conform",
        help="differential conformance fuzz: scenarios x worlds x oracles",
    )
    conform.add_argument(
        "--seed", type=int, default=None,
        help="root seed (default: random; always printed for replay)",
    )
    conform.add_argument("--runs", type=int, default=25,
                         help="number of generated scenarios")
    conform.add_argument("--smoke", action="store_true",
                         help="bounded CI pass (10 scenarios)")
    conform.add_argument("--shrink", action="store_true",
                         help="minimize failing scenarios and emit repro files")
    conform.add_argument("--shrink-budget", type=int, default=80,
                         help="max differential re-runs per shrink")
    conform.add_argument(
        "--artifacts", default="benchmarks/reports/conform_failures",
        help="directory for failing-scenario JSON and repro files",
    )
    conform.set_defaults(func=_cmd_conform)

    federation = sub.add_parser(
        "federation",
        help="parallel sharded federation run with conservation check",
    )
    federation.add_argument("--shards", type=int, default=2,
                            help="number of shard farms (default 2)")
    federation.add_argument(
        "--workers", type=int, default=2,
        help="worker processes; 0 runs the in-process reference lane",
    )
    federation.add_argument("--shard-bits", type=int, default=26,
                            help="prefix length per shard (default /26)")
    federation.add_argument("--duration", type=float, default=15.0,
                            help="simulated seconds")
    federation.add_argument("--latency", type=float, default=0.25,
                            help="cross-shard hop latency (= epoch lookahead)")
    federation.add_argument("--telescope-rate", type=float, default=2048.0,
                            help="telescope sources/s per /16 per shard")
    federation.add_argument("--max-packets", type=int, default=600,
                            help="telescope records per shard")
    federation.add_argument(
        "--containment", default="reflect",
        choices=["open", "drop-all", "allow-dns", "reflect"],
    )
    federation.add_argument(
        "--placement", default="balanced",
        choices=["balanced", "round-robin"],
        help="shard -> worker placement policy",
    )
    federation.add_argument(
        "--scenario-file", default=None,
        help="run a pinned FederationScenario JSON instead of the knobs above",
    )
    federation.add_argument("--seed", type=int, default=1905)
    federation.set_defaults(func=_cmd_federation)

    adversary = sub.add_parser(
        "adversary",
        help="fingerprinting scanners + botnet vs the deception defense",
    )
    adversary.add_argument("--seed", type=int, default=1)
    adversary.add_argument("--duration", type=float, default=20.0,
                           help="simulated seconds per agent run")
    adversary.add_argument("--targets", type=int, default=8,
                           help="farm addresses each agent attacks")
    adversary.add_argument(
        "--containment", default="reflect",
        choices=["open", "drop-all", "allow-dns", "reflect"],
    )
    adversary.add_argument("--no-botnet", action="store_true",
                           help="skip the botnet campaign arm")
    adversary.add_argument("--smoke", action="store_true",
                           help="bounded CI pass (12 simulated seconds)")
    adversary.add_argument("--json", default=None,
                           help="write the full report JSON to this path")
    adversary.set_defaults(func=_cmd_adversary)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "prefix", None) is None and hasattr(args, "prefix"):
        args.prefix = ["10.16.0.0/16"]
    if getattr(args, "timeout", None) is None and hasattr(args, "timeout"):
        args.timeout = [1.0, 5.0, 30.0, 60.0, 300.0, 600.0]
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - module execution guard
    sys.exit(main())
