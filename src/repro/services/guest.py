"""The per-VM guest model: answer probes, get infected, dirty memory.

A :class:`GuestHost` stands in for the operating system running inside a
honeypot VM. It is deliberately a *protocol-level* model — detailed enough
that the three properties the experiments measure emerge naturally:

* **Fidelity** — probes are answered the way the personality's real stack
  would (SYN/ACK or RST, banners, echo replies, port-unreachables), and a
  matching exploit genuinely *compromises* the guest, changing its
  subsequent behaviour.
* **Memory economics** — every activity dirties pages in the VM's CoW
  address space: a base working set on first activity, a few pages per
  connection, a worm body on infection. Private-footprint results come
  straight from this accounting.
* **Containment dynamics** — an infected guest emits outbound scans
  (and optionally a DNS lookup first), which is exactly the traffic the
  gateway's containment policy must handle.

The guest never talks to the network directly: inbound packets arrive via
:meth:`GuestHost.handle_packet` (returning synchronous replies) and
asynchronous traffic (worm scans) goes through the ``transmit`` callback
the honeyfarm installs — which is how all outbound traffic ends up in
front of the containment policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.net.addr import IPAddress
from repro.net.packet import (
    ICMP_ECHO_REQUEST,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    TcpFlags,
    tcp_packet,
    udp_packet,
)
from repro.services.personality import Personality
from repro.services.vulnerabilities import VulnerabilityCatalog
from repro.sim.engine import Simulator
from repro.sim.process import Process, Sleep, spawn
from repro.sim.rand import RandomStream
from repro.vmm.memory import OutOfMemoryError
from repro.vmm.vm import VirtualMachine, VMState

__all__ = ["ScanBehavior", "InfectionRecord", "GuestHost"]

ICMP_DEST_UNREACHABLE = 3

#: Payload prefixes that mark a packet as a *response*. Responses are
#: consumed silently by whoever receives them — real application protocols
#: do not answer answers, and modelling that is what prevents two
#: honeypots from ping-ponging banners through the reflection path
#: forever (a synchronous packet storm the first prototype hit).
_RESPONSE_PREFIXES = ("banner:", "dns:answer")

# Flag combinations the TCP answer path stamps on every reply; IntFlag's
# ``|`` constructs a new member per call, so build each combination once.
_SYN_ACK = TcpFlags.SYN | TcpFlags.ACK
_RST_ACK = TcpFlags.RST | TcpFlags.ACK
_PSH_ACK = TcpFlags.PSH | TcpFlags.ACK


def _is_response_payload(payload: str) -> bool:
    return payload.startswith(_RESPONSE_PREFIXES)


def _worm_body_region(worm_name: str, page_count: int, body_pages: int) -> int:
    """Deterministic start page for a worm's resident body.

    Real malware lands at distinctive addresses (its allocation pattern
    is part of its fingerprint); modelling that gives each worm a stable
    per-worm region, which is what lets forensic clustering separate
    families by page *position* as well as content. The region is kept
    clear of the low pages where the guest's own working set lives.
    """
    import hashlib

    low_reserved = 1024  # base working set + connection region live here
    span = max(page_count - low_reserved - body_pages, 1)
    digest = hashlib.sha256(f"body-region:{worm_name}".encode()).digest()
    return low_reserved + int.from_bytes(digest[:4], "big") % span


def _worm_page_content(worm_name: str, index: int) -> int:
    """Deterministic content tag for page ``index`` of a worm's body.

    The same worm writes the same code into every victim, so its body
    pages carry identical content across VMs — the redundancy that
    content-based page sharing (:mod:`repro.analysis.dedup`) measures.
    Derived via SHA-256 so tags are stable across runs and cannot collide
    with the allocator's sequential fresh tags (top bit forced set).
    """
    import hashlib

    digest = hashlib.sha256(f"worm-body:{worm_name}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big") | (1 << 63)


@dataclass(frozen=True)
class ScanBehavior:
    """How malware behaves after compromising a guest.

    ``scan_rate`` is scans/second per infected host. ``targeting``
    selects the victim-picking strategy: ``uniform`` over IPv4 (Slammer,
    Code Red v1) or ``local`` preference (Code Red II, Nimda): with
    probability ``local_same_slash8`` the target shares the infected
    host's /8, with ``local_same_slash16`` its /16, else uniform —
    locality makes a worm hammer the network it landed in, which is why
    honeyfarms capture topologically-near outbreaks disproportionately
    well.

    Bot-style malware additionally *phones home*: it resolves
    ``rendezvous_domain`` (the lookup the "allow DNS" policy exists for —
    captured lookups are rendezvous intelligence), then connects to
    ``cnc_server``/``cnc_port`` and re-checks in every
    ``beacon_interval`` seconds.
    """

    worm_name: str
    protocol: int
    dst_port: int
    exploit_tag: str
    scan_rate: float
    payload_size: int = 376
    dns_lookup_first: bool = False
    dns_server: Optional[IPAddress] = None
    rendezvous_domain: Optional[str] = None
    cnc_server: Optional[IPAddress] = None
    cnc_port: int = 6667
    beacon_interval: Optional[float] = None
    targeting: str = "uniform"
    local_same_slash8: float = 0.5   # Code Red II's published mix
    local_same_slash16: float = 0.375

    def __post_init__(self) -> None:
        if self.scan_rate <= 0:
            raise ValueError(f"scan_rate must be positive: {self.scan_rate!r}")
        if self.targeting not in ("uniform", "local"):
            raise ValueError(f"unknown targeting strategy: {self.targeting!r}")
        if self.targeting == "local":
            total = self.local_same_slash8 + self.local_same_slash16
            if not (0.0 <= self.local_same_slash8 and 0.0 <= self.local_same_slash16
                    and total <= 1.0):
                raise ValueError(
                    "local targeting probabilities must be non-negative and"
                    f" sum to <= 1 (got {total})"
                )
        if self.dns_lookup_first and self.dns_server is None:
            raise ValueError("dns_lookup_first requires a dns_server address")
        if self.beacon_interval is not None:
            if self.beacon_interval <= 0:
                raise ValueError("beacon_interval must be positive")
            if self.cnc_server is None:
                raise ValueError("beaconing requires a cnc_server address")
        if not (0 < self.cnc_port <= 65535):
            raise ValueError(f"cnc_port out of range: {self.cnc_port!r}")


@dataclass
class InfectionRecord:
    """Forensic record of a compromise — the honeyfarm's primary yield."""

    worm_name: str
    vulnerability: str
    source: IPAddress
    victim: IPAddress
    time: float
    vm_id: int
    generation: int = 0


class GuestHost:
    """Behavioural model bound to one VM.

    Parameters
    ----------
    vm:
        The VM whose address space this guest dirties.
    personality:
        Open services and vulnerability set.
    catalog:
        Vulnerability catalog for exploit matching.
    sim, rng:
        Event clock and this guest's private random stream.
    transmit:
        Callback ``transmit(vm, packet)`` for asynchronous outbound
        traffic (worm scans, DNS lookups); installed by the honeyfarm so
        everything passes containment.
    worm_behaviors:
        Mapping exploit-tag → :class:`ScanBehavior`, consulted when this
        guest is compromised so it knows how to propagate.
    on_oom:
        Optional callback invoked when dirtying a page hits host memory
        exhaustion; it should free memory (evict VMs) and return True to
        retry. Without one, :class:`OutOfMemoryError` propagates.
    """

    def __init__(
        self,
        vm: VirtualMachine,
        personality: Personality,
        catalog: VulnerabilityCatalog,
        sim: Simulator,
        rng: RandomStream,
        transmit: Optional[Callable[[VirtualMachine, Packet], None]] = None,
        worm_behaviors: Optional[Dict[str, ScanBehavior]] = None,
        on_oom: Optional[Callable[[], bool]] = None,
        on_infection: Optional[Callable[[InfectionRecord], None]] = None,
    ) -> None:
        self.vm = vm
        self.personality = personality
        self.catalog = catalog
        self.sim = sim
        self.rng = rng
        self.transmit = transmit
        # Keep the caller's dict by reference even when it is still
        # empty: the farm registers worms mid-run (an adversary's echo
        # implant lands after recon already cloned the VM), and an
        # ``or {}`` here would silently detach early-cloned guests from
        # every later registration.
        self.worm_behaviors = worm_behaviors if worm_behaviors is not None else {}
        self.on_oom = on_oom
        self.on_infection = on_infection
        self.infection: Optional[InfectionRecord] = None
        self.generation = 0
        self.connections_handled = 0
        self.scans_emitted = 0
        self.dropped_page_writes = 0
        self._touched = False
        self._page_cursor = 0
        self._conn_region_start: Optional[int] = None
        self._conn_cursor = 0
        self._disk_cursor = 0
        # TCP connections in flight: src_port -> (dst_port, payload, size)
        # to send once the SYN/ACK arrives. A worm cannot put its exploit
        # (nor a bot its check-in) on the SYN; the payload follows the
        # established connection.
        self._pending_followups: Dict[int, tuple] = {}
        self._scan_process: Optional[Process] = None
        self._beacon_process: Optional[Process] = None
        self.beacons_sent = 0
        self._vulns = {
            v.name: v for v in personality.vulnerabilities(catalog)
        }
        vm.guest = self

    # ------------------------------------------------------------------ #
    # Memory dirtying
    # ------------------------------------------------------------------ #

    def _write_page(self, page: int, content: Optional[int] = None) -> bool:
        """Write one page, routing OOM through the pressure handler.

        Returns False if the write had to be dropped (memory exhausted and
        no handler could free any).
        """
        space = self.vm.address_space
        try:
            space.write(page, content)
        except OutOfMemoryError:
            if self.on_oom is not None and self.on_oom():
                space.write(page, content)  # retry after reclamation
            else:
                self.dropped_page_writes += 1
                return False
        return True

    def _dirty_pages(self, count: int, content_for=None) -> None:
        """Dirty ``count`` distinct fresh pages (sequential cursor).

        Used for one-time footprint growth — the base working set and the
        worm body — where sequential selection makes private-page counts
        exact: N requested writes dirty exactly min(N, image size) pages.
        ``content_for(i)`` optionally pins the i-th page's content tag
        (worm bodies are identical across victims).
        """
        total = self.vm.address_space.page_count
        for i in range(count):
            page = self._page_cursor % total
            self._page_cursor += 1
            content = content_for(i) if content_for is not None else None
            if not self._write_page(page, content):
                return

    def _write_worm_body(self, worm_name: str, body_pages: int) -> None:
        """Install the worm in memory: its own region, its own content —
        both deterministic per worm, so captures of the same family are
        position- and content-identical across VMs."""
        total = self.vm.address_space.page_count
        base = _worm_body_region(worm_name, total, body_pages)
        for i in range(body_pages):
            if not self._write_page((base + i) % total, _worm_page_content(worm_name, i)):
                return

    def _write_connection_to_disk(self) -> None:
        """Log-style disk writes for one connection, cycling within the
        personality's bounded disk working set."""
        cap = self.personality.disk_working_set_cap_blocks
        per = self.personality.disk_blocks_per_connection
        if cap == 0 or per == 0 or self.vm.disk.detached:
            return
        for __ in range(per):
            block = self._disk_cursor % cap
            self._disk_cursor += 1
            self.vm.disk.write(block)

    def _write_infection_to_disk(self, worm_name: str) -> None:
        """The worm installs itself: fresh blocks in a worm-specific
        region (deterministic per worm, so disk diffs cluster too)."""
        count = self.personality.infection_disk_blocks
        if count == 0 or self.vm.disk.detached:
            return
        import hashlib

        total = self.vm.disk.image.block_count
        cap = self.personality.disk_working_set_cap_blocks
        # Stable (cross-process) per-worm region, clear of the log area.
        region = int.from_bytes(
            hashlib.sha256(f"disk:{worm_name}".encode()).digest()[:4], "big"
        ) % 1000
        base = cap + region * 256
        for i in range(count):
            self.vm.disk.write((base + i) % total)

    def _dirty_connection_pages(self, count: int) -> None:
        """Dirty ``count`` pages of connection state, cycling within the
        personality's bounded connection region (buffer/heap reuse): the
        footprint plateaus instead of growing with every connection."""
        cap = self.personality.connection_working_set_cap_pages
        if cap == 0:
            return
        total = self.vm.address_space.page_count
        if self._conn_region_start is None:
            # Reserve the region right after wherever the cursor is now.
            self._conn_region_start = self._page_cursor % total
            self._page_cursor += cap
        for __ in range(count):
            page = (self._conn_region_start + self._conn_cursor % cap) % total
            self._conn_cursor += 1
            if not self._write_page(page):
                return

    def _touch_working_set(self) -> None:
        if not self._touched:
            self._touched = True
            self._dirty_pages(self.personality.base_working_set_pages)

    # ------------------------------------------------------------------ #
    # Inbound traffic
    # ------------------------------------------------------------------ #

    @property
    def infected(self) -> bool:
        return self.infection is not None

    def handle_packet(self, packet: Packet, now: float) -> List[Packet]:
        """Process one inbound packet; returns synchronous replies."""
        if self.vm.state is not VMState.RUNNING:
            return []
        self.vm.touch(now)
        self.vm.vif.account_in(packet.size)
        self._touch_working_set()

        if packet.is_icmp:
            return self._handle_icmp(packet)
        if packet.is_tcp:
            return self._handle_tcp(packet, now)
        if packet.is_udp:
            return self._handle_udp(packet, now)
        return []

    def _handle_icmp(self, packet: Packet) -> List[Packet]:
        if packet.icmp_type != ICMP_ECHO_REQUEST:
            return []
        return [self._account_out(packet.reply_template(size=packet.size))]

    def _handle_tcp(self, packet: Packet, now: float) -> List[Packet]:
        # A SYN/ACK (or RST) answering a connection this guest initiated:
        # the connection is up, deliver the queued payload on it.
        if packet.dst_port in self._pending_followups and (
            packet.flags.is_synack or packet.flags.has_rst
        ):
            dst_port, payload, size = self._pending_followups.pop(packet.dst_port)
            if packet.flags.is_synack:
                followup = Packet(
                    src=self.vm.ip,
                    dst=packet.src,
                    protocol=PROTO_TCP,
                    src_port=packet.dst_port,
                    dst_port=dst_port,
                    flags=_PSH_ACK,
                    payload=payload,
                    size=size,
                )
                self._transmit_if_running(followup)
            return []
        service = self.personality.service_at(PROTO_TCP, packet.dst_port)
        if packet.flags.is_syn:
            if service is None:
                rst = packet.reply_template()
                rst.flags = _RST_ACK
                return [self._account_out(rst)]
            synack = packet.reply_template()
            synack.flags = _SYN_ACK
            return [self._account_out(synack)]
        if service is None:
            return []  # mid-stream segment to a closed port: silently drop
        if _is_response_payload(packet.payload):
            return []  # responses never elicit responses (no reply loops)
        replies: List[Packet] = []
        if packet.payload:
            self.connections_handled += 1
            self._dirty_connection_pages(self.personality.pages_per_connection)
            self._write_connection_to_disk()
            infected_now = self._maybe_infect(packet, now)
            if not infected_now and service.banner:
                banner = packet.reply_template(payload=f"banner:{service.banner}")
                banner.flags = _PSH_ACK
                banner.size = 40 + len(service.banner)
                replies.append(self._account_out(banner))
        return replies

    def _handle_udp(self, packet: Packet, now: float) -> List[Packet]:
        if _is_response_payload(packet.payload):
            return []  # responses never elicit responses (no reply loops)
        service = self.personality.service_at(PROTO_UDP, packet.dst_port)
        if service is None:
            unreachable = packet.reply_template()
            unreachable.protocol = 1  # ICMP
            unreachable.icmp_type = ICMP_DEST_UNREACHABLE
            unreachable.size = 56
            return [self._account_out(unreachable)]
        self.connections_handled += 1
        self._dirty_connection_pages(self.personality.pages_per_connection)
        self._write_connection_to_disk()
        infected_now = self._maybe_infect(packet, now)
        if not infected_now and service.banner:
            reply = packet.reply_template(payload=f"banner:{service.banner}")
            return [self._account_out(reply)]
        return []

    def _account_out(self, packet: Packet) -> Packet:
        self.vm.vif.account_out(packet.size)
        return packet

    # ------------------------------------------------------------------ #
    # Infection and propagation
    # ------------------------------------------------------------------ #

    def _maybe_infect(self, packet: Packet, now: float) -> bool:
        """Compromise the guest if this packet exploits one of its flaws.

        Returns True if an infection happened *now*; re-exploitation of an
        already-infected guest is a no-op (like the real worms, which
        mutexed against double infection).
        """
        vuln = self.catalog.match(packet)
        if vuln is None or vuln.name not in self._vulns:
            return False
        if self.infected:
            return False
        self.infection = InfectionRecord(
            worm_name=vuln.name,
            vulnerability=vuln.name,
            source=packet.src,
            victim=self.vm.ip,
            time=now,
            vm_id=self.vm.vm_id,
            generation=self.generation,
        )
        self._write_worm_body(vuln.name, vuln.infection_pages)
        self._write_infection_to_disk(vuln.name)
        if vuln.destructive_disk_blocks and not self.vm.disk.detached:
            # Witty-class destruction: random blocks, different on every
            # victim (so disk diffs do NOT cluster, unlike the body).
            total = self.vm.disk.image.block_count
            for __ in range(vuln.destructive_disk_blocks):
                self.vm.disk.write(self.rng.randint(0, total - 1))
        if self.on_infection is not None:
            self.on_infection(self.infection)
        behavior = self.worm_behaviors.get(packet.payload)
        if behavior is not None and self.transmit is not None:
            self._scan_process = spawn(
                self.sim,
                self._scan_loop(behavior),
                name=f"scan-vm{self.vm.vm_id}",
            )
        return True

    def _scan_loop(self, behavior: ScanBehavior):
        """Infected-guest propagation loop (a simulation process)."""
        if behavior.dns_lookup_first and behavior.dns_server is not None:
            domain = behavior.rendezvous_domain or f"{behavior.worm_name}.example"
            query = udp_packet(
                self.vm.ip,
                behavior.dns_server,
                src_port=1024 + self.rng.randint(0, 60000),
                dst_port=53,
                payload=f"dns:query:{domain}",
            )
            self._transmit_if_running(query)
            yield Sleep(self.rng.uniform(0.01, 0.05))
        if behavior.beacon_interval is not None and self._beacon_process is None:
            self._beacon_process = spawn(
                self.sim,
                self._beacon_loop(behavior),
                name=f"beacon-vm{self.vm.vm_id}",
            )
        while self.vm.state is VMState.RUNNING and self.infected:
            yield Sleep(self.rng.exponential(behavior.scan_rate))
            if self.vm.state is not VMState.RUNNING:
                return
            target = self._pick_target(behavior)
            src_port = 1024 + self.rng.randint(0, 60000)
            if behavior.protocol == PROTO_TCP:
                # Real TCP worms connect first; the exploit follows the
                # handshake (see _handle_tcp's SYN/ACK branch).
                self._pending_followups[src_port] = (
                    behavior.dst_port, behavior.exploit_tag, behavior.payload_size,
                )
                scan = Packet(
                    src=self.vm.ip,
                    dst=target,
                    protocol=PROTO_TCP,
                    src_port=src_port,
                    dst_port=behavior.dst_port,
                    flags=TcpFlags.SYN,
                    size=40,
                )
            else:
                # Single-datagram worms (Slammer) exploit in one packet.
                scan = Packet(
                    src=self.vm.ip,
                    dst=target,
                    protocol=behavior.protocol,
                    src_port=src_port,
                    dst_port=behavior.dst_port,
                    payload=behavior.exploit_tag,
                    size=behavior.payload_size,
                )
            self._transmit_if_running(scan)

    def _pick_target(self, behavior: ScanBehavior) -> IPAddress:
        """Choose one scan victim per the worm's targeting strategy."""
        if behavior.targeting == "local":
            roll = self.rng.random()
            own = self.vm.ip.value
            if roll < behavior.local_same_slash16:
                return IPAddress((own & 0xFFFF0000) | self.rng.randint(0, 0xFFFF))
            if roll < behavior.local_same_slash16 + behavior.local_same_slash8:
                return IPAddress((own & 0xFF000000) | self.rng.randint(0, 0xFFFFFF))
        return IPAddress(self.rng.randint(0, (1 << 32) - 1))

    def _beacon_loop(self, behavior: ScanBehavior):
        """Bot check-in loop: periodically connect to the C&C server.

        The SYN is subject to containment like any initiated traffic;
        whether the bot ever reaches its controller is the policy's call
        (and the point of the botnet example).
        """
        assert behavior.cnc_server is not None
        assert behavior.beacon_interval is not None
        while self.vm.state is VMState.RUNNING and self.infected:
            src_port = 1024 + self.rng.randint(0, 60000)
            self._pending_followups[src_port] = (
                behavior.cnc_port, f"cnc:checkin:{behavior.worm_name}", 120,
            )
            syn = Packet(
                src=self.vm.ip,
                dst=behavior.cnc_server,
                protocol=PROTO_TCP,
                src_port=src_port,
                dst_port=behavior.cnc_port,
                flags=TcpFlags.SYN,
                size=40,
            )
            self.beacons_sent += 1
            self._transmit_if_running(syn)
            yield Sleep(behavior.beacon_interval)

    def _transmit_if_running(self, packet: Packet) -> None:
        if self.vm.state is VMState.RUNNING and self.transmit is not None:
            self.scans_emitted += 1
            self.vm.vif.account_out(packet.size)
            self.transmit(self.vm, packet)

    def stop(self) -> None:
        """Halt propagation (called when the VM is reclaimed or detained)."""
        if self._scan_process is not None:
            self._scan_process.cancel()
            self._scan_process = None
        if self._beacon_process is not None:
            self._beacon_process.cancel()
            self._beacon_process = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = f"infected:{self.infection.worm_name}" if self.infection else "clean"
        return f"<GuestHost vm={self.vm.vm_id} {self.personality.name} {status}>"
