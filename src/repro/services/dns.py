"""A minimal DNS responder for the "allow DNS" containment policy.

The paper's example of a *selectively permissive* containment policy is to
let honeypots resolve names — many worms and bots do a lookup before
propagating or phoning home, and refusing it would reveal the farm — while
still blocking everything else. The gateway redirects permitted DNS
queries to an internal resolver rather than the Internet, so even the
allowed traffic never leaves the farm. This class is that resolver.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.addr import IPAddress
from repro.net.packet import PROTO_UDP, Packet

__all__ = ["DnsServer"]


class DnsServer:
    """Answers UDP/53 queries with deterministic synthetic records.

    Names are not parsed — any query payload gets an answer — because the
    experiments only need the *transaction* to complete. A query log is
    kept: in the real deployment, lookups by captured malware are
    themselves valuable intelligence (rendezvous domains).
    """

    def __init__(self, address: IPAddress, answer: Optional[IPAddress] = None) -> None:
        self.address = address
        self.answer = answer or IPAddress.parse("198.18.0.1")
        self.queries_answered = 0
        self.query_log: List[Packet] = []

    def handle_query(self, packet: Packet) -> Optional[Packet]:
        """Answer a DNS query packet; returns the response or None if the
        packet is not a UDP/53 query addressed to this server."""
        if packet.protocol != PROTO_UDP or packet.dst_port != 53:
            return None
        if packet.dst != self.address:
            return None
        self.queries_answered += 1
        self.query_log.append(packet)
        return packet.reply_template(payload=f"dns:answer:{self.answer}", size=90)

    def rendezvous_domains(self) -> List[str]:
        """Domains captured malware tried to resolve, in query order.

        Queries carry payloads of the form ``dns:query:<domain>``; bare
        ``dns:query`` payloads (no domain encoded) are skipped. These are
        the farm's rendezvous intelligence: the names a worm or bot uses
        to find its controller.
        """
        domains = []
        for query in self.query_log:
            __, __, domain = query.payload.partition("dns:query:")
            if domain:
                domains.append(domain)
        return domains

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DnsServer {self.address} answered={self.queries_answered}>"
