"""Guest behaviour: what a honeypot VM *does* with the traffic it receives.

Fidelity is the point of a honeyfarm — each impersonated address is backed
by a real executing system. In the reproduction the "real system" is a
protocol-level behavioural model:

* :mod:`repro.services.vulnerabilities` — the exploit/vulnerability
  catalog (which payloads compromise which services).
* :mod:`repro.services.personality` — host personalities: open ports,
  banners, vulnerabilities, and memory working-set parameters.
* :mod:`repro.services.guest` — the per-VM guest model: answers probes,
  accepts connections, gets infected, dirties memory pages, and (once
  infected) emits the worm's outbound scans.
* :mod:`repro.services.dns` — a resolver the containment policy can
  choose to allow (the paper's "permit DNS" example).
"""

from repro.services.dns import DnsServer
from repro.services.guest import GuestHost, InfectionRecord
from repro.services.personality import Personality, PersonalityRegistry, default_registry
from repro.services.vulnerabilities import ServiceDef, Vulnerability, VulnerabilityCatalog

__all__ = [
    "DnsServer",
    "GuestHost",
    "InfectionRecord",
    "Personality",
    "PersonalityRegistry",
    "ServiceDef",
    "Vulnerability",
    "VulnerabilityCatalog",
    "default_registry",
]
