"""Host personalities: the guest configuration a snapshot is built from.

A personality determines how a honeypot answers the network — which ports
are open, what banners services speak, which vulnerabilities are present —
and how much memory its activity dirties. Reference snapshots are built
per personality; the honeyfarm can run several side by side (the paper
notes multiple reference images per host, e.g. different Windows builds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.packet import PROTO_TCP, PROTO_UDP
from repro.services.vulnerabilities import ServiceDef, Vulnerability, VulnerabilityCatalog

__all__ = ["Personality", "PersonalityRegistry", "default_registry"]


@dataclass(frozen=True)
class Personality:
    """A guest configuration.

    Memory parameters (all in 4 KiB pages) drive the delta-virtualization
    experiments:

    * ``base_working_set_pages`` — dirtied when the clone first runs
      (scheduler state, timers, network stack warm-up).
    * ``pages_per_connection`` — dirtied for each handled connection
      (socket buffers, service heap churn).
    * ``connection_working_set_cap_pages`` — the *plateau*: services
      reuse buffers and heap, so connection churn cycles within a bounded
      region instead of growing the footprint forever. Without this cap a
      long-lived busy honeypot's private memory would grow linearly with
      connections handled, which real guests do not do.
    * Per-vulnerability ``infection_pages`` apply on compromise.
    """

    name: str
    services: Tuple[ServiceDef, ...]
    vulnerability_names: Tuple[str, ...]
    base_working_set_pages: int = 192
    pages_per_connection: int = 6
    connection_working_set_cap_pages: int = 96
    disk_blocks_per_connection: int = 1
    disk_working_set_cap_blocks: int = 64
    infection_disk_blocks: int = 48

    def __post_init__(self) -> None:
        if self.base_working_set_pages < 0:
            raise ValueError("base_working_set_pages must be >= 0")
        if self.pages_per_connection < 0:
            raise ValueError("pages_per_connection must be >= 0")
        if self.connection_working_set_cap_pages < 0:
            raise ValueError("connection_working_set_cap_pages must be >= 0")
        if self.disk_blocks_per_connection < 0:
            raise ValueError("disk_blocks_per_connection must be >= 0")
        if self.disk_working_set_cap_blocks < 0:
            raise ValueError("disk_working_set_cap_blocks must be >= 0")
        if self.infection_disk_blocks < 0:
            raise ValueError("infection_disk_blocks must be >= 0")
        seen = set()
        for svc in self.services:
            key = (svc.protocol, svc.port)
            if key in seen:
                raise ValueError(f"duplicate service endpoint {key} in {self.name!r}")
            seen.add(key)

    def service_at(self, protocol: int, port: int) -> Optional[ServiceDef]:
        for svc in self.services:
            if svc.protocol == protocol and svc.port == port:
                return svc
        return None

    def listens_on(self, protocol: int, port: int) -> bool:
        return self.service_at(protocol, port) is not None

    def vulnerabilities(self, catalog: VulnerabilityCatalog) -> List[Vulnerability]:
        """Resolve this personality's vulnerability names in ``catalog``."""
        return [catalog.get(name) for name in self.vulnerability_names]


class PersonalityRegistry:
    """Named personalities plus the vulnerability catalog they draw from."""

    def __init__(self, catalog: Optional[VulnerabilityCatalog] = None) -> None:
        self.catalog = catalog or VulnerabilityCatalog.default()
        self._personalities: Dict[str, Personality] = {}

    def register(self, personality: Personality) -> None:
        if personality.name in self._personalities:
            raise ValueError(f"duplicate personality: {personality.name!r}")
        for vuln_name in personality.vulnerability_names:
            if vuln_name not in self.catalog:
                raise ValueError(
                    f"personality {personality.name!r} references unknown"
                    f" vulnerability {vuln_name!r}"
                )
        self._personalities[personality.name] = personality

    def get(self, name: str) -> Personality:
        return self._personalities[name]

    def __contains__(self, name: str) -> bool:
        return name in self._personalities

    def names(self) -> List[str]:
        return sorted(self._personalities)


def default_registry() -> PersonalityRegistry:
    """The stock personalities used by examples and experiments.

    ``windows-default`` mirrors the paper's unpatched-Windows reference
    image: the full mid-2000s attack surface. ``linux-server`` answers web
    and SSH probes but carries none of the catalog's Windows flaws — it
    exists so experiments can show fidelity (banner differences, refused
    connections) across personalities.
    """
    registry = PersonalityRegistry()
    registry.register(
        Personality(
            name="windows-default",
            services=(
                ServiceDef("msrpc", PROTO_TCP, 135, banner="MSRPC"),
                ServiceDef("netbios-ssn", PROTO_TCP, 139, banner="NBT"),
                ServiceDef("microsoft-ds", PROTO_TCP, 445, banner="SMB"),
                ServiceDef("iis-http", PROTO_TCP, 80, banner="Microsoft-IIS/5.0"),
                ServiceDef("mssql-monitor", PROTO_UDP, 1434, banner="MSSQL"),
            ),
            vulnerability_names=("slammer", "blaster", "codered", "sasser", "nimda"),
            base_working_set_pages=192,
            pages_per_connection=6,
        )
    )
    registry.register(
        Personality(
            name="windows-iss",
            services=(
                ServiceDef("msrpc", PROTO_TCP, 135, banner="MSRPC"),
                ServiceDef("microsoft-ds", PROTO_TCP, 445, banner="SMB"),
                ServiceDef("blackice", PROTO_UDP, 4000, banner="ISS"),
            ),
            vulnerability_names=("witty",),
            base_working_set_pages=208,  # the security suite itself
            pages_per_connection=6,
        )
    )
    registry.register(
        Personality(
            name="windows-patched",
            services=(
                ServiceDef("msrpc", PROTO_TCP, 135, banner="MSRPC"),
                ServiceDef("netbios-ssn", PROTO_TCP, 139, banner="NBT"),
                ServiceDef("microsoft-ds", PROTO_TCP, 445, banner="SMB"),
                ServiceDef("iis-http", PROTO_TCP, 80, banner="Microsoft-IIS/6.0"),
                ServiceDef("mssql-monitor", PROTO_UDP, 1434, banner="MSSQL"),
            ),
            vulnerability_names=(),  # same surface, flaws fixed
            base_working_set_pages=200,
            pages_per_connection=6,
        )
    )
    registry.register(
        Personality(
            name="linux-server",
            services=(
                ServiceDef("apache-http", PROTO_TCP, 80, banner="Apache/1.3.33"),
                ServiceDef("openssh", PROTO_TCP, 22, banner="SSH-2.0-OpenSSH_3.9"),
            ),
            vulnerability_names=(),
            base_working_set_pages=128,
            pages_per_connection=4,
        )
    )
    return registry
