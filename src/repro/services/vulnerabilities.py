"""Service and vulnerability definitions.

Packets carry semantic payload tags (see :mod:`repro.net.packet`); an
exploit is a payload of the form ``exploit:<worm-name>``. A
:class:`Vulnerability` binds such a tag to the service it compromises,
and a :class:`VulnerabilityCatalog` answers the only question the guest
model needs on the hot path: *does this packet compromise this service?*

The default catalog models the mid-2000s worm population the paper's
deployment would have observed — fast UDP worms (Slammer-class), TCP
service worms (Blaster/Sasser-class), and an HTTP worm (CodeRed-class) —
with parameters exposed so experiments can define synthetic worms freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.net.packet import PROTO_TCP, PROTO_UDP, Packet

__all__ = ["ServiceDef", "Vulnerability", "VulnerabilityCatalog", "EXPLOIT_PREFIX"]

EXPLOIT_PREFIX = "exploit:"
"""Payload tags starting with this are exploit attempts."""


@dataclass(frozen=True)
class ServiceDef:
    """A network service a personality exposes."""

    name: str
    protocol: int
    port: int
    banner: str = ""

    def __post_init__(self) -> None:
        if self.protocol not in (PROTO_TCP, PROTO_UDP):
            raise ValueError(f"service protocol must be TCP or UDP: {self.protocol!r}")
        if not (0 < self.port <= 65535):
            raise ValueError(f"service port out of range: {self.port!r}")


@dataclass(frozen=True)
class Vulnerability:
    """An exploitable flaw in a service.

    ``exploit_tag`` is the payload that triggers it (``exploit:slammer``);
    ``infection_pages`` is how many memory pages the resulting infection
    dirties (worm body, unpacked payload, scan state), which feeds the
    delta-virtualization memory results.
    """

    name: str
    protocol: int
    port: int
    exploit_tag: str
    infection_pages: int = 256
    destructive_disk_blocks: int = 0  # Witty-class: random disk corruption

    def __post_init__(self) -> None:
        if not self.exploit_tag.startswith(EXPLOIT_PREFIX):
            raise ValueError(
                f"exploit_tag must start with {EXPLOIT_PREFIX!r}: {self.exploit_tag!r}"
            )
        if self.infection_pages < 0:
            raise ValueError(f"infection_pages must be >= 0: {self.infection_pages!r}")
        if self.destructive_disk_blocks < 0:
            raise ValueError(
                f"destructive_disk_blocks must be >= 0: {self.destructive_disk_blocks!r}"
            )

    def triggered_by(self, packet: Packet) -> bool:
        """Whether ``packet`` is an exploit attempt against this flaw."""
        return (
            packet.protocol == self.protocol
            and packet.dst_port == self.port
            and packet.payload == self.exploit_tag
        )


class VulnerabilityCatalog:
    """Registry of vulnerabilities, indexed by (protocol, port) for the
    per-packet lookup and by name for workload configuration."""

    def __init__(self, vulnerabilities: Optional[Iterable[Vulnerability]] = None) -> None:
        self._by_name: Dict[str, Vulnerability] = {}
        self._by_endpoint: Dict[Tuple[int, int], List[Vulnerability]] = {}
        for vuln in vulnerabilities or []:
            self.register(vuln)

    def register(self, vuln: Vulnerability) -> None:
        if vuln.name in self._by_name:
            raise ValueError(f"duplicate vulnerability name: {vuln.name!r}")
        self._by_name[vuln.name] = vuln
        self._by_endpoint.setdefault((vuln.protocol, vuln.port), []).append(vuln)

    def get(self, name: str) -> Vulnerability:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def match(self, packet: Packet) -> Optional[Vulnerability]:
        """The vulnerability this packet exploits, if any."""
        candidates = self._by_endpoint.get((packet.protocol, packet.dst_port))
        if not candidates:
            return None
        for vuln in candidates:
            if vuln.triggered_by(packet):
                return vuln
        return None

    @classmethod
    def default(cls) -> "VulnerabilityCatalog":
        """The mid-2000s catalog described in the module docstring."""
        return cls(
            [
                Vulnerability(
                    name="slammer",
                    protocol=PROTO_UDP,
                    port=1434,
                    exploit_tag="exploit:slammer",
                    infection_pages=64,  # single-packet worm, tiny resident body
                ),
                Vulnerability(
                    name="blaster",
                    protocol=PROTO_TCP,
                    port=135,
                    exploit_tag="exploit:blaster",
                    infection_pages=320,
                ),
                Vulnerability(
                    name="codered",
                    protocol=PROTO_TCP,
                    port=80,
                    exploit_tag="exploit:codered",
                    infection_pages=512,
                ),
                Vulnerability(
                    name="sasser",
                    protocol=PROTO_TCP,
                    port=445,
                    exploit_tag="exploit:sasser",
                    infection_pages=384,
                ),
                Vulnerability(
                    name="nimda",
                    protocol=PROTO_TCP,
                    port=80,
                    exploit_tag="exploit:nimda",
                    infection_pages=448,
                ),
                Vulnerability(
                    name="witty",
                    protocol=PROTO_UDP,
                    port=4000,
                    exploit_tag="exploit:witty",
                    infection_pages=48,  # tiny single-packet worm
                    destructive_disk_blocks=128,  # it corrupted random disk
                ),
            ]
        )

    def __len__(self) -> int:
        return len(self._by_name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VulnerabilityCatalog({self.names()})"
