"""Shared machinery for closed-loop adversary agents.

An agent is an *external* actor: it injects packets into the farm
through the same front door the telescope workload uses and observes
exactly what a real attacker on the Internet would — the packets the
gateway lets out. The observation hook chain-wraps
``gateway.external_sink`` (the farm's existing escape collector keeps
seeing everything), so agents are plain observers with no privileged
view of farm internals.

Determinism: every decision fires from a simulator event and every
random draw comes from the agent's private seeded stream, so a given
(scenario seed, agent index) replays bit-identically — which is what
lets the conformance harness pin adversary verdicts in golden digests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress
from repro.net.packet import Packet, TcpFlags
from repro.obs import recorder as _obs
from repro.services.guest import InfectionRecord
from repro.sim.rand import RandomStream

__all__ = ["AdversaryAgent", "AdversaryReport", "CNC_PORT", "is_checkin"]

#: The C2 listener port bot check-ins target (ScanBehavior's default).
CNC_PORT = 6667


def is_checkin(packet: Packet) -> bool:
    """True for anything a C2 listener would log as a bot phoning home.

    The guest's beacon loop opens with a bare SYN and only sends the
    ``cnc:checkin:`` payload after a completed handshake — which never
    happens, because the agent doesn't answer. The SYN arriving at the
    listener port is already the containment evidence the attacker
    wants, so count it (and any payload-bearing check-in) directly.
    """
    if packet.payload.startswith("cnc:checkin:"):
        return True
    return (
        packet.is_tcp
        and packet.dst_port == CNC_PORT
        and bool(packet.flags & TcpFlags.SYN)
        and not packet.flags & TcpFlags.ACK
    )


@dataclass
class AdversaryReport:
    """What one adversary agent did and concluded — the unit the
    analysis layer, the oracles, and the benchmark all consume."""

    name: str
    kind: str
    tier: int
    start: float
    end: Optional[float] = None
    verdict: Optional[str] = None  # completed | aborted | incomplete
    abort_stage: Optional[str] = None
    tell_total: float = 0.0
    tells: Tuple[Tuple[str, float, str], ...] = ()
    probes_sent: int = 0
    replies_seen: int = 0
    captures: Tuple[Tuple[float, str], ...] = ()
    checkins_seen: int = 0
    stage2_pushed: int = 0
    lateral_infections: int = 0

    @property
    def dwell_time(self) -> Optional[float]:
        """Attacker-engagement window: first probe to terminal verdict."""
        if self.end is None:
            return None
        return self.end - self.start

    def summary(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "tier": self.tier,
            "verdict": self.verdict,
            "abort_stage": self.abort_stage,
            "tell_total": round(self.tell_total, 6),
            "tells": [list(t) for t in self.tells],
            "dwell_time": self.dwell_time,
            "probes_sent": self.probes_sent,
            "replies_seen": self.replies_seen,
            "captures": [list(c) for c in self.captures],
            "checkins_seen": self.checkins_seen,
            "stage2_pushed": self.stage2_pushed,
            "lateral_infections": self.lateral_infections,
        }


class AdversaryAgent:
    """Base class: sink wrapping, seeded injection, capture attribution.

    Subclasses schedule their decision events in :meth:`attach` (called
    before ``farm.run``) and fill in :attr:`report`.
    """

    kind = "agent"

    def __init__(
        self,
        farm: Honeyfarm,
        rng: RandomStream,
        source: IPAddress,
        targets: Tuple[IPAddress, ...],
        start: float,
        deadline: float,
        name: str,
        tier: int = 0,
    ) -> None:
        if not targets:
            raise ValueError(f"agent {name!r} needs at least one target")
        if deadline <= start:
            raise ValueError(
                f"agent {name!r} deadline {deadline!r} must be after its"
                f" start {start!r}"
            )
        self.farm = farm
        self.rng = rng
        self.source = source
        self.targets = tuple(targets)
        self.start = start
        self.deadline = deadline
        self.name = name
        self.report = AdversaryReport(
            name=name, kind=self.kind, tier=tier, start=start
        )
        #: Every (src, dst) pair this agent injected, for the
        #: containment-safety oracle's inbound-pair whitelist.
        self.injected_pairs: List[Tuple[str, str]] = []
        self._captures: List[Tuple[float, str]] = []
        self._terminal = False

    # -- wiring ----------------------------------------------------------- #

    def attach(self) -> None:
        """Wire observation hooks and schedule the campaign's events.

        Must run *after* the world has installed its own external sink
        (the chain preserves it) and *before* ``farm.run``.
        """
        inner: Optional[Callable[[Packet], None]] = self.farm.gateway.external_sink

        def observing_sink(packet: Packet) -> None:
            self._observe(packet)
            if inner is not None:
                inner(packet)

        self.farm.gateway.external_sink = observing_sink
        self.farm.add_infection_listener(self._on_infection)
        self.farm.sim.schedule_at(self.start, self._begin)
        self.farm.sim.schedule_at(self.deadline, self._finalize)
        self._schedule()

    def _schedule(self) -> None:
        """Subclass hook: schedule stage events (start/deadline are
        already on the clock)."""

    def _begin(self) -> None:
        """Subclass hook: the campaign's first action."""

    # -- plumbing --------------------------------------------------------- #

    def inject(self, packet: Packet) -> None:
        """Send one packet into the farm, bookkeeping for the oracles."""
        self.report.probes_sent += 1
        self.injected_pairs.append((str(packet.src), str(packet.dst)))
        self._emit(
            "inject", dst=str(packet.dst), protocol=packet.protocol,
            dst_port=packet.dst_port,
        )
        self.farm.inject(packet)

    def _observe(self, packet: Packet) -> None:
        """External packet left the farm; count it if it is for us."""
        if packet.dst == self.source:
            self.report.replies_seen += 1
            self.on_reply(packet)

    def on_reply(self, packet: Packet) -> None:
        """Subclass hook: one reply addressed to this agent."""

    def _on_infection(self, record: InfectionRecord) -> None:
        if record.source == self.source:
            self._captures.append((record.time, str(record.victim)))
            self._emit("capture", victim=str(record.victim))

    def _emit(self, event: str, **fields) -> None:
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.farm.sim.now, "adversary", event,
                agent=self.name, **fields,
            )

    def _count(self, name: str) -> None:
        self.farm.metrics.counter(f"adversary.{name}").increment()

    # -- terminal states -------------------------------------------------- #

    def conclude(self, verdict: str, abort_stage: Optional[str] = None) -> None:
        if self._terminal:
            return
        self._terminal = True
        self.report.end = self.farm.sim.now
        self.report.verdict = verdict
        self.report.abort_stage = abort_stage
        self.report.captures = tuple(self._captures)
        self._count(f"verdict_{verdict}")
        self._emit(
            "verdict", verdict=verdict, stage=abort_stage,
            tell_total=self.report.tell_total,
            captures=len(self._captures),
        )

    def _finalize(self) -> None:
        """Deadline backstop: every agent reaches a terminal verdict
        before the run ends, whatever the scenario's timing."""
        self.conclude("incomplete")
        # Captures recorded between an earlier verdict and the deadline
        # (lateral spread keeps running after a campaign concludes).
        self.report.captures = tuple(self._captures)
