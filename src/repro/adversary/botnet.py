"""Multi-stage botnet campaigns.

A :class:`BotnetCampaign` drives the full bot lifecycle through the
existing worm/flow machinery rather than a parallel code path: the
campaign registers a C2-flavoured :class:`ScanBehavior` for its worm
(check-in beaconing to the attacker's server, locality-biased lateral
targeting), injects the initial compromises from the C2 address, then
pushes a staged second payload to every victim it learns of. Lateral
movement is emergent — infected guests run their normal scan loops, so
under ``reflect`` containment the campaign hops VM-to-VM inside the
farm, chaining infection generations exactly like a real outbreak.

Every C2 check-in, payload push, and lateral flow rides the gateway's
ordinary dispatch/containment/ledger paths, which is what the
CampaignLedgerOracle leans on: nothing the campaign does can move a
packet that the conservation ledger does not see.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.adversary.base import AdversaryAgent, is_checkin
from repro.net.packet import PROTO_UDP, TcpFlags, tcp_packet, udp_packet
from repro.services.guest import InfectionRecord
from repro.workloads.worms import KNOWN_WORMS

__all__ = ["BotnetCampaign"]

#: Seconds between a victim's compromise and its stage-2 payload push.
STAGE2_DELAY = 2.0

#: Default bot check-in cadence.
BEACON_INTERVAL = 1.5

#: In-farm scan-rate ceiling for campaign bots (the conformance worlds'
#: worm throttle).
BOT_SCAN_RATE = 2.0

#: Stage-2 pushes stop after this many victims — a real C2 stages the
#: payload to the footholds it needs, not the whole epidemic.
MAX_STAGE2_PUSHES = 8

_PSH_ACK = TcpFlags.PSH | TcpFlags.ACK


class BotnetCampaign(AdversaryAgent):
    """C2 check-in, staged payload download, lateral movement."""

    kind = "botnet"

    def __init__(
        self,
        *args,
        worm: str = "slammer",
        beacon_interval: float = BEACON_INTERVAL,
        **kwargs,
    ) -> None:
        if worm not in KNOWN_WORMS:
            raise ValueError(f"unknown worm {worm!r}")
        kwargs.setdefault("tier", 0)
        super().__init__(*args, **kwargs)
        self.worm = worm
        self.beacon_interval = beacon_interval
        self._stage2_scheduled = 0

    # -- stages ----------------------------------------------------------- #

    def _begin(self) -> None:
        self._count("campaigns")
        spec = KNOWN_WORMS[self.worm].with_scan_rate(BOT_SCAN_RATE)
        bot = replace(
            spec.behavior(),
            cnc_server=self.source,
            beacon_interval=self.beacon_interval,
            targeting="local",
        )
        self.farm.register_worm(bot)
        for i, target in enumerate(self.targets):
            self._send_exploit(target, i)

    def _send_exploit(self, target, index: int) -> None:
        spec = KNOWN_WORMS[self.worm]
        if spec.protocol == PROTO_UDP:
            packet = udp_packet(
                self.source, target, 50000 + index, spec.port,
                payload=spec.exploit_tag, size=404,
            )
        else:
            packet = tcp_packet(
                self.source, target, 50000 + index, spec.port,
                flags=_PSH_ACK, payload=spec.exploit_tag, size=404,
            )
        self.inject(packet)

    def _push_stage2(self, victim) -> None:
        if self._terminal:
            return
        self.report.stage2_pushed += 1
        self._emit("stage2", victim=str(victim))
        spec = KNOWN_WORMS[self.worm]
        payload = f"stage:{self.worm}:2"
        # Port derives from the victim address, not push order: infection
        # *order* legitimately varies across clone modes, and the
        # equivalence oracles compare egress as a timing-free multiset.
        src_port = 51000 + (victim.value % 4096)
        if spec.protocol == PROTO_UDP:
            packet = udp_packet(
                self.source, victim, src_port, spec.port, payload=payload,
            )
        else:
            packet = tcp_packet(
                self.source, victim, src_port, spec.port,
                flags=_PSH_ACK, payload=payload,
            )
        self.inject(packet)

    # -- observation ------------------------------------------------------ #

    def _on_infection(self, record: InfectionRecord) -> None:
        super()._on_infection(record)
        if record.worm_name != self.worm:
            return
        if record.generation >= 1:
            self.report.lateral_infections += 1
            self._emit(
                "lateral", victim=str(record.victim),
                generation=record.generation,
            )
        # Stage only the campaign's own direct compromises: the C2 has
        # no channel to learn of trace-driven or lateral victims (its
        # check-ins are contained), and the direct set is identical in
        # every world while lateral arrival order is not.
        if record.source != self.source:
            return
        # Cap at schedule time: a burst of infections lands well before
        # the first delayed push runs, so the executed counter lags.
        if self._stage2_scheduled < MAX_STAGE2_PUSHES:
            self._stage2_scheduled += 1
            self.farm.sim.schedule(STAGE2_DELAY, self._push_stage2, record.victim)

    def on_reply(self, packet) -> None:
        if is_checkin(packet):
            self.report.checkins_seen += 1
            self._count("checkins")
            self._emit("checkin", src=str(packet.src))

    # -- terminal --------------------------------------------------------- #

    def _finalize(self) -> None:
        """A campaign has no abort path; it runs its window to the end."""
        self.conclude("completed")
        self.report.captures = tuple(self._captures)
