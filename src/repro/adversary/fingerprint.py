"""Honeypot-aware fingerprinting scanners.

A :class:`FingerprintScanner` models the "gotta catch 'em all" attacker:
before committing its exploit, it probes the target population for
simulation tells and aborts the moment the accumulated
:mod:`~repro.adversary.tells` score trips. Sophistication is a ladder of
tiers, each adding one detection capability:

====  =========================================================
tier  capability added
====  =========================================================
0     none — classic worm behaviour, exploit on sight
1     cross-address identity check (banner monoculture)
2     timing analysis (clone-latency band + cross-address
      first-reply correlation)
3     active containment-echo test (sacrificial bot implant
      whose C2 is the scanner's own listener)
====  =========================================================

The campaign is staged on the event clock: recon probes at ``start``,
banner grabs once clones have settled, verdict at the analyze step, then
either abort, the tier-3 echo test, or full exploitation. Every stage
reads only what came back through the gateway — the agent has no
privileged view of the farm.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.adversary import tells as _tells
from repro.adversary.base import AdversaryAgent, is_checkin
from repro.net.packet import PROTO_UDP, TcpFlags, tcp_packet, udp_packet
from repro.workloads.worms import KNOWN_WORMS

__all__ = ["FingerprintScanner"]

#: TCP service every stock personality exposes with a distinguishing
#: banner — the natural identity-probe port.
PROBE_PORT = 80

#: Stage offsets (seconds after ``start``). Banner grabs wait out the
#: slowest clone pipeline in :data:`CLONE_LATENCY_BAND`; the analyze
#: step waits out the banner replies.
BANNER_DELAY = 3.0
ANALYZE_DELAY = 4.5

#: The echo implant beacons every second; silence for a full window is
#: the containment verdict.
ECHO_BEACON_INTERVAL = 1.0
ECHO_WINDOW = 3.0

#: Dwell charged for the exploitation stage itself (payload staging).
EXPLOIT_LINGER = 1.0

#: In-farm scan-rate ceiling for the sacrificial implant, mirroring the
#: conformance worlds' worm throttle.
IMPLANT_SCAN_RATE = 2.0

_PSH_ACK = TcpFlags.PSH | TcpFlags.ACK


class FingerprintScanner(AdversaryAgent):
    """Multistage fingerprinting attacker at a given sophistication tier."""

    kind = "fingerprint"

    def __init__(self, *args, worm: str = "slammer", **kwargs) -> None:
        tier = kwargs.pop("tier", 0)
        if not (0 <= tier <= 3):
            raise ValueError(f"fingerprint tier must be in [0, 3]: {tier!r}")
        if worm not in KNOWN_WORMS:
            raise ValueError(f"unknown worm {worm!r}")
        super().__init__(*args, tier=tier, **kwargs)
        self.tier = tier
        self.worm = worm
        self.score = _tells.TellScore()
        # Recon evidence, all keyed by probed address.
        self._probe_sent_at: Dict[str, float] = {}
        self._first_reply: Dict[str, float] = {}
        self._banners: Dict[str, Tuple[str, ...]] = {}
        self._echo_target = None
        # At most this many recon probes; the exploit stage covers every
        # target regardless.
        self._recon_targets = self.targets[: max(
            _tells.IDENTITY_MIN_ADDRESSES, min(len(self.targets), 6)
        )]

    # -- stages ----------------------------------------------------------- #

    def _schedule(self) -> None:
        if self.tier >= 1:
            sim = self.farm.sim
            sim.schedule_at(self.start + BANNER_DELAY, self._grab_banners)
            sim.schedule_at(self.start + ANALYZE_DELAY, self._analyze)

    def _begin(self) -> None:
        self._count("campaigns")
        if self.tier == 0:
            # No fingerprinting: straight to the exploit, worm-style.
            self._exploit(self.targets)
            return
        now = self.farm.sim.now
        for i, target in enumerate(self._recon_targets):
            self._probe_sent_at[str(target)] = now
            self.inject(tcp_packet(
                self.source, target, 40000 + i, PROBE_PORT,
                flags=TcpFlags.SYN,
            ))

    def _grab_banners(self) -> None:
        if self._terminal:
            return
        for i, target in enumerate(self._recon_targets):
            self.inject(tcp_packet(
                self.source, target, 40000 + i, PROBE_PORT,
                flags=_PSH_ACK, payload="fp:banner-probe",
            ))

    def _analyze(self) -> None:
        if self._terminal:
            return
        self.score.add(_tells.identity_tell(self._banners))
        if self.tier >= 2:
            self.score.add(
                _tells.clone_latency_tell(list(self._first_reply.values()))
            )
            self.score.add(_tells.timing_variance_tell(self._first_reply))
        self._record_score()
        if self.score.tripped():
            self._count("aborts")
            self.conclude("aborted", abort_stage="recon")
            return
        if self.tier >= 3:
            self._echo_test()
        else:
            self._exploit(self.targets)

    def _echo_test(self) -> None:
        """Implant one sacrificial bot whose C2 is this scanner."""
        self._echo_target = self._recon_targets[0]
        spec = KNOWN_WORMS[self.worm].with_scan_rate(IMPLANT_SCAN_RATE)
        implant = replace(
            spec.behavior(),
            cnc_server=self.source,
            beacon_interval=ECHO_BEACON_INTERVAL,
            targeting="local",
        )
        self.farm.register_worm(implant)
        self._emit("echo_implant", target=str(self._echo_target))
        self._send_exploit(self._echo_target, 0)
        self.farm.sim.schedule_at(
            self.farm.sim.now + ECHO_WINDOW, self._echo_evaluate
        )

    def _echo_evaluate(self) -> None:
        if self._terminal:
            return
        self.score.add(_tells.containment_echo_tell(self.report.checkins_seen))
        self._record_score()
        if self.score.tripped():
            self._count("aborts")
            self.conclude("aborted", abort_stage="echo")
            return
        remaining = tuple(t for t in self.targets if t != self._echo_target)
        self._exploit(remaining)

    def _exploit(self, targets) -> None:
        for i, target in enumerate(targets):
            self._send_exploit(target, i)
        self._count("exploits")
        self.farm.sim.schedule_at(
            self.farm.sim.now + EXPLOIT_LINGER, self._complete
        )

    def _complete(self) -> None:
        self.conclude("completed")

    # -- observation ------------------------------------------------------ #

    def on_reply(self, packet) -> None:
        addr = str(packet.src)
        sent = self._probe_sent_at.get(addr)
        if sent is not None and addr not in self._first_reply:
            self._first_reply[addr] = self.farm.sim.now - sent
        payload = packet.payload
        if payload.startswith("banner:"):
            seen = self._banners.get(addr, ())
            if payload not in seen:
                self._banners[addr] = seen + (payload,)
        elif is_checkin(packet):
            self.report.checkins_seen += 1
            self._emit("checkin", src=addr)

    # -- helpers ---------------------------------------------------------- #

    def _send_exploit(self, target, index: int) -> None:
        spec = KNOWN_WORMS[self.worm]
        if spec.protocol == PROTO_UDP:
            packet = udp_packet(
                self.source, target, 50000 + index, spec.port,
                payload=spec.exploit_tag, size=404,
            )
        else:
            packet = tcp_packet(
                self.source, target, 50000 + index, spec.port,
                flags=_PSH_ACK, payload=spec.exploit_tag, size=404,
            )
        self.inject(packet)

    def _record_score(self) -> None:
        self.report.tell_total = self.score.total
        self.report.tells = self.score.as_tuples()
