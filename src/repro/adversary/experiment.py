"""The dwell-time / capture-rate experiment: attackers vs deception.

One driver shared by the ``potemkin adversary`` CLI and
``benchmarks/bench_adversary.py``: for each deception arm (off / on) it
runs one farm per scanner sophistication tier plus one botnet campaign,
all from the same root seed, and reports the headline metric — attacker
dwell time and capture rate vs sophistication.

The expected shape (and what the benchmark gates on):

* deception **off**: tier-0/1 attackers exploit freely; tier-2/3
  fingerprinters read the monoculture + machine-identical timing and
  abort *before* committing malware — the farm captures nothing from
  exactly the attackers it most wants to study.
* deception **on**: personalities and reply timing decorrelate, the
  passive tells vanish, and tier-2 attackers walk in. Tier-3's active
  containment-echo test still fires unless containment is opened — but
  only after the sacrificial implant has already been captured.

Everything is seed-deterministic: running the experiment twice at one
seed must produce byte-identical reports (:func:`experiment_digest`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Tuple

from repro.adversary.botnet import BotnetCampaign
from repro.adversary.deception import DeceptionController
from repro.adversary.fingerprint import FingerprintScanner
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress, Prefix
from repro.sim.rand import SeedSequence

__all__ = [
    "FINGERPRINT_TIERS",
    "experiment_digest",
    "run_adversary_experiment",
]

#: Tiers that actually fingerprint before exploiting — the population
#: the headline capture-rate comparison is about. Tier 0/1 attackers are
#: the naive control: deception costs some of their captures (a slice of
#: the randomized population is invulnerable) but they were never the
#: attackers a honeyfarm loses.
FINGERPRINT_TIERS = (2, 3)

DEFAULT_PREFIX = "10.18.0.0/24"
SCANNER_SOURCE = "198.51.100.77"
C2_SOURCE = "198.51.100.99"

#: Campaign timing inside each per-tier farm run.
AGENT_START = 0.5


def _farm_config(
    seed: int, deception: bool, prefix: str, containment: str
) -> HoneyfarmConfig:
    config = HoneyfarmConfig(
        prefixes=(prefix,),
        num_hosts=2,
        containment=containment,
        clone_jitter=0.0,
        idle_timeout_seconds=120.0,
        seed=seed,
    )
    if deception:
        config = DeceptionController.enable(config)
    return config


def _targets(prefix: str, count: int) -> Tuple[IPAddress, ...]:
    parsed = Prefix.parse(prefix)
    # Spread through the prefix so the deception pool is actually
    # sampled, skipping .0 (the network address).
    return tuple(
        parsed.address_at(3 + 7 * i) for i in range(count)
    )


def _run_scanner(
    seed: int,
    tier: int,
    deception: bool,
    duration: float,
    prefix: str,
    containment: str,
    num_targets: int,
) -> dict:
    config = _farm_config(seed, deception, prefix, containment)
    farm = Honeyfarm(config=config)
    rng = SeedSequence(seed).spawn("adversary").stream(f"scanner-{tier}")
    scanner = FingerprintScanner(
        farm=farm,
        rng=rng,
        source=IPAddress.parse(SCANNER_SOURCE),
        targets=_targets(prefix, num_targets),
        start=AGENT_START,
        deadline=duration,
        name=f"scanner-t{tier}",
        tier=tier,
    )
    scanner.attach()
    farm.run(until=duration)
    summary = scanner.report.summary()
    summary["capture_rate"] = len(scanner.report.captures) / num_targets
    summary["farm_infections"] = farm.infection_count()
    return summary


def _run_campaign(
    seed: int,
    deception: bool,
    duration: float,
    prefix: str,
    containment: str,
    num_targets: int,
) -> dict:
    config = _farm_config(seed, deception, prefix, containment)
    farm = Honeyfarm(config=config)
    rng = SeedSequence(seed).spawn("adversary").stream("campaign")
    campaign = BotnetCampaign(
        farm=farm,
        rng=rng,
        source=IPAddress.parse(C2_SOURCE),
        targets=_targets(prefix, num_targets),
        start=AGENT_START,
        deadline=duration,
        name="campaign",
    )
    campaign.attach()
    farm.run(until=duration)
    summary = campaign.report.summary()
    summary["capture_rate"] = len(campaign.report.captures) / num_targets
    summary["farm_infections"] = farm.infection_count()
    return summary


def run_adversary_experiment(
    seed: int = 1,
    tiers: Tuple[int, ...] = (0, 1, 2, 3),
    duration: float = 20.0,
    prefix: str = DEFAULT_PREFIX,
    containment: str = "reflect",
    num_targets: int = 8,
    include_botnet: bool = True,
) -> dict:
    """Run the full matrix and assemble the headline report."""
    arms: Dict[str, dict] = {}
    for deception in (False, True):
        arm_key = "on" if deception else "off"
        scanners = {
            str(tier): _run_scanner(
                seed, tier, deception, duration, prefix, containment,
                num_targets,
            )
            for tier in tiers
        }
        arm: dict = {"scanners": scanners}
        if include_botnet:
            arm["botnet"] = _run_campaign(
                seed, deception, duration, prefix, containment, num_targets
            )
        arm["fingerprint_captures"] = sum(
            len(scanners[str(t)]["captures"])
            for t in tiers if t in FINGERPRINT_TIERS
        )
        arm["total_captures"] = sum(
            len(s["captures"]) for s in scanners.values()
        )
        arm["abort_rate_by_tier"] = {
            str(t): 1.0 if scanners[str(t)]["verdict"] == "aborted" else 0.0
            for t in tiers
        }
        arms[arm_key] = arm
    headline = {
        "dwell_time_by_tier": {
            arm_key: {
                tier: arms[arm_key]["scanners"][tier]["dwell_time"]
                for tier in arms[arm_key]["scanners"]
            }
            for arm_key in arms
        },
        "capture_rate_by_tier": {
            arm_key: {
                tier: arms[arm_key]["scanners"][tier]["capture_rate"]
                for tier in arms[arm_key]["scanners"]
            }
            for arm_key in arms
        },
        "fingerprint_captures_off": arms["off"]["fingerprint_captures"],
        "fingerprint_captures_on": arms["on"]["fingerprint_captures"],
    }
    return {
        "seed": seed,
        "duration": duration,
        "prefix": prefix,
        "containment": containment,
        "num_targets": num_targets,
        "tiers": list(tiers),
        "arms": arms,
        "headline": headline,
    }


def experiment_digest(result: dict) -> str:
    """Canonical digest for the determinism gate (two runs at one seed
    must match bit-for-bit)."""
    return hashlib.sha256(
        json.dumps(result, sort_keys=True).encode()
    ).hexdigest()
