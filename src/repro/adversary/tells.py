"""The tell-score model: how a honeypot-aware attacker decides.

"Gotta catch 'em all" (PAPERS.md) catalogues the simulation tells real
adversaries probe for before committing malware to a host. We model four,
each as a weighted :class:`Tell` extracted from probe evidence; a
campaign aborts when the summed weight reaches :data:`ABORT_THRESHOLD`.

* **clone-latency** — the first reply from a cold dark address pays the
  flash-clone pipeline (~0.5 s, paper Table 1). Real idle hosts answer a
  SYN in milliseconds; a *consistent* first-contact delay in the clone
  band is a honeyfarm smell. Weak on its own (WANs are slow too).
* **timing-variance** — distinct physical hosts never share sub-
  millisecond reply timing; a farm dispatching every address through one
  gateway does. Cross-address first-reply spread under
  :data:`TIMING_SPREAD_FLOOR` is strong evidence.
* **identity** — three or more addresses presenting byte-identical
  service banners is the classic monoculture tell (every Potemkin clone
  is the same reference image unless deception randomizes it).
* **containment-echo** — the decisive test: implant a sacrificial bot
  whose C2 *is the attacker's own listener* and watch for the check-in.
  A containment policy that reflects or drops the beacon reveals itself
  by silence, which is why this tell alone trips the threshold.

The weights encode that hierarchy: no single passive tell aborts, any
two corroborating passive tells do, and the active echo test always
does. Deception (personality pool + per-address jitter) zeroes the
identity and timing tells; only opening containment silences the echo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ABORT_THRESHOLD",
    "CLONE_LATENCY_BAND",
    "CLONE_LATENCY_WEIGHT",
    "CONTAINMENT_ECHO_WEIGHT",
    "IDENTITY_MIN_ADDRESSES",
    "IDENTITY_WEIGHT",
    "TIMING_SPREAD_FLOOR",
    "TIMING_VARIANCE_WEIGHT",
    "Tell",
    "TellScore",
    "clone_latency_tell",
    "containment_echo_tell",
    "identity_tell",
    "timing_variance_tell",
]

CLONE_LATENCY_WEIGHT = 0.4
TIMING_VARIANCE_WEIGHT = 0.6
IDENTITY_WEIGHT = 0.6
CONTAINMENT_ECHO_WEIGHT = 1.0

#: Total tell weight at which a campaign aborts.
ABORT_THRESHOLD = 1.0

#: First-reply latency band (seconds) consistent with a flash-clone
#: pipeline in front of the address: the paper's 521 ms with generous
#: margins for full-copy ablations and jitter.
CLONE_LATENCY_BAND = (0.25, 2.5)

#: Cross-address first-reply spread (seconds) below which timing is
#: "machine-identical" — no population of real hosts is this correlated.
TIMING_SPREAD_FLOOR = 0.001

#: Minimum distinct addresses before the monoculture/timing tells count.
IDENTITY_MIN_ADDRESSES = 3


@dataclass(frozen=True)
class Tell:
    """One piece of honeypot evidence and its weight."""

    name: str
    weight: float
    evidence: str

    def as_tuple(self) -> Tuple[str, float, str]:
        return (self.name, self.weight, self.evidence)


@dataclass
class TellScore:
    """Accumulated evidence; the attacker's running belief."""

    tells: List[Tell] = field(default_factory=list)

    def add(self, tell: Optional[Tell]) -> None:
        if tell is not None:
            self.tells.append(tell)

    @property
    def total(self) -> float:
        return sum(tell.weight for tell in self.tells)

    def tripped(self, threshold: float = ABORT_THRESHOLD) -> bool:
        return self.total >= threshold

    def names(self) -> Tuple[str, ...]:
        return tuple(tell.name for tell in self.tells)

    def as_tuples(self) -> Tuple[Tuple[str, float, str], ...]:
        return tuple(tell.as_tuple() for tell in self.tells)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def clone_latency_tell(first_reply_latencies: Sequence[float]) -> Optional[Tell]:
    """Median first-contact latency sitting in the clone band."""
    if not first_reply_latencies:
        return None
    median = _median(first_reply_latencies)
    low, high = CLONE_LATENCY_BAND
    if low <= median <= high:
        return Tell(
            "clone-latency", CLONE_LATENCY_WEIGHT,
            f"median first-reply latency {median:.3f}s in clone band"
            f" [{low}, {high}]",
        )
    return None


def timing_variance_tell(
    first_reply_by_address: Dict[str, float],
) -> Optional[Tell]:
    """Cross-address first-reply latencies too correlated to be real.

    Keyed by address so repeat replies from one host cannot fake a
    population; needs :data:`IDENTITY_MIN_ADDRESSES` distinct addresses.
    """
    if len(first_reply_by_address) < IDENTITY_MIN_ADDRESSES:
        return None
    latencies = list(first_reply_by_address.values())
    spread = max(latencies) - min(latencies)
    if spread < TIMING_SPREAD_FLOOR:
        return Tell(
            "timing-variance", TIMING_VARIANCE_WEIGHT,
            f"{len(latencies)} addresses replied within {spread * 1e6:.0f}us"
            f" of each other (floor {TIMING_SPREAD_FLOOR * 1e3:.1f}ms)",
        )
    return None


def identity_tell(banners_by_address: Dict[str, Tuple[str, ...]]) -> Optional[Tell]:
    """Byte-identical service banners across the probed population."""
    if len(banners_by_address) < IDENTITY_MIN_ADDRESSES:
        return None
    distinct = {banners for banners in banners_by_address.values()}
    if len(distinct) == 1:
        sample = next(iter(distinct))
        return Tell(
            "identity", IDENTITY_WEIGHT,
            f"{len(banners_by_address)} addresses presented identical"
            f" banners {sample!r}",
        )
    return None


def containment_echo_tell(checkins_seen: int) -> Optional[Tell]:
    """The sacrificial implant's beacon never reached our listener."""
    if checkins_seen == 0:
        return Tell(
            "containment-echo", CONTAINMENT_ECHO_WEIGHT,
            "implanted bot's C2 check-in never arrived — outbound"
            " containment in the path",
        )
    return None
