"""Adversarial attacker models and the adaptive deception defense.

The package closes the loop the paper leaves open: Potemkin's value
depends on attackers *not* noticing they are in a honeyfarm, so this
layer models the attackers who try (fingerprinting scanners scoring
simulation tells, multi-stage botnet campaigns) and the defense that
answers them (seed-deterministic per-VM personality randomization plus
egress reply jitter). ``experiment`` ties both into the headline
dwell-time / capture-rate comparison the benchmark gates on.
"""

from repro.adversary.base import AdversaryAgent, AdversaryReport
from repro.adversary.botnet import BotnetCampaign
from repro.adversary.deception import DeceptionController
from repro.adversary.experiment import (
    FINGERPRINT_TIERS,
    experiment_digest,
    run_adversary_experiment,
)
from repro.adversary.fingerprint import FingerprintScanner
from repro.adversary.tells import (
    ABORT_THRESHOLD,
    Tell,
    TellScore,
    clone_latency_tell,
    containment_echo_tell,
    identity_tell,
    timing_variance_tell,
)

__all__ = [
    "ABORT_THRESHOLD",
    "AdversaryAgent",
    "AdversaryReport",
    "BotnetCampaign",
    "DeceptionController",
    "FINGERPRINT_TIERS",
    "FingerprintScanner",
    "Tell",
    "TellScore",
    "clone_latency_tell",
    "containment_echo_tell",
    "experiment_digest",
    "identity_tell",
    "run_adversary_experiment",
    "timing_variance_tell",
]
