"""Defense-side deception controller.

The controller is the operator-facing facade over the
:class:`~repro.core.config.DeceptionConfig` block: it turns deception on
for a farm config and introspects what the randomization actually
presents to an attacker (personality distribution across a prefix,
per-address jitter spread). The mechanisms themselves live where the
packets flow — personality selection in
:meth:`HoneyfarmConfig.personality_for_address`, egress jitter at the
gateway's ``_send_external`` edge — so every fidelity tier (emulator,
flash clone, responder baseline) presents the same randomized face.

Both randomizations are pure functions of ``(seed, address)``: the farm
stays bit-deterministic per seed (the conformance harness pins this),
repeat visits to one address always see the same host, and flipping
``enabled`` is a one-knob ablation exactly like ``content_sharing``.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Tuple

from repro.core.config import DeceptionConfig, HoneyfarmConfig

__all__ = ["DeceptionController"]


class DeceptionController:
    """Apply and inspect anti-fingerprinting deception on a farm config."""

    def __init__(self, config: HoneyfarmConfig) -> None:
        self.config = config

    # -- knobs ------------------------------------------------------------ #

    @classmethod
    def enable(
        cls,
        config: HoneyfarmConfig,
        personality_pool: Optional[Tuple[str, ...]] = None,
        jitter_max_seconds: Optional[float] = None,
    ) -> HoneyfarmConfig:
        """A copy of ``config`` with deception on (ablation helper)."""
        base = config.deception
        return config.with_overrides(deception=DeceptionConfig(
            enabled=True,
            personality_pool=(
                personality_pool if personality_pool is not None
                else base.personality_pool
            ),
            jitter_max_seconds=(
                jitter_max_seconds if jitter_max_seconds is not None
                else base.jitter_max_seconds
            ),
        ))

    @classmethod
    def disable(cls, config: HoneyfarmConfig) -> HoneyfarmConfig:
        return config.with_overrides(
            deception=DeceptionConfig(enabled=False)
        )

    # -- introspection ----------------------------------------------------- #

    @property
    def enabled(self) -> bool:
        return self.config.deception.enabled

    def personality_distribution(self, limit: int = 256) -> Dict[str, int]:
        """Personalities presented across the farm's first ``limit``
        addresses — what a wide identity sweep would observe."""
        counts: Counter = Counter()
        prefixes = self.config.parsed_prefixes()
        remaining = limit
        for prefix in prefixes:
            span = min(remaining, prefix.size)
            for index in range(span):
                addr = prefix.address_at(index)
                counts[self.config.personality_for_address(prefix, addr)] += 1
            remaining -= span
            if remaining <= 0:
                break
        return dict(sorted(counts.items()))

    def jitter_spread(self, limit: int = 256) -> Tuple[float, float]:
        """(min, max) egress delay over the first ``limit`` addresses —
        the cross-address timing decorrelation an attacker measures."""
        delays = []
        remaining = limit
        for prefix in self.config.parsed_prefixes():
            span = min(remaining, prefix.size)
            for index in range(span):
                delays.append(self.config.reply_jitter(prefix.address_at(index)))
            remaining -= span
            if remaining <= 0:
                break
        if not delays:
            return (0.0, 0.0)
        return (min(delays), max(delays))

    def summary(self, limit: int = 256) -> dict:
        low, high = self.jitter_spread(limit)
        return {
            "enabled": self.enabled,
            "personality_pool": list(self.config.deception.personality_pool),
            "jitter_max_seconds": self.config.deception.jitter_max_seconds,
            "personality_distribution": self.personality_distribution(limit),
            "jitter_spread": [low, high],
        }
