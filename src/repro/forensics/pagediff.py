"""Per-VM dirty-page diffs against the reference snapshot.

A :class:`PageDiff` is taken from the VMM side — the CoW overlay — so it
is trustworthy even though the guest is compromised. Ground-truth fields
(``infected``, ``worm_name``) are carried along for validation in tests
and reports; a real deployment would not have them, and nothing in the
clustering pipeline uses them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.vmm.memory import PAGE_SIZE
from repro.vmm.vm import VirtualMachine

__all__ = ["PageDiff", "diff_vm"]


@dataclass(frozen=True)
class PageDiff:
    """The pages one VM dirtied relative to its reference image."""

    vm_id: int
    ip: str
    personality: str
    pages: FrozenSet[int]
    disk_blocks: FrozenSet[int]
    infected: bool
    worm_name: Optional[str]
    generation: Optional[int]

    @property
    def page_count(self) -> int:
        return len(self.pages)

    @property
    def bytes(self) -> int:
        return len(self.pages) * PAGE_SIZE

    def jaccard(self, other: "PageDiff") -> float:
        """Similarity of two diffs' page sets (0 disjoint, 1 identical)."""
        if not self.pages and not other.pages:
            return 1.0
        union = len(self.pages | other.pages)
        if union == 0:
            return 1.0
        return len(self.pages & other.pages) / union


def diff_vm(vm: VirtualMachine) -> PageDiff:
    """Snapshot a live or detained VM's modification set.

    Raises ``ValueError`` for destroyed VMs — their overlay is gone, and
    pretending otherwise would silently produce empty diffs.
    """
    if vm.address_space.destroyed:
        raise ValueError(f"VM {vm.vm_id} has been destroyed; no overlay to diff")
    guest = vm.guest
    infected = bool(guest is not None and getattr(guest, "infected", False))
    worm_name = None
    generation = None
    if infected and guest.infection is not None:
        worm_name = guest.infection.worm_name
        generation = guest.infection.generation
    return PageDiff(
        vm_id=vm.vm_id,
        ip=str(vm.ip),
        personality=vm.personality,
        pages=frozenset(vm.address_space.private_page_numbers()),
        disk_blocks=(
            frozenset(vm.disk.dirty_block_numbers())
            if not vm.disk.detached else frozenset()
        ),
        infected=infected,
        worm_name=worm_name,
        generation=generation,
    )
