"""Clustering capture diffs into per-worm memory signatures.

Identical malware dirties near-identical page sets: the guest layout is
deterministic (same personality → same base working set and connection
region), so the *difference between an infected diff and the clean
profile* is the worm's resident body — and distinct worms produce
distinct bodies. Greedy Jaccard clustering over raw page sets therefore
separates worm families without any ground-truth labels, and each
cluster's intersection minus the clean baseline is its
:class:`MemorySignature`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set

from repro.forensics.pagediff import PageDiff
from repro.vmm.memory import PAGE_SIZE

__all__ = ["DiffCluster", "MemorySignature", "cluster_diffs"]


@dataclass
class DiffCluster:
    """A group of diffs whose page sets are mutually similar."""

    members: List[PageDiff] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def representative(self) -> PageDiff:
        return self.members[0]

    def common_pages(self) -> FrozenSet[int]:
        """Pages every member dirtied."""
        if not self.members:
            return frozenset()
        common: Set[int] = set(self.members[0].pages)
        for diff in self.members[1:]:
            common &= diff.pages
        return frozenset(common)

    def mean_jaccard(self) -> float:
        """Mean pairwise similarity to the representative."""
        if len(self.members) < 2:
            return 1.0
        rep = self.representative
        others = self.members[1:]
        return sum(rep.jaccard(d) for d in others) / len(others)

    def dominant_worm(self) -> Optional[str]:
        """Majority ground-truth label, for validation only."""
        names = [d.worm_name for d in self.members if d.worm_name]
        if not names:
            return None
        return max(set(names), key=names.count)

    def label_purity(self) -> float:
        """Fraction of labelled members that carry the dominant label."""
        names = [d.worm_name for d in self.members if d.worm_name]
        if not names:
            return 1.0
        dominant = self.dominant_worm()
        return names.count(dominant) / len(names)


@dataclass(frozen=True)
class MemorySignature:
    """The distilled memory fingerprint of one cluster."""

    cluster_size: int
    signature_pages: FrozenSet[int]
    dominant_worm: Optional[str]
    purity: float

    @property
    def body_pages(self) -> int:
        return len(self.signature_pages)

    @property
    def body_bytes(self) -> int:
        return self.body_pages * PAGE_SIZE


def cluster_diffs(
    diffs: Sequence[PageDiff],
    similarity_threshold: float = 0.7,
) -> List[DiffCluster]:
    """Greedy single-pass clustering by Jaccard similarity.

    Each diff joins the first cluster whose representative it matches at
    or above ``similarity_threshold``, else starts a new cluster.
    Deterministic in input order; diffs are processed largest-first so
    representatives are the richest members.
    """
    if not (0.0 < similarity_threshold <= 1.0):
        raise ValueError(f"similarity_threshold must be in (0, 1]: {similarity_threshold!r}")
    clusters: List[DiffCluster] = []
    for diff in sorted(diffs, key=lambda d: (-d.page_count, d.vm_id)):
        for cluster in clusters:
            if cluster.representative.jaccard(diff) >= similarity_threshold:
                cluster.members.append(diff)
                break
        else:
            clusters.append(DiffCluster(members=[diff]))
    clusters.sort(key=lambda c: -c.size)
    return clusters


def signature_from_cluster(
    cluster: DiffCluster,
    clean_baseline: FrozenSet[int],
) -> MemorySignature:
    """Distil a cluster into a signature: its common pages minus what
    clean guests of the same personality also dirty."""
    return MemorySignature(
        cluster_size=cluster.size,
        signature_pages=cluster.common_pages() - clean_baseline,
        dominant_worm=cluster.dominant_worm(),
        purity=cluster.label_purity(),
    )


__all__.append("signature_from_cluster")
