"""Forensics: what did the malware change?

The quiet payoff of delta virtualization: because every honeypot VM is a
copy-on-write overlay on a pristine reference image, "what did the
intruder modify" is not a question for a disk walker — it is *exactly*
the overlay. The farm can diff a captured VM against its snapshot in
O(dirtied pages), cluster captures by the shape of their modifications,
and estimate each worm's resident body size, all without trusting the
(compromised) guest.

* :mod:`repro.forensics.pagediff` — per-VM dirty-page diffs.
* :mod:`repro.forensics.signature` — clustering diffs into per-worm
  memory signatures (Jaccard over page sets).
* :mod:`repro.forensics.triage` — farm-level triage: baseline from clean
  VMs, signatures from infected ones, rendered report.
"""

from repro.forensics.pagediff import PageDiff, diff_vm
from repro.forensics.signature import DiffCluster, MemorySignature, cluster_diffs
from repro.forensics.triage import ForensicReport, ForensicTriage

__all__ = [
    "DiffCluster",
    "ForensicReport",
    "ForensicTriage",
    "MemorySignature",
    "PageDiff",
    "cluster_diffs",
    "diff_vm",
]
