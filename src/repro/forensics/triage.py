"""Farm-level forensic triage.

Collects dirty-page diffs from every examinable VM in a farm (live and
detained; destroyed VMs have no overlay left), establishes a *clean
baseline* per personality from the uninfected population, clusters the
infected diffs, and produces a report: how many worm families, their
estimated resident body sizes, and how the epidemic unfolded.

The baseline is the union of pages clean VMs dirty — base working set
plus connection region — so a signature contains only pages *no* clean
guest touches, which is what makes the body-size estimate meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.analysis.report import format_table
from repro.core.honeyfarm import Honeyfarm
from repro.forensics.pagediff import PageDiff, diff_vm
from repro.forensics.signature import (
    DiffCluster,
    MemorySignature,
    cluster_diffs,
    signature_from_cluster,
)
from repro.vmm.memory import PAGE_SIZE

__all__ = ["ForensicReport", "ForensicTriage"]


@dataclass
class ForensicReport:
    """Everything triage learned from one farm."""

    examined_vms: int
    clean_vms: int
    infected_vms: int
    baseline_pages_by_personality: Dict[str, int]
    clusters: List[DiffCluster]
    signatures: List[MemorySignature]
    generations_seen: int

    def render(self) -> str:
        """Human-readable report tables."""
        overview = format_table(["metric", "value"], [
            ["VMs examined", self.examined_vms],
            ["clean", self.clean_vms],
            ["infected", self.infected_vms],
            ["worm families found (clusters)", len(self.signatures)],
            ["epidemic generations seen", self.generations_seen],
        ], title="Forensic triage")
        if not self.signatures:
            return overview
        rows = []
        for sig in self.signatures:
            rows.append([
                sig.dominant_worm or "(unlabelled)",
                sig.cluster_size,
                sig.body_pages,
                f"{sig.body_bytes / 1024:.0f}",
                f"{sig.purity * 100:.0f}%",
            ])
        families = format_table(
            ["family", "captures", "body pages", "body KiB", "cluster purity"],
            rows, title="Memory signatures",
        )
        return overview + "\n\n" + families


class ForensicTriage:
    """Runs the collect → baseline → cluster → distil pipeline."""

    def __init__(self, farm: Honeyfarm, similarity_threshold: float = 0.7) -> None:
        self.farm = farm
        self.similarity_threshold = similarity_threshold
        self.diffs: List[PageDiff] = []

    # ------------------------------------------------------------------ #
    # Collection
    # ------------------------------------------------------------------ #

    def collect(self) -> int:
        """Diff every examinable VM (live on hosts, plus detained).

        Returns the number of diffs collected.
        """
        self.diffs = []
        seen: Set[int] = set()
        for host in self.farm.hosts:
            for vm in host.vms():
                if vm.vm_id not in seen and not vm.address_space.destroyed:
                    seen.add(vm.vm_id)
                    self.diffs.append(diff_vm(vm))
        for vm in self.farm.detained:
            if vm.vm_id not in seen and not vm.address_space.destroyed:
                seen.add(vm.vm_id)
                self.diffs.append(diff_vm(vm))
        return len(self.diffs)

    # ------------------------------------------------------------------ #
    # Analysis
    # ------------------------------------------------------------------ #

    def clean_baseline(self) -> Dict[str, FrozenSet[int]]:
        """Per-personality union of pages dirtied by *clean* VMs."""
        baseline: Dict[str, Set[int]] = {}
        for diff in self.diffs:
            if diff.infected:
                continue
            baseline.setdefault(diff.personality, set()).update(diff.pages)
        return {name: frozenset(pages) for name, pages in baseline.items()}

    def report(self) -> ForensicReport:
        """Run the full pipeline over the collected diffs."""
        if not self.diffs:
            self.collect()
        clean = [d for d in self.diffs if not d.infected]
        infected = [d for d in self.diffs if d.infected]
        baseline = self.clean_baseline()

        clusters = cluster_diffs(infected, self.similarity_threshold)
        signatures = []
        for cluster in clusters:
            personality = cluster.representative.personality
            signatures.append(
                signature_from_cluster(
                    cluster, baseline.get(personality, frozenset())
                )
            )

        generations = [
            d.generation for d in infected if d.generation is not None
        ]
        return ForensicReport(
            examined_vms=len(self.diffs),
            clean_vms=len(clean),
            infected_vms=len(infected),
            baseline_pages_by_personality={
                name: len(pages) for name, pages in baseline.items()
            },
            clusters=clusters,
            signatures=signatures,
            generations_seen=(max(generations) + 1) if generations else 0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ForensicTriage diffs={len(self.diffs)}>"
