"""repro — a reproduction of the Potemkin virtual honeyfarm (SOSP 2005).

Potemkin dissolves the honeypot trade-off between scalability, fidelity,
and containment by backing large dark address spaces with virtual
machines that are created on demand (flash cloning), share memory
copy-on-write (delta virtualization), and sit behind a gateway that
enforces containment policy on everything they emit.

Quick start::

    from repro import Honeyfarm, HoneyfarmConfig
    from repro.net import IPAddress, udp_packet

    farm = Honeyfarm(HoneyfarmConfig(prefixes=("10.16.0.0/24",), num_hosts=1))
    farm.inject(udp_packet(IPAddress.parse("203.0.113.9"),
                           IPAddress.parse("10.16.0.25"), 4000, 1434,
                           payload="exploit:slammer"))
    farm.run(until=30.0)
    print(farm.live_vms, farm.infection_count())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm

__version__ = "1.0.0"

__all__ = ["Honeyfarm", "HoneyfarmConfig", "__version__"]
