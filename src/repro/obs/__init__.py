"""Observability: the flight recorder and its event vocabulary.

See :mod:`repro.obs.recorder` for the recorder itself and
``docs/OBSERVABILITY.md`` for the event schema, the snapshot format, and
the zero-overhead-when-disabled contract.
"""

from repro.obs.recorder import (
    FlightRecorder,
    active,
    event_tally,
    install,
    merge_tallies,
    recording,
    uninstall,
)

__all__ = [
    "FlightRecorder",
    "active",
    "event_tally",
    "install",
    "merge_tallies",
    "recording",
    "uninstall",
]
