"""The flight recorder: a bounded, structured event trace of one run.

The paper's claims are measurements, so the reproduction needs a way to
see *inside* a run — which subsystem burned the time, what the gateway
decided packet by packet, when clones started and finished — without
print-debugging or re-running under a profiler. The
:class:`FlightRecorder` collects:

* **events** — small structured records (dispatch verdicts, clone
  lifecycle, reclamation sweeps, fault injections, containment
  decisions) appended to a bounded ring buffer; when the buffer is
  full the oldest events are evicted, never the newest;
* **metric snapshots** — periodic serializations of every counter,
  gauge, and histogram in a :class:`~repro.sim.metrics.MetricRegistry`,
  taken every N *simulated* seconds while a run executes;
* **per-subsystem wall-clock timing** — the simulator's event loop
  attributes each callback's real elapsed time to the subsystem that
  owns it (derived from the callback's module), accumulated here.

Determinism contract
--------------------
The JSONL event stream carries **sim-clock timestamps only** plus a
monotone sequence number, so two runs of the same seed produce
byte-identical traces. Wall-clock timing is deliberately kept *out* of
the event stream (it varies run to run) and lives in
:attr:`FlightRecorder.timing`, reported separately.

Zero overhead when disabled
---------------------------
Instrumented code guards every emit with a single module-level check::

    from repro.obs import recorder as _obs
    ...
    if _obs.ACTIVE is not None:
        _obs.ACTIVE.emit(self.sim.now, "gateway", "dispatch", verdict="delivered")

``ACTIVE`` is ``None`` unless a recorder has been installed, so the
disabled cost is one global load and an identity test — verified against
``benchmarks/bench_gateway_throughput.py`` (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "ACTIVE",
    "FlightRecorder",
    "event_tally",
    "install",
    "merge_tallies",
    "uninstall",
    "active",
    "recording",
]

#: The module-level switch every instrumented hot path checks. ``None``
#: means tracing is off and emit sites fall through at the cost of one
#: global load; otherwise it is the installed :class:`FlightRecorder`.
ACTIVE: Optional["FlightRecorder"] = None


class FlightRecorder:
    """Bounded structured event trace plus timing and snapshot state.

    Parameters
    ----------
    capacity:
        Ring-buffer size in events. The recorder never grows past this;
        :attr:`evicted` counts how many old events were pushed out.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity!r}")
        self.capacity = capacity
        self.events: "deque[Tuple[float, int, str, str, Dict[str, Any]]]" = deque(
            maxlen=capacity
        )
        self.emitted = 0
        self._seq = 0
        # subsystem -> [callback invocations, wall-clock seconds]
        self.timing: Dict[str, List[float]] = {}
        self._snapshot_timer: Optional[Any] = None
        self.snapshots_taken = 0

    # ------------------------------------------------------------------ #
    # Event stream
    # ------------------------------------------------------------------ #

    def emit(self, t: float, subsystem: str, event: str, **fields: Any) -> None:
        """Record one event at simulated time ``t``.

        ``fields`` must be JSON-serializable and deterministic for a
        given seed (no wall-clock values, no object ids).
        """
        self._seq += 1
        self.emitted += 1
        self.events.append((t, self._seq, subsystem, event, fields))

    @property
    def evicted(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return self.emitted - len(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------ #
    # Wall-clock timing (kept out of the event stream: nondeterministic)
    # ------------------------------------------------------------------ #

    def record_timing(self, subsystem: str, wall_seconds: float) -> None:
        """Attribute ``wall_seconds`` of real time to ``subsystem``."""
        cell = self.timing.get(subsystem)
        if cell is None:
            cell = self.timing[subsystem] = [0, 0.0]
        cell[0] += 1
        cell[1] += wall_seconds

    def timing_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-subsystem ``{calls, wall_seconds, mean_us}`` breakdown."""
        out: Dict[str, Dict[str, float]] = {}
        for subsystem, (calls, wall) in sorted(self.timing.items()):
            out[subsystem] = {
                "calls": int(calls),
                "wall_seconds": wall,
                "mean_us": (wall / calls * 1e6) if calls else 0.0,
            }
        return out

    # ------------------------------------------------------------------ #
    # Metric snapshots
    # ------------------------------------------------------------------ #

    def snapshot(self, now: float, metrics: Any) -> None:
        """Serialize every metric in ``metrics`` as one snapshot event."""
        gauges = {
            name: {
                "value": g.value,
                "peak": g.peak,
                "time_avg": g.time_average(now=now),
            }
            for name, g in sorted(metrics._gauges.items())
        }
        histograms = {
            name: h.summary()
            for name, h in sorted(metrics._histograms.items())
            if h.count
        }
        self.snapshots_taken += 1
        self.emit(
            now,
            "metrics",
            "snapshot",
            counters=metrics.counters(),
            gauges=gauges,
            histograms=histograms,
        )

    def start_snapshots(self, sim: Any, metrics: Any, interval: float) -> None:
        """Schedule periodic snapshots every ``interval`` sim-seconds.

        The chain keeps rescheduling until :meth:`stop_snapshots` (or the
        run simply ends); it only exists while tracing is explicitly
        started, so an untraced run never carries the extra events.
        """
        if interval <= 0:
            raise ValueError(f"snapshot interval must be positive: {interval!r}")
        if self._snapshot_timer is not None:
            raise ValueError("snapshots already started")
        self._snapshot_timer = sim.schedule(
            interval, self._snapshot_tick, sim, metrics, interval
        )

    def _snapshot_tick(self, sim: Any, metrics: Any, interval: float) -> None:
        self.snapshot(sim.now, metrics)
        self._snapshot_timer = sim.schedule(
            interval, self._snapshot_tick, sim, metrics, interval
        )

    def stop_snapshots(self) -> None:
        if self._snapshot_timer is not None:
            self._snapshot_timer.cancel()
            self._snapshot_timer = None

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #

    def iter_jsonl(self) -> Iterator[str]:
        """Yield one compact, key-sorted JSON line per event (stable
        rendering: same events, same bytes)."""
        for t, seq, subsystem, event, fields in self.events:
            record = {"t": t, "seq": seq, "sub": subsystem, "ev": event}
            record.update(fields)
            yield json.dumps(record, sort_keys=True, separators=(",", ":"))

    def to_jsonl(self) -> str:
        lines = list(self.iter_jsonl())
        return "\n".join(lines) + ("\n" if lines else "")

    def dump(self, path: Any) -> int:
        """Write the trace as JSONL; returns the number of events written."""
        from pathlib import Path

        Path(path).write_text(self.to_jsonl())
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FlightRecorder events={len(self.events)}/{self.capacity}"
            f" emitted={self.emitted} snapshots={self.snapshots_taken}>"
        )


# ---------------------------------------------------------------------- #
# Tallies (per-shard recorders -> one aggregate view)
# ---------------------------------------------------------------------- #

def event_tally(recorder: FlightRecorder) -> Dict[str, int]:
    """``"subsystem.event" -> count`` over the recorder's buffered events.

    The federation runs one private recorder per shard (shards execute
    their epochs back to back, so a single process-wide ring would
    interleave them); tallies are the picklable summary a shard worker
    ships home, merged with :func:`merge_tallies`.
    """
    tally: Dict[str, int] = {}
    for __, __, subsystem, event, __ in recorder.events:
        key = f"{subsystem}.{event}"
        tally[key] = tally.get(key, 0) + 1
    return dict(sorted(tally.items()))


def merge_tallies(tallies: Iterable[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-shard event tallies into one federation-wide tally."""
    merged: Dict[str, int] = {}
    for tally in tallies:
        for key, count in tally.items():
            merged[key] = merged.get(key, 0) + count
    return dict(sorted(merged.items()))


# ---------------------------------------------------------------------- #
# Module-level installation
# ---------------------------------------------------------------------- #

def install(recorder: FlightRecorder) -> FlightRecorder:
    """Make ``recorder`` the process-wide active recorder."""
    global ACTIVE
    ACTIVE = recorder
    return recorder


def uninstall() -> Optional[FlightRecorder]:
    """Disable tracing; returns the recorder that was active, if any."""
    global ACTIVE
    recorder, ACTIVE = ACTIVE, None
    if recorder is not None:
        recorder.stop_snapshots()
    return recorder


def active() -> Optional[FlightRecorder]:
    return ACTIVE


@contextmanager
def recording(capacity: int = 100_000) -> Iterator[FlightRecorder]:
    """Context manager: install a fresh recorder, uninstall on exit.

    Always uninstalls (even on exception), so a traced test can never
    leak tracing into the rest of the process.
    """
    recorder = install(FlightRecorder(capacity=capacity))
    try:
        yield recorder
    finally:
        if ACTIVE is recorder:
            uninstall()
        else:  # someone swapped recorders mid-flight; still stop timers
            recorder.stop_snapshots()
