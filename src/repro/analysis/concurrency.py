"""The idle-timeout ↔ concurrent-VM trade-off (experiment F-CONC).

The paper's central scalability analysis: given the arrival process at
the telescope, how many VMs must be simultaneously live as a function of
the reclamation idle timeout? A VM for address ``a`` is live from the
first packet to ``a`` until ``timeout`` seconds after the last packet in
a busy period, so the concurrency curve can be computed *exactly* from a
trace with a sweep — no farm simulation required — which is how the paper
itself evaluates timeouts far beyond what a testbed run covers.

The sweep is O(E log E) in trace events using an expiry min-heap, and
:func:`sweep_timeouts` shares one parsed trace across the whole timeout
grid.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.metrics import TimeSeries
from repro.workloads.trace import TraceRecord

__all__ = ["ConcurrencyResult", "concurrency_for_timeout", "sweep_timeouts"]


@dataclass(frozen=True)
class ConcurrencyResult:
    """Concurrency statistics for one idle timeout."""

    timeout: float
    peak_vms: int
    mean_vms: float
    vm_instantiations: int
    series: TimeSeries


def concurrency_for_timeout(
    records: Sequence[TraceRecord],
    timeout: float,
    sample_interval: float = 1.0,
) -> ConcurrencyResult:
    """Exact concurrent-VM count over time for one idle timeout.

    ``records`` must be time-sorted (generators and readers produce
    sorted traces). The returned series samples the concurrency level at
    ``sample_interval`` spacing, plus every peak-changing instant is
    reflected in ``peak_vms``/``mean_vms`` exactly.
    """
    if timeout <= 0:
        raise ValueError(f"timeout must be positive: {timeout!r}")
    series = TimeSeries(f"concurrency[t={timeout:g}s]")
    expiry_heap: List[Tuple[float, str]] = []  # (expiry_time, address)
    expires_at: Dict[str, float] = {}
    live = 0
    instantiations = 0
    peak = 0
    weighted_sum = 0.0
    last_time = 0.0
    next_sample = 0.0

    def advance_to(t: float) -> None:
        nonlocal live, weighted_sum, last_time, next_sample
        # Pop every address whose busy period ends before t.
        while expiry_heap and expiry_heap[0][0] <= t:
            exp_time, addr = heapq.heappop(expiry_heap)
            if expires_at.get(addr) != exp_time:
                continue  # stale entry; address was touched again
            weighted_sum += live * (exp_time - last_time)
            last_time = exp_time
            del expires_at[addr]
            live -= 1
        weighted_sum += live * (t - last_time)
        last_time = t

    for record in records:
        t = record.time
        advance_to(t)
        addr = record.dst
        if addr not in expires_at:
            live += 1
            instantiations += 1
            if live > peak:
                peak = live
        expires_at[addr] = t + timeout
        heapq.heappush(expiry_heap, (t + timeout, addr))
        while next_sample <= t:
            series.record(next_sample, live)
            next_sample += sample_interval

    # Drain the tail so every VM's full lifetime is accounted.
    if expiry_heap:
        end = max(exp for exp, __ in expiry_heap)
        advance_to(end)
    mean = weighted_sum / last_time if last_time > 0 else 0.0
    return ConcurrencyResult(
        timeout=timeout,
        peak_vms=peak,
        mean_vms=mean,
        vm_instantiations=instantiations,
        series=series,
    )


# Per-worker state for the multiprocessing sweep: the parsed trace is
# shipped once per worker (via the pool initializer), not once per timeout.
_worker_records: Sequence[TraceRecord] = ()
_worker_sample_interval: float = 1.0


def _init_sweep_worker(
    records: Sequence[TraceRecord], sample_interval: float
) -> None:
    global _worker_records, _worker_sample_interval
    _worker_records = records
    _worker_sample_interval = sample_interval


def _sweep_one(timeout: float) -> ConcurrencyResult:
    return concurrency_for_timeout(
        _worker_records, timeout, _worker_sample_interval
    )


def sweep_timeouts(
    records: Sequence[TraceRecord],
    timeouts: Sequence[float],
    sample_interval: float = 1.0,
    workers: Optional[int] = None,
) -> List[ConcurrencyResult]:
    """Concurrency results across a timeout grid (the F-CONC figure).

    ``workers`` > 1 fans the (independent, read-only) timeout points out
    over a process pool. Each point is a pure function of the trace, so
    the output is identical to the sequential sweep — results come back
    in ``timeouts`` order regardless of which worker finishes first.
    """
    materialized = list(records)
    if workers is not None and workers > 1 and len(timeouts) > 1:
        import multiprocessing

        with multiprocessing.Pool(
            processes=min(workers, len(timeouts)),
            initializer=_init_sweep_worker,
            initargs=(materialized, sample_interval),
        ) as pool:
            return pool.map(_sweep_one, timeouts, chunksize=1)
    return [
        concurrency_for_timeout(materialized, timeout, sample_interval)
        for timeout in timeouts
    ]
