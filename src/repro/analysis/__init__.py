"""Analysis: turning runs and traces into the paper's tables and figures.

* :mod:`repro.analysis.concurrency` — the idle-timeout ↔ concurrent-VM
  trade-off, computed exactly from arrival traces (experiment F-CONC).
* :mod:`repro.analysis.memory_stats` — per-VM footprint distributions and
  VMs-per-host capacity estimates (experiment F-MEM).
* :mod:`repro.analysis.epidemics` — infection curves, generation depth,
  and containment-effectiveness summaries (experiment F-CONTAIN).
* :mod:`repro.analysis.adversary` — dwell time and capture rate versus
  attacker sophistication, the deception-ablation headline table.
* :mod:`repro.analysis.report` — plain-text tables and series rendering
  shared by the benchmark harness.
"""

from repro.analysis.adversary import TierSummary, deception_effect, summarize_adversaries
from repro.analysis.concurrency import ConcurrencyResult, concurrency_for_timeout, sweep_timeouts
from repro.analysis.epidemics import ContainmentSummary, infection_curve, summarize_containment
from repro.analysis.memory_stats import FootprintSummary, footprint_summary, vms_per_host_estimate
from repro.analysis.dedup import DedupStats, dedup_opportunity
from repro.analysis.report import format_series, format_table
from repro.analysis.summary import farm_run_report
from repro.analysis.telescope_stats import TrafficProfile, characterize_trace

__all__ = [
    "ConcurrencyResult",
    "ContainmentSummary",
    "DedupStats",
    "FootprintSummary",
    "TierSummary",
    "TrafficProfile",
    "characterize_trace",
    "concurrency_for_timeout",
    "deception_effect",
    "dedup_opportunity",
    "farm_run_report",
    "footprint_summary",
    "format_series",
    "format_table",
    "infection_curve",
    "summarize_adversaries",
    "summarize_containment",
    "sweep_timeouts",
    "vms_per_host_estimate",
]
