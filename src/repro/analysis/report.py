"""Plain-text rendering shared by the benchmark harness.

Benches print the same rows/series the paper's tables and figures report;
these helpers keep that output consistent and diff-able across runs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.sim.metrics import TimeSeries

__all__ = ["format_table", "format_series"]

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 1:
            return f"{cell:.2f}"
        return f"{cell:.4g}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["stage", "ms"], [["toolstack", 279.0]]))
    stage      ms
    ---------  ------
    toolstack  279.00
    """
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip())
    return "\n".join(lines)


def format_series(
    series: TimeSeries,
    max_points: int = 20,
    value_label: str = "value",
) -> str:
    """Render a time series as (time, value) rows, decimated to at most
    ``max_points`` evenly spaced samples plus the final one."""
    if len(series) == 0:
        return f"{series.name}: (empty)"
    n = len(series)
    step = max(1, n // max_points)
    indexes = list(range(0, n, step))
    if indexes[-1] != n - 1:
        indexes.append(n - 1)
    rows = [[f"{series.times[i]:.1f}", series.values[i]] for i in indexes]
    return format_table(["t(s)", value_label], rows, title=series.name)
