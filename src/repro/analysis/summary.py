"""One-stop run summaries: everything a finished farm can tell you.

`farm_run_report` composes the sections operators actually read after a
run — traffic totals, VM lifecycle churn, memory economics, containment
outcome, capture intelligence — into a single rendered report. The CLI's
``demo`` subcommand and several examples use it; tests treat it as the
canonical "did the run make sense" rendering.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.epidemics import generation_histogram, summarize_containment
from repro.analysis.memory_stats import footprint_summary
from repro.analysis.report import format_table
from repro.core.honeyfarm import Honeyfarm

__all__ = ["farm_run_report"]


def _traffic_section(farm: Honeyfarm) -> str:
    counters = farm.metrics.counters()
    return format_table(["metric", "value"], [
        ["packets in", counters.get("gateway.packets_in", 0)],
        ["delivered to guests", counters.get("gateway.delivered", 0)],
        ["queued during clone", counters.get("gateway.queued_during_clone", 0)],
        ["strays dropped", counters.get("gateway.stray", 0)],
        ["replies to Internet", counters.get("gateway.reply_external_out", 0)],
    ], title="Traffic")


def _vm_section(farm: Honeyfarm) -> str:
    counters = farm.metrics.counters()
    ready = farm.metrics.histogram("farm.address_ready_seconds")
    rows = [
        ["addresses impersonated", farm.inventory.total_addresses],
        ["VMs spawned", counters.get("farm.vms_spawned", 0)],
        ["VMs reclaimed", counters.get("farm.vms_reclaimed", 0)],
        ["VMs detained", counters.get("farm.vms_detained", 0)],
        ["live now", farm.live_vms],
    ]
    if ready.count:
        rows.append(["median time-to-ready (ms)",
                     f"{ready.percentile(50) * 1000:.0f}"])
    if counters.get("farm.pool_hits"):
        rows.append(["warm-pool hits", counters["farm.pool_hits"]])
    return format_table(["metric", "value"], rows, title="VM lifecycle")


def _memory_section(farm: Honeyfarm) -> str:
    breakdown = farm.memory_breakdown()
    live = [vm for host in farm.hosts for vm in host.vms()]
    footprints = footprint_summary(live)
    rows = [
        ["images resident (MiB)", f"{breakdown.image_resident / 2**20:.0f}"],
        ["private resident (MiB)", f"{breakdown.private_resident / 2**20:.1f}"],
        ["consolidation vs full copies", f"{breakdown.consolidation_factor:.1f}x"],
    ]
    if footprints.vm_count:
        rows.append(["mean private/VM (MiB)", f"{footprints.mean_mib:.2f}"])
    return format_table(["metric", "value"], rows, title="Memory (delta virtualization)")


def _containment_section(farm: Honeyfarm) -> str:
    summary = summarize_containment(farm)
    generations = generation_histogram(farm.infections)
    rows = [
        ["policy", summary.policy],
        ["infections captured", summary.infections_total],
        ["deepest generation", summary.max_generation],
        ["reflected packets", summary.reflected_packets],
        ["dropped packets", summary.dropped_packets],
        ["dns transactions", summary.dns_transactions],
        ["escaped packets", summary.escaped_packets],
        ["contained", summary.contained],
    ]
    if generations:
        spread = ", ".join(f"g{g}:{n}" for g, n in generations.items())
        rows.append(["per generation", spread])
    return format_table(["metric", "value"], rows, title="Containment")


def _intelligence_section(farm: Honeyfarm) -> Optional[str]:
    worms = sorted({r.worm_name for r in farm.infections})
    domains = farm.dns_server.rendezvous_domains()
    if not worms and not domains:
        return None
    rows: List[List[str]] = []
    if worms:
        rows.append(["worm families captured", ", ".join(worms)])
    if domains:
        unique = sorted(set(domains))
        rows.append(["rendezvous domains", ", ".join(unique[:5])])
    if farm.detained:
        rows.append(["VMs held for forensics", str(len(farm.detained))])
    return format_table(["metric", "value"], rows, title="Intelligence")


def farm_run_report(farm: Honeyfarm) -> str:
    """Render the full post-run report for ``farm``."""
    sections = [
        _traffic_section(farm),
        _vm_section(farm),
        _memory_section(farm),
        _containment_section(farm),
    ]
    intel = _intelligence_section(farm)
    if intel is not None:
        sections.append(intel)
    return "\n\n".join(sections)
