"""Dwell time and capture rate versus attacker sophistication.

Consumes the per-agent summaries produced by
:class:`repro.adversary.base.AdversaryReport` (or the raw reports) and
rolls them up into the experiment's headline table: for each
sophistication tier, how long attackers engaged before reaching a
verdict, what fraction of them the farm captured malware from, and how
often they detected the farm and aborted. Comparing the table between
the deception-off and deception-on arms is the paper-style ablation the
benchmark gates on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.adversary.base import AdversaryReport

__all__ = [
    "TierSummary",
    "deception_effect",
    "summarize_adversaries",
]


@dataclass(frozen=True)
class TierSummary:
    """Aggregate over every agent at one sophistication tier."""

    tier: int
    agents: int
    completed: int
    aborted: int
    incomplete: int
    captures: int
    capture_rate: float  # agents with >= 1 capture / agents
    abort_rate: float
    mean_dwell: Optional[float]
    mean_tell_total: float

    def as_dict(self) -> dict:
        return {
            "tier": self.tier,
            "agents": self.agents,
            "completed": self.completed,
            "aborted": self.aborted,
            "incomplete": self.incomplete,
            "captures": self.captures,
            "capture_rate": round(self.capture_rate, 6),
            "abort_rate": round(self.abort_rate, 6),
            "mean_dwell": (
                None if self.mean_dwell is None else round(self.mean_dwell, 6)
            ),
            "mean_tell_total": round(self.mean_tell_total, 6),
        }


def _as_summary(report: Union[AdversaryReport, Mapping]) -> Mapping:
    if isinstance(report, AdversaryReport):
        return report.summary()
    return report


def summarize_adversaries(
    reports: Iterable[Union[AdversaryReport, Mapping]],
) -> Dict[int, TierSummary]:
    """Group agent outcomes by tier, sorted ascending by sophistication."""
    by_tier: Dict[int, List[Mapping]] = {}
    for report in reports:
        summary = _as_summary(report)
        by_tier.setdefault(int(summary["tier"]), []).append(summary)
    out: Dict[int, TierSummary] = {}
    for tier in sorted(by_tier):
        rows = by_tier[tier]
        verdicts = [r["verdict"] for r in rows]
        dwells = [r["dwell_time"] for r in rows if r["dwell_time"] is not None]
        captures = sum(len(r["captures"]) for r in rows)
        captured_agents = sum(1 for r in rows if r["captures"])
        out[tier] = TierSummary(
            tier=tier,
            agents=len(rows),
            completed=verdicts.count("completed"),
            aborted=verdicts.count("aborted"),
            incomplete=verdicts.count("incomplete"),
            captures=captures,
            capture_rate=captured_agents / len(rows),
            abort_rate=verdicts.count("aborted") / len(rows),
            mean_dwell=(sum(dwells) / len(dwells)) if dwells else None,
            mean_tell_total=sum(r["tell_total"] for r in rows) / len(rows),
        )
    return out


def deception_effect(
    off_reports: Iterable[Union[AdversaryReport, Mapping]],
    on_reports: Iterable[Union[AdversaryReport, Mapping]],
    fingerprint_tiers: Tuple[int, ...] = (2, 3),
) -> dict:
    """The ablation delta: what turning deception on bought the farm.

    The headline number is capture count from *fingerprinting* tiers —
    the attackers deception exists to win back. Naive tiers are
    reported too (deception costs a slice of their captures, since the
    randomized population is no longer uniformly vulnerable).
    """
    off = summarize_adversaries(off_reports)
    on = summarize_adversaries(on_reports)

    def _fp_captures(table: Dict[int, TierSummary]) -> int:
        return sum(
            table[t].captures for t in fingerprint_tiers if t in table
        )

    return {
        "off": {t: s.as_dict() for t, s in off.items()},
        "on": {t: s.as_dict() for t, s in on.items()},
        "fingerprint_captures_off": _fp_captures(off),
        "fingerprint_captures_on": _fp_captures(on),
        "fingerprint_capture_gain": _fp_captures(on) - _fp_captures(off),
    }
