"""Content-based page sharing: the scanner, now a cross-check.

Delta virtualization shares pages that were *never modified*; the live
:class:`~repro.vmm.memory.SharedFrameStore` additionally collapses pages
whose contents happen to be identical even though they were written
independently (ESX-style content dedup). In a honeyfarm that redundancy
is enormous: every victim of the same worm carries the same worm body.

Historically this module only *measured* the opportunity; the mechanism
now exists, so the scan plays two roles:

* on sharing-off (ablation) hosts it still quantifies what a
  content-sharing VMM would reclaim;
* on sharing-on hosts it verifies the O(1) live ledger: for each host,
  the duplicates the O(n) scan finds must equal that host's
  ``savings_frames``, or the store's refcounts have drifted. The scan
  then reports only the *remaining* opportunity — duplicates across
  host boundaries, which per-host stores cannot collapse — so a
  single sharing-on host reports ~zero.

Worm bodies write deterministic per-worm content tags (see
:func:`repro.services.guest._worm_page_content`), so the measured
savings reflect exactly the cross-victim redundancy a real scanner
would find.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from repro.analysis.report import format_table
from repro.vmm.host import PhysicalHost
from repro.vmm.memory import PAGE_SIZE

__all__ = ["DedupStats", "dedup_opportunity"]


@dataclass(frozen=True)
class DedupStats:
    """What a content-sharing scanner found."""

    vms_scanned: int
    total_private_frames: int    # logical overlay pages (refs, not frames)
    distinct_contents: int
    shareable_frames: int        # duplicates the live stores have NOT collapsed
    largest_duplicate_group: int
    already_shared_frames: int = 0   # duplicates the live stores already collapsed

    @property
    def total_private_bytes(self) -> int:
        return self.total_private_frames * PAGE_SIZE

    @property
    def shareable_bytes(self) -> int:
        return self.shareable_frames * PAGE_SIZE

    @property
    def already_shared_bytes(self) -> int:
        return self.already_shared_frames * PAGE_SIZE

    @property
    def savings_fraction(self) -> float:
        """Fraction of private memory still reclaimable by more sharing."""
        if self.total_private_frames == 0:
            return 0.0
        return self.shareable_frames / self.total_private_frames

    def render(self) -> str:
        return format_table(["metric", "value"], [
            ["VMs scanned", self.vms_scanned],
            ["private frames", self.total_private_frames],
            ["distinct page contents", self.distinct_contents],
            ["shareable frames", self.shareable_frames],
            ["savings", f"{self.savings_fraction * 100:.1f}%"],
            ["largest duplicate group", self.largest_duplicate_group],
            ["reclaimable MiB", f"{self.shareable_bytes / 2**20:.1f}"],
            ["already shared frames (live)", self.already_shared_frames],
            ["already shared MiB (live)", f"{self.already_shared_bytes / 2**20:.1f}"],
        ], title="Content-based sharing opportunity")


def dedup_opportunity(hosts: Iterable[PhysicalHost]) -> DedupStats:
    """Scan all live VMs' private pages for identical contents.

    O(total private pages); the same pass a background scanner in the
    VMM would make. On hosts with content sharing enabled the scan also
    asserts agreement with the live store's O(1) accounting, raising
    :class:`AssertionError` on any divergence.
    """
    farm_counts: Counter = Counter()
    total = 0
    vms = 0
    already_shared = 0
    for host in hosts:
        host_counts: Counter = Counter()
        for vm in host.vms():
            if vm.address_space.destroyed:
                continue
            vms += 1
            for __, content in vm.address_space.private_page_contents():
                host_counts[content] += 1
        host_total = sum(host_counts.values())
        host_duplicates = host_total - len(host_counts)
        store = host.memory.sharing
        if store is not None:
            # Cross-check the mechanism against the measurement: every
            # within-host duplicate must already be collapsed.
            if store.savings_frames != host_duplicates:
                raise AssertionError(
                    f"{host.name}: live store reports {store.savings_frames}"
                    f" frames saved but the scan found {host_duplicates}"
                    " within-host duplicates"
                )
            already_shared += host_duplicates
        total += host_total
        farm_counts.update(host_counts)
    distinct = len(farm_counts)
    largest = max(farm_counts.values(), default=0)
    return DedupStats(
        vms_scanned=vms,
        total_private_frames=total,
        distinct_contents=distinct,
        shareable_frames=total - distinct - already_shared,
        largest_duplicate_group=largest,
        already_shared_frames=already_shared,
    )
