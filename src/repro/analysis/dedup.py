"""Content-based page sharing: quantifying the paper's future work.

Delta virtualization shares pages that were *never modified*. The paper
points at a further step — sharing pages whose contents happen to be
identical even though they were written independently (ESX-style content
dedup). In a honeyfarm that redundancy is enormous: every victim of the
same worm carries the same worm body.

This module measures the opportunity rather than mutating the memory
system: a scanner hashes every private page's content tag across a host
(or farm) and reports how many frames a content-sharing VMM would
reclaim. Worm bodies write deterministic per-worm content tags (see
:func:`repro.services.guest._worm_page_content`), so the measured
savings reflect exactly the cross-victim redundancy a real scanner
would find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.analysis.report import format_table
from repro.vmm.host import PhysicalHost
from repro.vmm.memory import PAGE_SIZE

__all__ = ["DedupStats", "dedup_opportunity"]


@dataclass(frozen=True)
class DedupStats:
    """What a content-sharing scanner found."""

    vms_scanned: int
    total_private_frames: int
    distinct_contents: int
    shareable_frames: int        # frames beyond the first copy of each content
    largest_duplicate_group: int

    @property
    def total_private_bytes(self) -> int:
        return self.total_private_frames * PAGE_SIZE

    @property
    def shareable_bytes(self) -> int:
        return self.shareable_frames * PAGE_SIZE

    @property
    def savings_fraction(self) -> float:
        """Fraction of private memory a content-sharing VMM reclaims."""
        if self.total_private_frames == 0:
            return 0.0
        return self.shareable_frames / self.total_private_frames

    def render(self) -> str:
        return format_table(["metric", "value"], [
            ["VMs scanned", self.vms_scanned],
            ["private frames", self.total_private_frames],
            ["distinct page contents", self.distinct_contents],
            ["shareable frames", self.shareable_frames],
            ["savings", f"{self.savings_fraction * 100:.1f}%"],
            ["largest duplicate group", self.largest_duplicate_group],
            ["reclaimable MiB", f"{self.shareable_bytes / 2**20:.1f}"],
        ], title="Content-based sharing opportunity")


def dedup_opportunity(hosts: Iterable[PhysicalHost]) -> DedupStats:
    """Scan all live VMs' private pages for identical contents.

    O(total private pages); the same pass a background scanner in the
    VMM would make.
    """
    counts: Dict[int, int] = {}
    total = 0
    vms = 0
    for host in hosts:
        for vm in host.vms():
            if vm.address_space.destroyed:
                continue
            vms += 1
            for __, content in vm.address_space.private_page_contents():
                counts[content] = counts.get(content, 0) + 1
                total += 1
    distinct = len(counts)
    shareable = total - distinct
    largest = max(counts.values()) if counts else 0
    return DedupStats(
        vms_scanned=vms,
        total_private_frames=total,
        distinct_contents=distinct,
        shareable_frames=shareable,
        largest_duplicate_group=largest,
    )
