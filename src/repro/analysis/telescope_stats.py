"""Telescope traffic characterisation (experiment F-TRAFFIC).

Telescope papers — and the paper's own evaluation setup — lead with a
characterisation of what the dark space actually receives: how fast new
sources appear, which services they probe, and how heavy-tailed the
per-source activity is. These statistics are also exactly the knobs the
synthetic generator exposes, so this module doubles as the *validation*
that generated traces exhibit the published structure they were
calibrated to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.report import format_table
from repro.net.packet import PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.sim.metrics import Histogram, TimeSeries
from repro.workloads.trace import TraceRecord

__all__ = ["TrafficProfile", "characterize_trace"]

_PROTO_NAMES = {PROTO_TCP: "tcp", PROTO_UDP: "udp", PROTO_ICMP: "icmp"}


@dataclass
class TrafficProfile:
    """Everything the characterisation computes for one trace."""

    duration: float
    total_packets: int
    unique_sources: int
    unique_destinations: int
    source_arrival_series: TimeSeries       # cumulative distinct sources
    top_ports: List[Tuple[str, int]]        # ("tcp/445", count), descending
    session_sizes: Histogram                # packets per source
    exploit_packets: int
    backscatter_packets: int                # TCP with SYN/ACK or RST flags

    @property
    def packets_per_second(self) -> float:
        return self.total_packets / self.duration if self.duration else 0.0

    @property
    def mean_session_packets(self) -> float:
        return self.session_sizes.mean

    def hot_port_concentration(self, top_n: int = 10) -> float:
        """Fraction of packets on the ``top_n`` busiest ports."""
        if not self.total_packets:
            return 0.0
        return sum(count for __, count in self.top_ports[:top_n]) / self.total_packets

    def render(self) -> str:
        overview = format_table(["metric", "value"], [
            ["duration (s)", f"{self.duration:.0f}"],
            ["packets", self.total_packets],
            ["packets/s", f"{self.packets_per_second:.1f}"],
            ["unique sources", self.unique_sources],
            ["unique destinations", self.unique_destinations],
            ["mean packets/source", f"{self.mean_session_packets:.1f}"],
            ["p99 packets/source", f"{self.session_sizes.percentile(99):.0f}"],
            ["max packets/source", f"{self.session_sizes.max:.0f}"],
            ["exploit packets", self.exploit_packets],
            ["backscatter packets", self.backscatter_packets],
            ["top-10 port share", f"{self.hot_port_concentration() * 100:.0f}%"],
        ], title="Telescope traffic characterisation")
        ports = format_table(
            ["service", "packets"],
            [[name, count] for name, count in self.top_ports[:10]],
            title="Busiest target services",
        )
        return overview + "\n\n" + ports


def characterize_trace(records: Sequence[TraceRecord], duration: float) -> TrafficProfile:
    """Compute the full profile of a (time-sorted) trace."""
    if duration <= 0:
        raise ValueError(f"duration must be positive: {duration!r}")
    sources_seen: Dict[str, int] = {}
    destinations = set()
    port_counts: Dict[str, int] = {}
    arrival = TimeSeries("unique sources (cumulative)")
    exploit = 0
    backscatter = 0
    from repro.net.packet import TcpFlags

    for record in records:
        count = sources_seen.get(record.src)
        if count is None:
            sources_seen[record.src] = 1
            arrival.record(record.time, len(sources_seen))
        else:
            sources_seen[record.src] = count + 1
        destinations.add(record.dst)
        proto = _PROTO_NAMES.get(record.protocol, str(record.protocol))
        key = f"{proto}/{record.dst_port}"
        port_counts[key] = port_counts.get(key, 0) + 1
        if record.payload.startswith("exploit:"):
            exploit += 1
        if record.protocol == PROTO_TCP and record.tcp_flags:
            flags = TcpFlags(record.tcp_flags)
            if flags.is_synack or flags & TcpFlags.RST:
                backscatter += 1

    sessions = Histogram("packets per source")
    for count in sources_seen.values():
        sessions.observe(float(count))
    top_ports = sorted(port_counts.items(), key=lambda kv: -kv[1])
    return TrafficProfile(
        duration=duration,
        total_packets=len(records),
        unique_sources=len(sources_seen),
        unique_destinations=len(destinations),
        source_arrival_series=arrival,
        top_ports=top_ports,
        session_sizes=sessions,
        exploit_packets=exploit,
        backscatter_packets=backscatter,
    )
