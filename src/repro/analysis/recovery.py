"""Recovery analysis for chaos runs: MTTR, capture dips, and accounting.

Consumes a finished farm plus the :class:`~repro.faults.injectors.ChaosController`
that drove its fault plan, and answers the three questions a chaos drill
exists to ask:

1. **How fast did the farm heal?** Per host-crash, the live-VM level just
   before the crash, the dip floor after it, and the time until the level
   first returned to its pre-crash value (the MTTR).
2. **What did the faults cost?** Packets lost, broken down by cause
   (host down, clone failed, watchdog timeout, ...), plus clone failures
   and respawn churn.
3. **Does the ledger balance?** Every packet that entered the gateway
   must be delivered, refused, dropped-with-cause, or still pending —
   ``leaked == 0`` is the invariant the golden chaos scenario pins.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import format_table
from repro.core.honeyfarm import Honeyfarm
from repro.faults.injectors import ChaosController, FaultRecord

__all__ = [
    "FaultOutcome",
    "PacketLedger",
    "RecoveryReport",
    "fault_outcomes",
    "packet_ledger",
    "recovery_report",
]

PENDING_DROP_CAUSES = ("host_down", "vm_retired", "timeout", "clone_failed", "vm_died")


@dataclass
class FaultOutcome:
    """One host crash and how the farm's live-VM level recovered from it."""

    record: FaultRecord
    pre_fault_live: float
    min_live: float
    recovered_at: Optional[float]

    @property
    def mttr(self) -> Optional[float]:
        """Seconds from the crash until the live-VM level first returned
        to its pre-crash value; None if it never did within the run."""
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.record.fired_at


@dataclass
class PacketLedger:
    """Conservation check over the gateway's inbound packet counters."""

    packets_in: int
    delivered: int
    refused: int  # ttl expired + strays (never the farm's to handle)
    dropped_by_cause: Dict[str, int] = field(default_factory=dict)
    still_pending: int = 0
    emulated: int = 0  # served by the fidelity ladder's emulator tier

    @property
    def dropped(self) -> int:
        return sum(self.dropped_by_cause.values())

    @property
    def leaked(self) -> int:
        """Packets the counters cannot account for (must be zero)."""
        return (
            self.packets_in
            - self.delivered
            - self.emulated
            - self.refused
            - self.dropped
            - self.still_pending
        )


@dataclass
class RecoveryReport:
    outcomes: List[FaultOutcome]
    ledger: PacketLedger
    records: List[FaultRecord]
    counters: Dict[str, int]

    def render(self) -> str:
        sections = [self._timeline_section()]
        if self.outcomes:
            sections.append(self._mttr_section())
        sections.append(self._healing_section())
        sections.append(self._ledger_section())
        return "\n\n".join(sections)

    def _timeline_section(self) -> str:
        rows = []
        for record in self.records:
            cleared = f"{record.cleared_at:.2f}" if record.cleared_at is not None else "-"
            if record.skipped:
                impact = f"skipped: {record.detail['skipped']}"
            else:
                impact = ", ".join(f"{k}={v}" for k, v in sorted(record.detail.items()))
            rows.append([record.kind, record.target, f"{record.fired_at:.2f}", cleared, impact])
        if not rows:
            rows.append(["(none)", "-", "-", "-", "-"])
        return format_table(
            ["fault", "target", "fired (s)", "cleared (s)", "impact"],
            rows, title="Fault timeline",
        )

    def _mttr_section(self) -> str:
        rows = []
        for outcome in self.outcomes:
            mttr = f"{outcome.mttr:.2f}" if outcome.mttr is not None else "not recovered"
            rows.append([
                outcome.record.target,
                f"{outcome.record.fired_at:.2f}",
                f"{outcome.pre_fault_live:.0f}",
                f"{outcome.min_live:.0f}",
                mttr,
            ])
        return format_table(
            ["host", "crashed (s)", "live before", "dip floor", "MTTR (s)"],
            rows, title="Host-crash recovery",
        )

    def _healing_section(self) -> str:
        c = self.counters
        rows = [
            ["host crashes", c.get("farm.host_crashes", 0)],
            ["host repairs", c.get("farm.host_repairs", 0)],
            ["clone failures", c.get("farm.clone_failures", 0)],
            ["respawns", c.get("farm.respawns", 0)],
            ["respawn retries", c.get("farm.respawn_retries", 0)],
            ["respawns abandoned", c.get("farm.respawns_abandoned", 0)],
            ["pool VMs lost", sum(
                r.detail.get("pool_vms_lost", 0) for r in self.records if not r.skipped
            )],
        ]
        return format_table(["metric", "value"], rows, title="Self-healing")

    def _ledger_section(self) -> str:
        ledger = self.ledger
        rows = [
            ["packets in", ledger.packets_in],
            ["delivered", ledger.delivered],
            ["refused (ttl/stray)", ledger.refused],
        ]
        if ledger.emulated:
            # Only ladder-enabled runs carry this bucket; keep clone-always
            # reports (and their goldens) free of dead rows.
            rows.append(["emulated (ladder)", ledger.emulated])
        for cause, count in sorted(ledger.dropped_by_cause.items()):
            rows.append([f"dropped: {cause}", count])
        rows.append(["still pending", ledger.still_pending])
        rows.append(["leaked", ledger.leaked])
        return format_table(["metric", "value"], rows, title="Packet ledger")


def _level_before(times: List[float], values: List[float], t: float) -> float:
    """The series value strictly before time ``t`` (0.0 if none)."""
    idx = bisect.bisect_left(times, t) - 1
    if idx < 0:
        return 0.0
    return values[idx]


def fault_outcomes(farm: Honeyfarm, controller: ChaosController) -> List[FaultOutcome]:
    """Per host-crash recovery outcomes from the live-VM time series.

    The pre-crash level is read strictly before the crash instant (the
    crash itself records the post-drop value at ``fired_at``); recovery
    is the first sample at which the level regains that value.
    """
    series = farm.metrics.series("farm.live_vms_series")
    times, values = series.times, series.values
    outcomes: List[FaultOutcome] = []
    crashes = [
        r for r in controller.records if r.kind == "host_crash" and not r.skipped
    ]
    for index, record in enumerate(crashes):
        pre = _level_before(times, values, record.fired_at)
        start = bisect.bisect_left(times, record.fired_at)
        # The dip window runs to the next crash (or the end of the run):
        # a later crash resets the baseline, so min/recovery stop there.
        end_time = (
            crashes[index + 1].fired_at if index + 1 < len(crashes) else float("inf")
        )
        end = bisect.bisect_left(times, end_time)
        window = values[start:end]
        min_live = min(window) if window else pre
        recovered_at: Optional[float] = None
        for i in range(start, end):
            if values[i] >= pre:
                recovered_at = times[i]
                break
        outcomes.append(
            FaultOutcome(
                record=record, pre_fault_live=pre,
                min_live=min_live, recovered_at=recovered_at,
            )
        )
    return outcomes


def packet_ledger(farm: Honeyfarm) -> PacketLedger:
    """Reconcile the gateway's inbound counters into a conservation check."""
    counters = farm.metrics.counters()
    dropped: Dict[str, int] = {}
    for cause in ("no_capacity_drop", "pending_overflow", "dropped_vm_not_running"):
        count = counters.get(f"gateway.{cause}", 0)
        if count:
            dropped[cause.replace("_drop", "").replace("dropped_", "")] = count
    for cause in PENDING_DROP_CAUSES:
        count = counters.get(f"gateway.pending_dropped_{cause}", 0)
        if count:
            dropped[f"pending_{cause}"] = count
    return PacketLedger(
        packets_in=counters.get("gateway.packets_in", 0),
        delivered=counters.get("gateway.delivered", 0),
        refused=counters.get("gateway.ttl_expired", 0) + counters.get("gateway.stray", 0),
        dropped_by_cause=dropped,
        still_pending=farm.gateway.pending_packet_count,
        emulated=counters.get("gateway.emulated", 0),
    )


def recovery_report(farm: Honeyfarm, controller: ChaosController) -> RecoveryReport:
    """Build the full recovery report for a chaos run."""
    return RecoveryReport(
        outcomes=fault_outcomes(farm, controller),
        ledger=packet_ledger(farm),
        records=list(controller.records),
        counters=dict(farm.metrics.counters()),
    )
