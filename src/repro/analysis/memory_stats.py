"""Per-VM memory footprint statistics and capacity estimation (F-MEM).

The memory half of the scalability result: with delta virtualization a
clone's footprint is its dirtied pages, so the question "how many VMs fit
on a host?" becomes "image + N × (typical private footprint) ≤ RAM".
These helpers turn a farm's live VM population into the distribution the
paper plots and into a VMs-per-host estimate comparable to its
116-VMs-demonstrated figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.sim.metrics import Histogram
from repro.vmm.host import PhysicalHost
from repro.vmm.memory import PAGE_SIZE
from repro.vmm.vm import VirtualMachine

__all__ = [
    "FootprintSummary",
    "SharingSummary",
    "footprint_summary",
    "sharing_summary",
    "vms_per_host_estimate",
]


@dataclass(frozen=True)
class FootprintSummary:
    """Distribution of per-VM private footprints, in bytes."""

    vm_count: int
    mean: float
    median: float
    p90: float
    p99: float
    max: float
    total: float

    @property
    def mean_mib(self) -> float:
        return self.mean / (1 << 20)

    @property
    def median_mib(self) -> float:
        return self.median / (1 << 20)


def footprint_summary(vms: Iterable[VirtualMachine]) -> FootprintSummary:
    """Summarise the private footprints of a VM population."""
    hist = Histogram("private_bytes")
    for vm in vms:
        hist.observe(vm.private_bytes)
    return FootprintSummary(
        vm_count=hist.count,
        mean=hist.mean,
        median=hist.median,
        p90=hist.percentile(90),
        p99=hist.percentile(99),
        max=hist.max,
        total=hist.total,
    )


@dataclass(frozen=True)
class SharingSummary:
    """Live content-sharing state across a cluster, read straight from
    each host's :class:`~repro.vmm.memory.SharedFrameStore` counters —
    O(hosts), no page scan."""

    hosts: int
    total_private_refs: int      # logical overlay pages across the cluster
    distinct_private_frames: int  # physical frames backing them
    shared_frames: int           # frames with >= 2 references
    savings_frames: int          # frames sharing is currently avoiding

    @property
    def savings_bytes(self) -> int:
        return self.savings_frames * PAGE_SIZE

    @property
    def savings_fraction(self) -> float:
        """Fraction of logical private memory sharing collapses."""
        if self.total_private_refs == 0:
            return 0.0
        return self.savings_frames / self.total_private_refs


def sharing_summary(hosts: Iterable[PhysicalHost]) -> SharingSummary:
    """Aggregate the live O(1) sharing counters (zeros when sharing is
    off everywhere)."""
    count = refs = distinct = shared = savings = 0
    for host in hosts:
        count += 1
        store = host.memory.sharing
        if store is None:
            continue
        refs += store.total_refs
        distinct += store.distinct_frames
        shared += store.shared_frames
        savings += store.savings_frames
    return SharingSummary(
        hosts=count,
        total_private_refs=refs,
        distinct_private_frames=distinct,
        shared_frames=shared,
        savings_frames=savings,
    )


def vms_per_host_estimate(
    host_memory_bytes: int,
    image_bytes: int,
    private_bytes_per_vm: float,
    reserved_fraction: float = 0.05,
    full_copy: bool = False,
) -> int:
    """How many VMs a host of the given size can hold.

    ``reserved_fraction`` holds back memory for the control plane (dom0
    in the real system). With ``full_copy`` each VM is charged its whole
    image — the conventional-deployment comparator.
    """
    if not (0.0 <= reserved_fraction < 1.0):
        raise ValueError(f"reserved_fraction must be in [0, 1): {reserved_fraction!r}")
    usable = host_memory_bytes * (1.0 - reserved_fraction)
    per_vm = float(image_bytes) if full_copy else max(private_bytes_per_vm, PAGE_SIZE)
    available = usable - image_bytes  # one resident reference image either way
    if available <= 0:
        return 0
    return int(available // per_vm)
