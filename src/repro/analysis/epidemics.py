"""Epidemic curves and containment effectiveness (experiment F-CONTAIN).

Containment quality is judged on two axes the paper articulates:

* **Safety** — did anything the farm's honeypots initiated reach the
  Internet? (``escaped_packets`` must be zero for every policy except
  the deliberately unsafe ``open``.)
* **Fidelity** — did multi-stage behaviour remain observable? Reflection
  is the only safe policy under which the in-farm epidemic *continues*
  (infections at generation ≥ 1), which is exactly the paper's argument
  for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.honeyfarm import Honeyfarm
from repro.services.guest import InfectionRecord
from repro.sim.metrics import TimeSeries

__all__ = ["ContainmentSummary", "infection_curve", "generation_histogram", "summarize_containment"]


@dataclass(frozen=True)
class ContainmentSummary:
    """One policy's outcome for the containment comparison table."""

    policy: str
    infections_total: int
    first_generation_infections: int
    max_generation: int
    onward_infections: int  # generation >= 1: multi-stage spread observed
    escaped_packets: int    # honeypot-initiated packets that left the farm
    dns_transactions: int
    reflected_packets: int
    dropped_packets: int

    @property
    def contained(self) -> bool:
        """True when nothing honeypot-initiated escaped."""
        return self.escaped_packets == 0

    @property
    def fidelity_preserved(self) -> bool:
        """True when infected honeypots were observed propagating."""
        return self.onward_infections > 0


def infection_curve(
    infections: Sequence[InfectionRecord], sample_interval: float = 1.0
) -> TimeSeries:
    """Cumulative infections over time (the outbreak figure's y-axis)."""
    series = TimeSeries("infections_cumulative")
    count = 0
    for record in sorted(infections, key=lambda r: r.time):
        count += 1
        series.record(record.time, count)
    return series


def generation_histogram(infections: Sequence[InfectionRecord]) -> Dict[int, int]:
    """Infections per epidemic generation (0 = arrived from outside)."""
    hist: Dict[int, int] = {}
    for record in infections:
        hist[record.generation] = hist.get(record.generation, 0) + 1
    return dict(sorted(hist.items()))


def summarize_containment(farm: Honeyfarm) -> ContainmentSummary:
    """Read a finished run's containment outcome off the farm's metrics.

    ``escaped_packets`` counts ``gateway.initiated_external_out`` —
    honeypot-*initiated* packets the policy let reach the Internet.
    Replies to external scanners (the farm's purpose) leave via the same
    tunnels but are counted separately and are not escapes.
    """
    counters = farm.metrics.counters()
    generations = generation_histogram(farm.infections)
    onward = sum(count for gen, count in generations.items() if gen >= 1)
    return ContainmentSummary(
        policy=farm.config.containment,
        infections_total=len(farm.infections),
        first_generation_infections=generations.get(0, 0),
        max_generation=max(generations) if generations else 0,
        onward_infections=onward,
        escaped_packets=counters.get("gateway.initiated_external_out", 0),
        dns_transactions=counters.get("gateway.dns_answered", 0),
        reflected_packets=counters.get("gateway.outbound.reflected", 0),
        dropped_packets=counters.get("gateway.outbound.dropped", 0),
    )
