"""Flight-recorder trace analysis: load, filter, and summarize JSONL traces.

Consumes the JSONL stream written by
:meth:`repro.obs.recorder.FlightRecorder.dump` and answers the questions
the trace exists for:

* **What happened, where?** — :func:`subsystem_breakdown` and
  :func:`verdict_counts` aggregate the event stream per subsystem and
  per dispatch verdict.
* **How long did dispatch take?** — :func:`dispatch_latencies`
  reconstructs, per address, the time from the first packet that
  triggered a flash clone (``verdict=clone_requested``) to the moment
  the gateway flushed that address's queue into the running VM
  (``verdict=flushed``) — the paper's first-packet-to-ready latency, as
  seen from the trace alone.
* **Show me the gateway's decisions** — :func:`parse_filter` /
  :func:`filter_events` implement the CLI's ``--filter subsystem=gateway``
  narrowing, and :func:`format_event` renders single events for the
  ``--tail`` (follow-style) view.

Every function operates on plain dicts (one per JSONL line), so traces
can also be post-processed with ordinary ``json``/pandas tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.report import format_table

__all__ = [
    "load_trace",
    "iter_trace",
    "parse_filter",
    "filter_events",
    "subsystem_breakdown",
    "verdict_counts",
    "dispatch_latencies",
    "handoff_latencies",
    "ladder_summary",
    "format_event",
    "render_trace_summary",
]

#: CLI-friendly aliases for the compact JSONL keys.
_FILTER_ALIASES = {"subsystem": "sub", "event": "ev", "time": "t"}

#: Keys rendered first (and excluded from the free-field tail) by
#: :func:`format_event`.
_CORE_KEYS = ("t", "seq", "sub", "ev")


def iter_trace(path: Any) -> Iterator[Dict[str, Any]]:
    """Yield one event dict per non-empty line of a JSONL trace file."""
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def load_trace(path: Any) -> List[Dict[str, Any]]:
    """Load a whole JSONL trace into memory."""
    return list(iter_trace(path))


def parse_filter(expression: str) -> Tuple[str, str]:
    """Parse one ``key=value`` filter expression (CLI ``--filter``).

    ``subsystem``/``event``/``time`` alias the compact JSONL keys
    ``sub``/``ev``/``t``.
    """
    key, sep, value = expression.partition("=")
    if not sep or not key or not value:
        raise ValueError(f"filter must look like key=value, got {expression!r}")
    return _FILTER_ALIASES.get(key, key), value


def filter_events(
    events: Iterable[Dict[str, Any]], filters: Iterable[Tuple[str, str]]
) -> List[Dict[str, Any]]:
    """Keep events whose fields match every ``(key, value)`` filter.

    Values compare as strings, so ``vm_id=7`` matches the integer field.
    Events missing a filtered key never match.
    """
    criteria = list(filters)
    out = []
    for event in events:
        for key, value in criteria:
            if key not in event or str(event[key]) != value:
                break
        else:
            out.append(event)
    return out


def subsystem_breakdown(
    events: Iterable[Dict[str, Any]],
) -> Dict[str, Dict[str, float]]:
    """Events, first and last sim-time per subsystem."""
    out: Dict[str, Dict[str, float]] = {}
    for event in events:
        sub = event.get("sub", "unknown")
        cell = out.get(sub)
        if cell is None:
            out[sub] = {
                "events": 1,
                "first_t": event["t"],
                "last_t": event["t"],
            }
        else:
            cell["events"] += 1
            if event["t"] < cell["first_t"]:
                cell["first_t"] = event["t"]
            if event["t"] > cell["last_t"]:
                cell["last_t"] = event["t"]
    return {sub: out[sub] for sub in sorted(out)}


def verdict_counts(events: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """Dispatch-verdict histogram over gateway dispatch events."""
    counts: Dict[str, int] = {}
    for event in events:
        if event.get("sub") == "gateway" and event.get("ev") == "dispatch":
            verdict = event.get("verdict", "unknown")
            counts[verdict] = counts.get(verdict, 0) + 1
    return {verdict: counts[verdict] for verdict in sorted(counts)}


def dispatch_latencies(
    events: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Reconstruct per-address first-packet-to-flush latency.

    For each destination address, pairs the ``clone_requested`` dispatch
    event (the first packet arriving for a cold address) with the first
    subsequent ``flushed`` event for the same address (the gateway
    draining that address's pending queue into the now-running VM).
    Addresses whose clone never delivered within the trace are omitted.
    """
    requested: Dict[str, float] = {}
    latencies: List[Dict[str, Any]] = []
    for event in events:
        if event.get("sub") != "gateway" or event.get("ev") != "dispatch":
            continue
        verdict = event.get("verdict")
        dst = event.get("dst")
        if verdict == "clone_requested":
            # Keep the *first* request; a respawned address restarts it.
            requested.setdefault(dst, event["t"])
        elif verdict == "flushed" and dst in requested:
            t0 = requested.pop(dst)
            latencies.append({"dst": dst, "requested_t": t0,
                              "flushed_t": event["t"],
                              "latency": event["t"] - t0})
    return latencies


def handoff_latencies(
    events: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Reconstruct per-address promotion-to-handoff latency.

    Pairs each fidelity-ladder ``promotion`` event with the first
    subsequent ``handoff`` event for the same address — the window in
    which the attacker's flow rode the pending queue while the flash
    clone came up. Promotions whose handoff never completed within the
    trace (clone faulted, VM retired first) are omitted; the ``demotion``
    events account for those.
    """
    promoted: Dict[str, Dict[str, Any]] = {}
    latencies: List[Dict[str, Any]] = []
    for event in events:
        if event.get("sub") != "ladder":
            continue
        ip = event.get("ip")
        if event.get("ev") == "promotion":
            promoted.setdefault(ip, event)
        elif event.get("ev") == "handoff" and ip in promoted:
            start = promoted.pop(ip)
            latencies.append({
                "ip": ip,
                "trigger": start.get("trigger", "?"),
                "promoted_t": start["t"],
                "handoff_t": event["t"],
                "packets": event.get("packets", 0),
                "latency": event["t"] - start["t"],
            })
    return latencies


def ladder_summary(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate fidelity-ladder activity out of one trace.

    Returns zeros/empties when the trace carries no ladder events (the
    summary renderer uses that to omit the section entirely for
    clone-always runs). Every derived ratio guards its denominator: a
    quiet run — zero promotions, zero handoffs — must summarize to
    zeros, never raise.
    """
    promotions_by_trigger: Dict[str, int] = {}
    demotions = 0
    abandoned = 0
    handoffs = 0
    replayed = 0
    for event in events:
        if event.get("sub") != "ladder":
            continue
        ev = event.get("ev")
        if ev == "promotion":
            trigger = event.get("trigger", "?")
            promotions_by_trigger[trigger] = promotions_by_trigger.get(trigger, 0) + 1
        elif ev == "handoff":
            handoffs += 1
            replayed += event.get("packets", 0)
        elif ev == "demotion":
            demotions += 1
            if event.get("abandoned_handoff"):
                abandoned += 1
    return {
        "promotions": sum(promotions_by_trigger.values()),
        "promotions_by_trigger": dict(sorted(promotions_by_trigger.items())),
        "handoffs": handoffs,
        "packets_replayed": replayed,
        "mean_replayed_per_handoff": replayed / handoffs if handoffs else 0.0,
        "demotions": demotions,
        "handoffs_abandoned": abandoned,
    }


def _latency_stats(values: List[float]) -> Optional[Dict[str, float]]:
    """Mean/p50/p99/max over a latency list, or None when empty.

    The single guard point for every latency denominator in the summary
    renderer: a quiet trace (no clones completed, no handoffs) yields
    None and the caller omits the section, instead of dividing by zero
    or indexing an empty list.
    """
    if not values:
        return None
    ordered = sorted(values)
    count = len(ordered)
    return {
        "count": count,
        "mean": sum(ordered) / count,
        "p50": ordered[count // 2],
        "p99": ordered[min(count - 1, int(count * 0.99))],
        "max": ordered[-1],
    }


def format_event(event: Dict[str, Any]) -> str:
    """One-line rendering of an event for the ``--tail`` view."""
    fields = " ".join(
        f"{key}={event[key]}" for key in sorted(event) if key not in _CORE_KEYS
    )
    head = (
        f"[{event.get('t', 0.0):>10.4f}s] "
        f"{event.get('sub', '?')}.{event.get('ev', '?')}"
    )
    return f"{head} {fields}" if fields else head


def render_trace_summary(
    events: List[Dict[str, Any]],
    timing: Optional[Dict[str, Dict[str, float]]] = None,
    evicted: int = 0,
) -> str:
    """The full plain-text summary the ``trace`` CLI prints.

    ``timing`` is a :meth:`FlightRecorder.timing_summary` dict (only
    available in record mode — wall-clock timing is not serialized into
    the deterministic JSONL stream).
    """
    sections: List[str] = []

    breakdown = subsystem_breakdown(events)
    rows = []
    for sub, cell in breakdown.items():
        row = [sub, int(cell["events"]),
               f"{cell['first_t']:.2f}", f"{cell['last_t']:.2f}"]
        if timing is not None:
            t = timing.get(sub)
            row.append(f"{t['wall_seconds'] * 1e3:.1f}" if t else "-")
        rows.append(row)
    if timing is not None:
        # Subsystems that ran callbacks but never emitted events still
        # burned wall-clock time; show them so the breakdown sums up.
        for sub, t in timing.items():
            if sub not in breakdown:
                rows.append([sub, 0, "-", "-", f"{t['wall_seconds'] * 1e3:.1f}"])
    headers = ["subsystem", "events", "first (s)", "last (s)"]
    if timing is not None:
        headers.append("wall (ms)")
    title = f"Per-subsystem breakdown ({len(events)} events"
    title += f", {evicted} evicted)" if evicted else ")"
    sections.append(format_table(headers, rows, title=title))

    verdicts = verdict_counts(events)
    if verdicts:
        sections.append(format_table(
            ["verdict", "packets"],
            [[verdict, count] for verdict, count in verdicts.items()],
            title="Gateway dispatch verdicts",
        ))

    stats = _latency_stats([item["latency"] for item in dispatch_latencies(events)])
    if stats is not None:
        sections.append(format_table(
            ["metric", "value"],
            [
                ["addresses reconstructed", int(stats["count"])],
                ["mean (ms)", f"{stats['mean'] * 1e3:.1f}"],
                ["p50 (ms)", f"{stats['p50'] * 1e3:.1f}"],
                ["p99 (ms)", f"{stats['p99'] * 1e3:.1f}"],
                ["max (ms)", f"{stats['max'] * 1e3:.1f}"],
            ],
            title="Dispatch latency (first packet -> queue flush)",
        ))

    ladder = ladder_summary(events)
    if ladder["promotions"] or ladder["demotions"]:
        rows = [["promotions", ladder["promotions"]]]
        for trigger, count in ladder["promotions_by_trigger"].items():
            rows.append([f"  by trigger: {trigger}", count])
        rows.extend([
            ["handoffs completed", ladder["handoffs"]],
            ["packets replayed", ladder["packets_replayed"]],
            ["mean replayed per handoff",
             f"{ladder['mean_replayed_per_handoff']:.1f}"],
            ["demotions", ladder["demotions"]],
            ["handoffs abandoned", ladder["handoffs_abandoned"]],
        ])
        hand = _latency_stats([item["latency"] for item in handoff_latencies(events)])
        if hand is not None:
            rows.append(["handoff latency mean (ms)",
                         f"{hand['mean'] * 1e3:.1f}"])
            rows.append(["handoff latency p50 (ms)",
                         f"{hand['p50'] * 1e3:.1f}"])
            rows.append(["handoff latency max (ms)",
                         f"{hand['max'] * 1e3:.1f}"])
        sections.append(format_table(
            ["metric", "value"], rows, title="Fidelity ladder",
        ))

    return "\n\n".join(sections)
