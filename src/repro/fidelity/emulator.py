"""The protocol-emulator tier: guest-faithful replies without a VM.

The contract of this module is **byte parity with the guest**: for any
packet that does not trigger a promotion, :func:`emulator_replies` must
return exactly the packets a freshly cloned
:class:`~repro.services.guest.GuestHost` of the same personality would
return — same flags, same payloads, same sizes. That parity is what the
world-matrix equivalence oracle proves end to end, and it is why the
shared constants below are imported from the guest module rather than
re-declared (``tests/test_fidelity.py`` pins the parity packet-by-packet).

:class:`EmulatedSession` adds the per-address state the stateless reply
function does not need but the promotion engine does: per-flow exchange
depth and payload-byte accumulation, the negotiated banner, and the
bounded buffer of absorbed packets that becomes the handoff replay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.flow import FlowKey
from repro.net.packet import (
    ICMP_ECHO_REQUEST,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    Packet,
    TcpFlags,
)
# Intentional private imports: the emulator's whole contract is parity
# with the guest's reply path, so the response-prefix check must be the
# guest's own, not a copy that can drift.
from repro.services.guest import ICMP_DEST_UNREACHABLE, _is_response_payload
from repro.services.personality import Personality

__all__ = ["EmulatedSession", "FlowState", "emulator_replies"]

_SYN_ACK = TcpFlags.SYN | TcpFlags.ACK
_RST_ACK = TcpFlags.RST | TcpFlags.ACK
_PSH_ACK = TcpFlags.PSH | TcpFlags.ACK

_BANNER_PREFIX = "banner:"


def emulator_replies(personality: Personality, packet: Packet) -> List[Packet]:
    """The synchronous replies a running guest of ``personality`` would
    send for ``packet`` — minus infection and memory side effects.

    Mirrors ``GuestHost._handle_icmp/_handle_tcp/_handle_udp`` exactly
    (the guest's ``_pending_followups`` branch is unreachable here:
    emulated addresses never initiate connections). Exploit packets that
    would actually infect the guest must be promoted *before* this is
    called; an exploit the personality is not vulnerable to bounces off
    with a banner, just as it does on a real guest.
    """
    if packet.is_icmp:
        if packet.icmp_type != ICMP_ECHO_REQUEST:
            return []
        return [packet.reply_template(size=packet.size)]
    if packet.is_tcp:
        service = personality.service_at(PROTO_TCP, packet.dst_port)
        if packet.flags.is_syn:
            handshake = packet.reply_template()
            handshake.flags = _RST_ACK if service is None else _SYN_ACK
            return [handshake]
        if service is None:
            return []  # mid-stream segment to a closed port: silently drop
        if _is_response_payload(packet.payload):
            return []  # responses never elicit responses (no reply loops)
        if packet.payload and service.banner:
            banner = packet.reply_template(payload=f"{_BANNER_PREFIX}{service.banner}")
            banner.flags = _PSH_ACK
            banner.size = 40 + len(service.banner)
            return [banner]
        return []
    if packet.is_udp:
        if _is_response_payload(packet.payload):
            return []
        service = personality.service_at(PROTO_UDP, packet.dst_port)
        if service is None:
            unreachable = packet.reply_template()
            unreachable.protocol = PROTO_ICMP
            unreachable.icmp_type = ICMP_DEST_UNREACHABLE
            unreachable.size = 56
            return [unreachable]
        if service.banner:
            return [packet.reply_template(payload=f"{_BANNER_PREFIX}{service.banner}")]
        return []
    return []  # unknown IP protocol: the guest drops it silently too


class FlowState:
    """Promotion-relevant state of one flow inside a session.

    ``exchanges`` counts application exchanges (payload-carrying,
    non-response TCP/UDP packets) and ``payload_bytes`` accumulates their
    payload lengths — both *include* the packet currently under
    consideration, so triggers evaluate prospective values.
    """

    __slots__ = ("exchanges", "payload_bytes")

    def __init__(self) -> None:
        self.exchanges = 0
        self.payload_bytes = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FlowState exchanges={self.exchanges} bytes={self.payload_bytes}>"


class EmulatedSession:
    """Per-address emulator state: flow depths, banner, replay buffer."""

    __slots__ = (
        "personality",
        "created_at",
        "last_seen",
        "flows",
        "buffered",
        "buffer_dropped",
        "banner",
        "packets_absorbed",
        "payload_bytes_total",
    )

    def __init__(self, personality: Personality, now: float) -> None:
        self.personality = personality
        self.created_at = now
        self.last_seen = now
        self.flows: Dict[FlowKey, FlowState] = {}
        self.buffered: List[Packet] = []
        self.buffer_dropped = 0
        self.banner: Optional[str] = None
        self.packets_absorbed = 0
        self.payload_bytes_total = 0

    def note(
        self, packet: Packet, now: float, key: Optional[FlowKey] = None
    ) -> Tuple[FlowState, bool]:
        """Account ``packet`` against its flow's state (creating it on
        first sight) and return ``(state, flow_created)``. Called before
        trigger evaluation, so triggers see the packet's contribution.
        ``key`` lets the gateway's batched lane pass the canonical flow
        key it already computed instead of re-deriving it."""
        self.last_seen = now
        if key is None:
            key = FlowKey.from_packet(packet)
        state = self.flows.get(key)
        created = state is None
        if created:
            state = self.flows[key] = FlowState()
        if (
            packet.protocol in (PROTO_TCP, PROTO_UDP)
            and packet.payload
            and not _is_response_payload(packet.payload)
        ):
            state.exchanges += 1
            state.payload_bytes += len(packet.payload)
            self.payload_bytes_total += len(packet.payload)
        return state, created

    def emulate(self, packet: Packet) -> List[Packet]:
        """Answer ``packet`` and track the negotiated banner."""
        self.packets_absorbed += 1
        replies = emulator_replies(self.personality, packet)
        for reply in replies:
            if reply.payload.startswith(_BANNER_PREFIX):
                self.banner = reply.payload[len(_BANNER_PREFIX):]
        return replies

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<EmulatedSession {self.personality.name} flows={len(self.flows)}"
            f" absorbed={self.packets_absorbed} buffered={len(self.buffered)}>"
        )
