"""The fidelity ladder: emulator tier, promotion engine, state handoff.

Potemkin binds a VM to an address only when a packet arrives; this
package pushes late binding one rung further. Most telescope traffic
never gets past a banner exchange, so the ladder answers cold-address
packets from a lightweight protocol emulator (personality-faithful,
SIPHON/Cowrie class) and *promotes* a flow to a real flash clone only
when a pluggable trigger decides the conversation got interesting — a
vulnerability probe, enough payload, enough protocol depth. A handoff
record replays the emulated prefix of the conversation into the fresh
VM so the attacker sees one continuous session.

See ``docs/FIDELITY.md`` for the design and the ablation knobs.
"""

from repro.fidelity.emulator import EmulatedSession, FlowState, emulator_replies
from repro.fidelity.handoff import HandoffRecord
from repro.fidelity.ladder import FidelityLadder, LadderVerdict
from repro.fidelity.triggers import (
    PayloadBytesTrigger,
    PromotionTrigger,
    StateDepthTrigger,
    VulnProbeTrigger,
    default_triggers,
)

__all__ = [
    "EmulatedSession",
    "FidelityLadder",
    "FlowState",
    "HandoffRecord",
    "LadderVerdict",
    "PayloadBytesTrigger",
    "PromotionTrigger",
    "StateDepthTrigger",
    "VulnProbeTrigger",
    "default_triggers",
    "emulator_replies",
]
