"""State-handoff records: what a promotion carries into the fresh VM.

When a trigger fires mid-conversation, the emulator's absorbed prefix of
the session is packaged into a :class:`HandoffRecord`. Once the flash
clone is running, the gateway replays the buffered packets into the VM
with replies suppressed — the emulator already answered them, and the
guest's reply function is byte-identical, so replaying the replies would
duplicate what the attacker has already seen. The replay rebuilds the
guest-side state (connection counters, dirtied pages) so the *next*
packet of the conversation lands on a VM that behaves as if it had
served the session from the first SYN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.addr import IPAddress
from repro.net.packet import Packet

__all__ = ["HandoffRecord"]


@dataclass
class HandoffRecord:
    """One promotion's conversation state, awaiting a running VM.

    ``buffered`` holds the absorbed packets in arrival order (bounded by
    ``LadderConfig.max_handoff_packets``; ``buffer_dropped`` counts the
    oldest packets evicted when the bound was hit). ``banner`` is the
    last service banner the emulator sent — the negotiated application
    state the VM's personality must match. ``created_at`` stamps the
    promotion instant; the gateway measures handoff latency against it.
    """

    ip: IPAddress
    created_at: float
    trigger: str
    buffered: List[Packet] = field(default_factory=list)
    flows: int = 0
    payload_bytes: int = 0
    banner: Optional[str] = None
    buffer_dropped: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<HandoffRecord {self.ip} trigger={self.trigger}"
            f" buffered={len(self.buffered)} flows={self.flows}>"
        )
