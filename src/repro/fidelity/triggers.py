"""Pluggable promotion triggers for the fidelity ladder.

A trigger inspects one inbound packet, the state of its flow inside the
emulated session, and the personality being impersonated, and decides
whether the conversation has earned a real VM. Triggers are evaluated in
registration order *before* the packet is emulated, so the triggering
packet itself is never answered by the emulator — it takes the normal
clone-and-queue path and is delivered (live) to the promoted VM, which
is what keeps a promoted flow's replies identical to a clone-always
farm's.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import LadderConfig
from repro.fidelity.emulator import FlowState
from repro.net.packet import Packet
from repro.services.personality import Personality
from repro.services.vulnerabilities import VulnerabilityCatalog

__all__ = [
    "PayloadBytesTrigger",
    "PromotionTrigger",
    "StateDepthTrigger",
    "VulnProbeTrigger",
    "default_triggers",
]


class PromotionTrigger:
    """Base class; ``name`` labels promotion metrics and events."""

    name = "trigger"

    def should_promote(
        self, personality: Personality, flow: FlowState, packet: Packet
    ) -> bool:
        raise NotImplementedError


class VulnProbeTrigger(PromotionTrigger):
    """The packet exploits a vulnerability this personality actually
    has: without a promotion the infection — the farm's entire purpose —
    would bounce off the emulator. Probes for vulnerabilities the
    personality lacks do *not* promote; a real guest would shrug them
    off with a banner, and so does the emulator."""

    name = "vuln_probe"

    def __init__(self, catalog: VulnerabilityCatalog) -> None:
        self.catalog = catalog

    def should_promote(self, personality, flow, packet) -> bool:
        vuln = self.catalog.match(packet)
        return vuln is not None and vuln.name in personality.vulnerability_names


class PayloadBytesTrigger(PromotionTrigger):
    """The flow has carried at least ``threshold`` payload bytes —
    somebody is pushing data, not scanning; the emulator's canned
    responses will not fool them much longer."""

    name = "payload_bytes"

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold

    def should_promote(self, personality, flow, packet) -> bool:
        return flow.payload_bytes >= self.threshold


class StateDepthTrigger(PromotionTrigger):
    """The flow reached ``threshold`` application exchanges — a
    conversation deep enough that low-interaction tells (the
    fingerprinting problem the Cowrie literature documents) start to
    show."""

    name = "state_depth"

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold

    def should_promote(self, personality, flow, packet) -> bool:
        return flow.exchanges >= self.threshold


def default_triggers(
    config: LadderConfig, catalog: VulnerabilityCatalog
) -> List[PromotionTrigger]:
    """The trigger stack a :class:`LadderConfig` describes, in priority
    order (most semantically meaningful first, so promotion metrics
    attribute a vuln probe to ``vuln_probe`` even if it also crosses a
    byte threshold)."""
    triggers: List[PromotionTrigger] = []
    if config.promote_on_vuln_probe:
        triggers.append(VulnProbeTrigger(catalog))
    if config.promote_payload_bytes is not None:
        triggers.append(PayloadBytesTrigger(config.promote_payload_bytes))
    if config.promote_state_depth is not None:
        triggers.append(StateDepthTrigger(config.promote_state_depth))
    return triggers
