"""The fidelity-ladder coordinator: sessions, promotion, demotion.

One :class:`FidelityLadder` sits beside the gateway (attached when
``HoneyfarmConfig.ladder.enabled``). The gateway consults it for every
packet addressed to a *cold* address — one with no live or cloning VM —
and the ladder either absorbs the packet into an emulated session
(returning the guest-faithful replies) or declares a promotion, in which
case the gateway falls through to its normal flash-clone dispatch with
the triggering packet queued for the new VM.

Accounting contract (see ``docs/FIDELITY.md``): packets absorbed by the
emulator are counted under ``gateway.emulated`` — a first-class bucket
of the packet-conservation ledger — and handoff replays of those same
packets into the promoted VM are counted under
``ladder.handoff_packets_replayed`` only, never ``gateway.delivered``,
so no packet is ever accounted twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import HoneyfarmConfig
from repro.fidelity.emulator import EmulatedSession
from repro.fidelity.handoff import HandoffRecord
from repro.fidelity.triggers import default_triggers
from repro.net.addr import AddressSpaceInventory, IPAddress
from repro.net.flow import FlowKey
from repro.net.packet import Packet
from repro.obs import recorder as _obs
from repro.services.personality import PersonalityRegistry
from repro.sim.engine import Simulator
from repro.sim.metrics import MetricRegistry

__all__ = ["FidelityLadder", "LadderVerdict"]


@dataclass
class LadderVerdict:
    """What the ladder decided about one packet."""

    promoted: bool
    trigger: Optional[str] = None
    replies: List[Packet] = field(default_factory=list)


class FidelityLadder:
    """See module docstring."""

    def __init__(
        self,
        sim: Simulator,
        config: HoneyfarmConfig,
        registry: PersonalityRegistry,
        inventory: AddressSpaceInventory,
        metrics: Optional[MetricRegistry] = None,
        session_idle_timeout: float = 60.0,
    ) -> None:
        self.sim = sim
        self.config = config
        self.ladder_config = config.ladder
        self.registry = registry
        self.inventory = inventory
        self.metrics = metrics or MetricRegistry()
        self.session_idle_timeout = session_idle_timeout
        self.triggers = default_triggers(self.ladder_config, registry.catalog)
        self.sessions: Dict[IPAddress, EmulatedSession] = {}
        self.handoffs: Dict[IPAddress, HandoffRecord] = {}
        # Provable lower bound on min(session.last_seen) over live
        # sessions: lets sweep() skip its full scan whenever nothing can
        # possibly have expired. Sound because last_seen only increases
        # and session creators push the floor down to their timestamp.
        self._session_floor = float("inf")
        handle = self.metrics.handle
        self._c_sessions_started = handle("ladder.sessions_started")
        self._c_sessions_expired = handle("ladder.sessions_expired")
        self._c_flows_seen = handle("ladder.flows_seen")
        self._c_promotions = handle("ladder.promotions")
        self._c_promotions_by_trigger = {
            trigger.name: handle(f"ladder.promotions.{trigger.name}")
            for trigger in self.triggers
        }
        self._c_demotions = handle("ladder.demotions")
        self._c_handoffs_completed = handle("ladder.handoffs_completed")
        self._c_handoffs_abandoned = handle("ladder.handoffs_abandoned")
        self._c_handoff_replayed = handle("ladder.handoff_packets_replayed")
        self._c_buffer_dropped = handle("ladder.handoff_buffer_dropped")
        self._handoff_latency = self.metrics.histogram("ladder.handoff_seconds")

    # ------------------------------------------------------------------ #
    # Per-packet path (called by the gateway for cold addresses)
    # ------------------------------------------------------------------ #

    def consider(
        self, packet: Packet, now: float, key: Optional["FlowKey"] = None
    ) -> LadderVerdict:
        """Absorb ``packet`` into the emulator tier, or promote its flow.

        ``key`` is the packet's canonical flow key when the caller (the
        gateway's batched lane) has already computed it."""
        session = self.sessions.get(packet.dst)
        if session is None:
            session = self._open_session(packet.dst, now)
        state, flow_created = session.note(packet, now, key=key)
        if flow_created:
            self._c_flows_seen.increment()
        for trigger in self.triggers:
            if trigger.should_promote(session.personality, state, packet):
                self._promote(packet.dst, session, trigger.name, now)
                return LadderVerdict(promoted=True, trigger=trigger.name)
        replies = session.emulate(packet)
        self._buffer(session, packet)
        return LadderVerdict(promoted=False, replies=replies)

    def _open_session(self, ip: IPAddress, now: float) -> EmulatedSession:
        prefix = self.inventory.lookup(ip)
        personality = self.registry.get(
            self.config.personality_for_address(prefix, ip)
        )
        session = EmulatedSession(personality, now)
        self.sessions[ip] = session
        self._c_sessions_started.increment()
        if now < self._session_floor:
            self._session_floor = now
        return session

    def _buffer(self, session: EmulatedSession, packet: Packet) -> None:
        limit = self.ladder_config.max_handoff_packets
        if limit <= 0:
            return
        if len(session.buffered) >= limit:
            # Keep the most recent conversation context for the replay;
            # the evicted prefix is already fully answered.
            session.buffered.pop(0)
            session.buffer_dropped += 1
            self._c_buffer_dropped.increment()
        session.buffered.append(packet)

    def _promote(
        self, ip: IPAddress, session: EmulatedSession, trigger: str, now: float
    ) -> None:
        stale = self.handoffs.pop(ip, None)
        if stale is not None:
            # A previous promotion for this address never met a running
            # VM (clone refused or still unbound); its state is stale.
            self._c_handoffs_abandoned.increment()
        handoff = HandoffRecord(
            ip=ip,
            created_at=now,
            trigger=trigger,
            # The gateway's span lane buffers lazy (columns, index) pairs
            # instead of packets; materialize them here — the one choke
            # point every promotion passes through — so handoff replay
            # (and everything downstream) only ever sees real packets.
            buffered=[
                p if p.__class__ is Packet else p[0].packet_at(p[1])
                for p in session.buffered
            ],
            flows=len(session.flows),
            payload_bytes=session.payload_bytes_total,
            banner=session.banner,
            buffer_dropped=session.buffer_dropped,
        )
        self.handoffs[ip] = handoff
        del self.sessions[ip]
        self._c_promotions.increment()
        self._c_promotions_by_trigger[trigger].increment()
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                now, "ladder", "promotion",
                ip=str(ip), trigger=trigger, buffered=len(handoff.buffered),
                flows=handoff.flows, banner=handoff.banner or "",
            )

    # ------------------------------------------------------------------ #
    # Handoff lifecycle (called by the gateway)
    # ------------------------------------------------------------------ #

    def take_handoff(self, ip: IPAddress) -> Optional[HandoffRecord]:
        """Claim the pending handoff for ``ip`` (the VM is ready)."""
        return self.handoffs.pop(ip, None)

    def handoff_complete(
        self, handoff: HandoffRecord, replayed: int, vm_id: int, now: float
    ) -> None:
        """Account one finished replay into a running VM."""
        self._c_handoffs_completed.increment()
        self._c_handoff_replayed.increment(replayed)
        latency = now - handoff.created_at
        self._handoff_latency.observe(latency)
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                now, "ladder", "handoff",
                ip=str(handoff.ip), vm_id=vm_id, trigger=handoff.trigger,
                packets=replayed, latency=latency,
            )

    def vm_retired(self, ip: IPAddress, cause: str) -> None:
        """The address fell back off the VM rung: demotion.

        Any handoff still waiting for that VM is abandoned (the chaos
        layer can fail a clone between promotion and readiness)."""
        abandoned = self.handoffs.pop(ip, None)
        if abandoned is not None:
            self._c_handoffs_abandoned.increment()
        self._c_demotions.increment()
        if _obs.ACTIVE is not None:
            _obs.ACTIVE.emit(
                self.sim.now, "ladder", "demotion",
                ip=str(ip), cause=cause,
                abandoned_handoff=abandoned is not None,
            )

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def sweep(self, now: float) -> int:
        """Expire emulated sessions idle past the session timeout
        (piggybacks on the gateway's flow sweep).

        O(1) when the floor proves no session can have expired (the
        common case between bursts); otherwise one scan that also
        recomputes the exact floor."""
        timeout = self.session_idle_timeout
        if now - self._session_floor <= timeout:
            return 0
        expired = []
        floor = float("inf")
        for ip, session in self.sessions.items():
            last_seen = session.last_seen
            if now - last_seen > timeout:
                expired.append(ip)
            elif last_seen < floor:
                floor = last_seen
        self._session_floor = floor
        for ip in expired:
            del self.sessions[ip]
        if expired:
            self._c_sessions_expired.increment(len(expired))
        return len(expired)

    @property
    def live_sessions(self) -> int:
        return len(self.sessions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FidelityLadder sessions={len(self.sessions)}"
            f" pending_handoffs={len(self.handoffs)}"
            f" triggers={[t.name for t in self.triggers]}>"
        )
