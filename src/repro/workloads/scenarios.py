"""Canned scenarios: farm + workload combinations the experiments share.

Each scenario returns fully-constructed objects rather than running
anything, so benches and examples stay in control of durations and
measurement points while agreeing on configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.workloads.telescope import TelescopeConfig, TelescopeWorkload
from repro.workloads.worms import (
    KNOWN_WORMS,
    InternetOutbreak,
    OutbreakConfig,
    WormSpec,
)

__all__ = [
    "slash16_farm",
    "small_farm",
    "telescope_scenario",
    "outbreak_scenario",
    "chaos_drill_scenario",
]


def slash16_farm(**overrides) -> Honeyfarm:
    """A farm covering one /16 — the paper's reference unit — on a
    4-server cluster of 2 GiB hosts."""
    config = HoneyfarmConfig(prefixes=("10.16.0.0/16",)).with_overrides(**overrides)
    return Honeyfarm(config)


def small_farm(**overrides) -> Honeyfarm:
    """A /24 farm on one host: fast enough for tests and quickstarts
    while exercising every code path."""
    config = HoneyfarmConfig(
        prefixes=("10.16.0.0/24",),
        num_hosts=1,
        idle_timeout_seconds=30.0,
    ).with_overrides(**overrides)
    return Honeyfarm(config)


def telescope_scenario(
    farm: Optional[Honeyfarm] = None,
    telescope: Optional[TelescopeConfig] = None,
    **farm_overrides,
) -> Tuple[Honeyfarm, TelescopeWorkload]:
    """A /16 farm plus a background-radiation workload aimed at it."""
    farm = farm or slash16_farm(**farm_overrides)
    workload = TelescopeWorkload(farm.config.parsed_prefixes(), telescope)
    return farm, workload


def outbreak_scenario(
    worm_name: str = "codered",
    scan_rate: Optional[float] = None,
    farm: Optional[Honeyfarm] = None,
    outbreak: Optional[OutbreakConfig] = None,
    **farm_overrides,
) -> Tuple[Honeyfarm, InternetOutbreak]:
    """A farm under attack by a named worm's Internet-scale outbreak.

    ``scan_rate`` rescales the worm (simulation-budget knob); the
    outbreak's ``telescope_fraction`` defaults to a compressed 1e-3 so
    the epidemic reaches the farm within simulated minutes, and the
    in-farm copy of the worm is throttled to <= 10 scans/s so the
    reflected epidemic stays simulable (containment behaviour is
    rate-independent).
    """
    if worm_name not in KNOWN_WORMS:
        raise ValueError(f"unknown worm {worm_name!r}; known: {sorted(KNOWN_WORMS)}")
    worm: WormSpec = KNOWN_WORMS[worm_name]
    if scan_rate is not None:
        worm = worm.with_scan_rate(scan_rate)
    farm = farm or small_farm(**farm_overrides)
    config = outbreak or OutbreakConfig(
        telescope_fraction=1e-3,
        in_farm_scan_rate=min(worm.scan_rate, 10.0),
    )
    return farm, InternetOutbreak(farm, worm, config)


def chaos_drill_scenario(
    crash_at: float = 60.0,
    repair_after: float = 30.0,
    plan: Optional["FaultPlan"] = None,
    **farm_overrides,
):
    """The golden chaos drill: a worm outbreak with a mid-run host crash.

    A two-host /24 farm takes a codered outbreak; one host crashes at
    ``crash_at`` (default 60 s, well into the epidemic) and rejoins
    ``repair_after`` seconds later. The gateway's pending-queue watchdog
    is armed so packets stuck behind dead clones fail over instead of
    leaking. Pass ``plan`` to override the fault plan entirely (the
    crash/repair arguments are then ignored).

    The reflected in-farm epidemic is throttled to 2 scans/s per
    infected honeypot — the containment/recovery interaction is
    rate-independent, and at the native rate the reflected scans
    dominate simulation cost without adding insight. Pass an explicit
    ``outbreak=OutbreakConfig(...)`` to change the budget.

    Returns ``(farm, outbreak, controller)``; the caller starts both::

        farm, outbreak, controller = chaos_drill_scenario()
        outbreak.start()
        controller.start()
        farm.run(until=120.0)
    """
    from repro.faults import ChaosController, FaultPlan, host_crash

    overrides = {
        "num_hosts": 2,
        "pending_timeout_seconds": 10.0,
        "seed": 42,
        "outbreak": OutbreakConfig(telescope_fraction=1e-3, in_farm_scan_rate=2.0),
        **farm_overrides,
    }
    farm, outbreak = outbreak_scenario(worm_name="codered", **overrides)
    if plan is None:
        plan = FaultPlan(
            events=(host_crash(at=crash_at, host="0", repair_after=repair_after),),
            seed=7,
        )
    controller = ChaosController(farm, plan)
    return farm, outbreak, controller
