"""Workloads: the traffic that drives the honeyfarm.

The paper evaluates against live darknet traffic observed at a large
network telescope, plus worm outbreaks. Neither is available offline, so
this package provides calibrated synthetic equivalents (see DESIGN.md for
the substitution argument):

* :mod:`repro.workloads.trace` — a portable trace format (records,
  JSONL reader/writer, replay into a farm).
* :mod:`repro.workloads.telescope` — Internet background radiation:
  heavy-tailed per-source probe sessions over dark space, with hot-port
  structure and optional exploit-carrying sources.
* :mod:`repro.workloads.worms` — worm specifications and an
  Internet-scale epidemic model that feeds an outbreak's scans into the
  telescope at the correct (growing) rate.
* :mod:`repro.workloads.scenarios` — canned workload+farm combinations
  used by the examples and benchmarks.
"""

from repro.workloads.scenarios import (
    outbreak_scenario,
    slash16_farm,
    small_farm,
    telescope_scenario,
)
from repro.workloads.telescope import TelescopeConfig, TelescopeWorkload
from repro.workloads.trace import TraceReader, TraceRecord, TraceWriter, replay_into_farm
from repro.workloads.worms import (
    KNOWN_WORMS,
    InternetOutbreak,
    OutbreakConfig,
    WormSpec,
)

__all__ = [
    "InternetOutbreak",
    "KNOWN_WORMS",
    "OutbreakConfig",
    "TelescopeConfig",
    "TelescopeWorkload",
    "TraceReader",
    "TraceRecord",
    "TraceWriter",
    "WormSpec",
    "outbreak_scenario",
    "replay_into_farm",
    "slash16_farm",
    "small_farm",
    "telescope_scenario",
]
