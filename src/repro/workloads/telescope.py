"""Synthetic Internet background radiation for a network telescope.

The paper drives its scalability analysis with traffic observed at a
large dark-address telescope. This generator reproduces the *statistical
structure* of that traffic — the properties the farm's VM-demand and
concurrency results actually depend on:

* **Source arrivals** are Poisson (new scanners appear at a steady rate,
  with an optional diurnal modulation).
* **Per-source sessions are heavy-tailed**: most sources send a handful
  of probes, a few send thousands (bounded-Pareto session sizes) — which
  is what makes per-source VM state hard and per-*address* recycling easy.
* **Destinations** are either uniform over the dark space or sequential
  sweeps (both scanner populations exist in telescope data).
* **Each touched destination receives a small burst**, not one packet:
  TCP scanners retransmit their SYN (dark space never answers, so the
  scanner's stack retries on its ~3 s timer), and exploit-carrying
  sources follow the connection with the payload. Telescope analyses see
  this as the per-address packet multiplicity that makes the VM-demand
  rate several times lower than the packet rate.
* **Ports are Zipf-hot**: a few services (445, 135, 1434, 80, ...)
  attract most probes.
* A configurable fraction of sources carry a **real exploit** for their
  target port, so some probes actually compromise honeypots.
* A configurable fraction of sources are **backscatter** — victims of
  spoofed-source DDoS answering SYN/ACKs and RSTs toward addresses that
  never contacted them. Telescope studies attribute a large share of
  dark-space traffic to backscatter; for the farm it is pure overhead
  (VMs get cloned, then silently drop the unsolicited segments), which
  is exactly why it must be modelled in VM-demand numbers.

Calibration: defaults produce roughly 40–50 packets/second and ~8 new
sources/second per /16 of dark space — inside the tens-to-hundreds pps
range published for mid-2000s /16-scale telescopes — and every parameter
is a config field for sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import AddressSpaceInventory, IPAddress, Prefix
from repro.net.packet import PROTO_TCP, PROTO_UDP
from repro.sim.rand import RandomStream, SeedSequence
from repro.workloads.trace import TraceRecord

__all__ = [
    "PartitionedTelescope",
    "PortProfile",
    "TelescopeConfig",
    "TelescopeWorkload",
]

#: (protocol, port, weight, exploit_tag or None) — the hot-port mix.
DEFAULT_PORT_MIX: Tuple[Tuple[int, int, float, Optional[str]], ...] = (
    (PROTO_TCP, 445, 0.24, "exploit:sasser"),
    (PROTO_TCP, 135, 0.18, "exploit:blaster"),
    (PROTO_TCP, 139, 0.09, None),
    (PROTO_TCP, 80, 0.08, "exploit:codered"),
    (PROTO_UDP, 1434, 0.06, "exploit:slammer"),
    (PROTO_TCP, 22, 0.04, None),
    (PROTO_TCP, 3389, 0.04, None),
    (PROTO_TCP, 1025, 0.03, None),
    (PROTO_TCP, 4899, 0.02, None),
    (PROTO_UDP, 137, 0.02, None),
)
_OTHER_PORT_WEIGHT = 0.20  # random unpopular ports


@dataclass(frozen=True)
class PortProfile:
    """A source's chosen target service."""

    protocol: int
    port: int
    exploit_tag: Optional[str]


@dataclass(frozen=True)
class TelescopeConfig:
    """Knobs for the background-radiation generator.

    ``sources_per_second`` scales with telescope size: the default is per
    /16 and :class:`TelescopeWorkload` multiplies by the number of /16
    equivalents it is pointed at.
    """

    sources_per_second_per_slash16: float = 8.0
    probes_min: int = 1
    probes_max: int = 4000
    probes_pareto_shape: float = 1.15
    probe_rate_per_source: float = 12.0  # probes/second while a session lasts
    sequential_sweep_fraction: float = 0.3
    exploit_source_fraction: float = 0.35
    backscatter_fraction: float = 0.15
    tcp_syn_retries: int = 3       # total SYNs sent per unanswered TCP dst
    retry_interval: float = 3.0    # TCP retransmission timer
    exploit_payload_delay: float = 0.4  # connect -> payload gap
    diurnal_amplitude: float = 0.0  # 0 disables; 0.3 = ±30% over 24 h
    seed: int = 77

    def __post_init__(self) -> None:
        if self.sources_per_second_per_slash16 <= 0:
            raise ValueError("sources_per_second_per_slash16 must be positive")
        if not (0 < self.probes_min <= self.probes_max):
            raise ValueError("need 0 < probes_min <= probes_max")
        if self.probe_rate_per_source <= 0:
            raise ValueError("probe_rate_per_source must be positive")
        if not (0.0 <= self.sequential_sweep_fraction <= 1.0):
            raise ValueError("sequential_sweep_fraction must be in [0, 1]")
        if not (0.0 <= self.exploit_source_fraction <= 1.0):
            raise ValueError("exploit_source_fraction must be in [0, 1]")
        if not (0.0 <= self.backscatter_fraction <= 1.0):
            raise ValueError("backscatter_fraction must be in [0, 1]")
        if self.tcp_syn_retries < 1:
            raise ValueError("tcp_syn_retries must be >= 1")
        if self.retry_interval <= 0 or self.exploit_payload_delay <= 0:
            raise ValueError("retry/payload intervals must be positive")
        if not (0.0 <= self.diurnal_amplitude < 1.0):
            raise ValueError("diurnal_amplitude must be in [0, 1)")


class TelescopeWorkload:
    """Generates background-radiation traces over the given dark space."""

    def __init__(
        self,
        prefixes: Sequence[Prefix],
        config: Optional[TelescopeConfig] = None,
    ) -> None:
        if not prefixes:
            raise ValueError("telescope needs at least one dark prefix")
        self.inventory = AddressSpaceInventory(prefixes)
        self.config = config or TelescopeConfig()
        self._seeds = SeedSequence(self.config.seed)

    # ------------------------------------------------------------------ #
    # Rates
    # ------------------------------------------------------------------ #

    @property
    def slash16_equivalents(self) -> float:
        return self.inventory.total_addresses / 65536.0

    @property
    def source_rate(self) -> float:
        """New sources/second over the whole telescope."""
        return self.config.sources_per_second_per_slash16 * self.slash16_equivalents

    def expected_session_probes(self) -> float:
        """Mean probes per source under the bounded-Pareto session model
        (continuous approximation; integer truncation in generation runs
        about half a probe lower)."""
        a = self.config.probes_pareto_shape
        low, high = float(self.config.probes_min), float(self.config.probes_max)
        if a == 1.0:
            return (math.log(high / low)) * low / (1.0 - low / high)
        num = (low**a) / (1 - (low / high) ** a)
        return num * a / (a - 1) * (low ** (1 - a) - high ** (1 - a))

    def expected_burst_factor(self) -> float:
        """Mean packets per touched destination, from the source mix.

        Backscatter sends one segment per destination; scanners follow
        the port-mix burst model (retries / exploit follow-ups).
        """
        retries = float(self.config.tcp_syn_retries)
        f = self.config.exploit_source_fraction
        scan_factor = 0.0
        for protocol, __, weight, tag in DEFAULT_PORT_MIX:
            if protocol == PROTO_UDP:
                scan_factor += weight * 1.0
            elif tag is not None:
                scan_factor += weight * (f * 2.0 + (1.0 - f) * retries)
            else:
                scan_factor += weight * retries
        scan_factor += _OTHER_PORT_WEIGHT * retries  # unpopular TCP tail
        bs = self.config.backscatter_fraction
        return bs * 1.0 + (1.0 - bs) * scan_factor

    def expected_packets_per_second(self) -> float:
        return (
            self.source_rate
            * self.expected_session_probes()
            * self.expected_burst_factor()
        )

    def _rate_multiplier(self, t: float) -> float:
        amp = self.config.diurnal_amplitude
        if amp == 0.0:
            return 1.0
        return 1.0 + amp * math.sin(2.0 * math.pi * t / 86400.0)

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    def _random_external_source(self, rng: RandomStream) -> IPAddress:
        """A plausible external address (never inside the dark space)."""
        while True:
            addr = IPAddress(rng.randint(0x01000000, 0xDFFFFFFF))  # 1.0.0.0–223.x
            if not self.inventory.covers(addr):
                return addr

    def _pick_profile(self, rng: RandomStream) -> PortProfile:
        roll = rng.random()
        acc = 0.0
        for protocol, port, weight, tag in DEFAULT_PORT_MIX:
            acc += weight
            if roll < acc:
                exploit = tag if rng.bernoulli(self.config.exploit_source_fraction) else None
                return PortProfile(protocol, port, exploit)
        # Unpopular tail: a random high port, never exploit-carrying.
        return PortProfile(PROTO_TCP, rng.randint(1024, 65535), None)

    def _backscatter_records(
        self, rng: RandomStream, start: float, source: IPAddress
    ) -> Iterator[TraceRecord]:
        """One DDoS victim's responses to spoofed sources that happened
        to fall in the dark space: SYN/ACKs (service answered) or RSTs
        (no such service), from a well-known port, at the victim's reply
        rate, to uniformly random dark addresses."""
        from repro.net.packet import TcpFlags

        victim_port = rng.choice([80, 443, 53, 6667, 25])
        flags = (
            int(TcpFlags.SYN | TcpFlags.ACK)
            if rng.bernoulli(0.7)
            else int(TcpFlags.RST | TcpFlags.ACK)
        )
        replies = int(rng.bounded_pareto(
            self.config.probes_pareto_shape,
            float(self.config.probes_min),
            float(self.config.probes_max),
        ))
        total = self.inventory.total_addresses
        t = start
        for __ in range(replies):
            dst = self.inventory.address_at_flat_index(rng.randint(0, total - 1))
            yield TraceRecord(
                time=t,
                src=str(source),
                dst=str(dst),
                protocol=PROTO_TCP,
                src_port=victim_port,
                dst_port=1024 + rng.randint(0, 60000),
                tcp_flags=flags,
                size=40,
            )
            t += rng.exponential(self.config.probe_rate_per_source)

    def _session_records(
        self, rng: RandomStream, start: float, source: IPAddress
    ) -> Iterator[TraceRecord]:
        if rng.bernoulli(self.config.backscatter_fraction):
            yield from self._backscatter_records(rng, start, source)
            return
        profile = self._pick_profile(rng)
        probes = int(
            rng.bounded_pareto(
                self.config.probes_pareto_shape,
                float(self.config.probes_min),
                float(self.config.probes_max),
            )
        )
        total = self.inventory.total_addresses
        sweep = rng.bernoulli(self.config.sequential_sweep_fraction)
        cursor = rng.randint(0, total - 1)
        t = start
        src_port = 1024 + rng.randint(0, 60000)
        payload = profile.exploit_tag or ""
        for i in range(probes):
            if sweep:
                index = (cursor + i) % total
            else:
                index = rng.randint(0, total - 1)
            dst = self.inventory.address_at_flat_index(index)
            yield from self._destination_burst(t, source, dst, profile, src_port, payload)
            t += rng.exponential(self.config.probe_rate_per_source)

    def _destination_burst(
        self,
        t: float,
        source: IPAddress,
        dst: IPAddress,
        profile: PortProfile,
        src_port: int,
        payload: str,
    ) -> Iterator[TraceRecord]:
        """The packets one destination receives from one source.

        UDP probes are single datagrams (Slammer-style). TCP probes
        retransmit the SYN on the retry timer; exploit-carrying TCP
        sources additionally deliver the payload after connecting.
        """

        def record(offset: float, pkt_payload: str) -> TraceRecord:
            return TraceRecord(
                time=t + offset,
                src=str(source),
                dst=str(dst),
                protocol=profile.protocol,
                src_port=src_port,
                dst_port=profile.port,
                payload=pkt_payload,
                size=40 + len(pkt_payload),
            )

        if profile.protocol == PROTO_UDP:
            yield record(0.0, payload)
            return
        if payload:
            yield record(0.0, "")  # the connection-opening SYN
            yield record(self.config.exploit_payload_delay, payload)
            return
        for retry in range(self.config.tcp_syn_retries):
            yield record(retry * self.config.retry_interval, "")

    def generate(self, duration: float, max_records: Optional[int] = None) -> List[TraceRecord]:
        """All records with session-start inside ``[0, duration)``, sorted
        by time. Sessions may run past ``duration``; records beyond it are
        trimmed so the trace covers exactly the window."""
        if duration <= 0:
            raise ValueError(f"duration must be positive: {duration!r}")
        arrivals = self._seeds.stream("arrivals")
        records: List[TraceRecord] = []
        t = 0.0
        source_index = 0
        while True:
            rate = self.source_rate * self._rate_multiplier(t)
            t += arrivals.exponential(rate)
            if t >= duration:
                break
            session_rng = self._seeds.stream(f"session-{source_index}")
            source = self._random_external_source(session_rng)
            for record in self._session_records(session_rng, t, source):
                if record.time < duration:
                    records.append(record)
            source_index += 1
            if max_records is not None and len(records) >= max_records:
                break
        records.sort(key=lambda r: r.time)
        if max_records is not None:
            records = records[:max_records]
        return records

    def attach(self, farm: Honeyfarm, duration: float, batched: bool = False) -> int:
        """Generate a trace and feed it directly onto ``farm``; returns
        the number of packets.

        ``batched=True`` streams the arrivals as one lazy
        :class:`~repro.sim.batch.PacketColumns` arrival stream instead of
        scheduling one event per packet — bit-identical behaviour (the
        stream merges by the same ``(time, seq)`` order, and packets are
        materialized only if they leave the gateway's span lane) at a
        fraction of the event-loop cost.
        """
        records = self.generate(duration)
        if batched:
            from repro.sim.batch import PacketColumns

            farm.attach_arrival_columns(PacketColumns(records))
            return len(records)
        for record in records:
            farm.sim.schedule_at(record.time, farm.inject, record.to_packet())
        return len(records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TelescopeWorkload {self.inventory.total_addresses} addrs"
            f" ~{self.expected_packets_per_second():.0f} pps>"
        )


@dataclass(frozen=True)
class PartitionedTelescope:
    """Per-shard telescope generation for a federated run.

    In deployment each /16's background radiation arrives through its
    own GRE tunnel, independent of the others — so the federated
    workload is one telescope *per shard*, over that shard's prefixes
    only, with a shard-derived seed
    (``SeedSequence(seed).spawn("shard-<i>")``). A shard's partition
    depends only on ``(config, shard_prefixes[i], i)``: any process —
    the in-process reference or any worker layout — generates the
    bit-identical trace for shard ``i``, which is what lets workers
    build their own slices from this picklable spec instead of shipping
    packet lists around.

    Source rates scale per shard exactly as :class:`TelescopeWorkload`
    scales with telescope size (``sources_per_second_per_slash16`` times
    the shard's /16 equivalents). Cross-shard traffic is *not* generated
    here; it arises inside the farm from federation-wide reflection.
    """

    shard_prefixes: Tuple[Tuple[str, ...], ...]
    duration: float
    config: TelescopeConfig = TelescopeConfig()
    max_records_per_shard: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.shard_prefixes:
            raise ValueError("a partitioned telescope needs shards")
        object.__setattr__(self, "shard_prefixes", tuple(
            tuple(prefixes) for prefixes in self.shard_prefixes
        ))
        for shard, prefixes in enumerate(self.shard_prefixes):
            if not prefixes:
                raise ValueError(f"shard {shard} has no prefixes")
            for text in prefixes:
                Prefix.parse(text)  # validate eagerly
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration!r}")
        if self.max_records_per_shard is not None and self.max_records_per_shard <= 0:
            raise ValueError(
                "max_records_per_shard must be positive or None:"
                f" {self.max_records_per_shard!r}"
            )

    @property
    def shard_count(self) -> int:
        return len(self.shard_prefixes)

    def shard_config(self, shard: int) -> TelescopeConfig:
        """The per-shard telescope config: same knobs, derived seed."""
        from dataclasses import replace

        return replace(
            self.config,
            seed=SeedSequence(self.config.seed).spawn(f"shard-{shard}").root_seed,
        )

    def build(self, shard: int) -> List[TraceRecord]:
        """Shard ``shard``'s complete trace (deterministic, process-free)."""
        workload = TelescopeWorkload(
            [Prefix.parse(text) for text in self.shard_prefixes[shard]],
            self.shard_config(shard),
        )
        return workload.generate(
            self.duration, max_records=self.max_records_per_shard
        )

    def build_all(self) -> List[List[TraceRecord]]:
        return [self.build(shard) for shard in range(self.shard_count)]
