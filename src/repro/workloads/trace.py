"""Trace records, JSONL persistence, and replay.

A trace is the interchange format between workload generation, analysis,
and the farm: a time-ordered sequence of packet records. Generators can
stream traces to disk (so an experiment's input is inspectable and
re-runnable bit-for-bit) and :func:`replay_into_farm` schedules a trace's
packets onto a farm's event clock.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Dict, Iterable, Iterator, List, Optional, Union

from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress
from repro.net.packet import PROTO_TCP, PROTO_UDP, Packet, TcpFlags
from repro.sim.batch import PacketColumns

__all__ = ["TraceRecord", "TraceWriter", "TraceReader", "replay_into_farm"]


@dataclass(frozen=True)
class TraceRecord:
    """One packet arrival, with addresses as dotted-quad strings so the
    on-disk format is self-describing."""

    time: float
    src: str
    dst: str
    protocol: int
    src_port: int = 0
    dst_port: int = 0
    payload: str = ""
    size: int = 40
    tcp_flags: int = 0  # 0 = infer from payload (SYN, or PSH|ACK for data)

    def to_packet(self, addr_cache: Optional[Dict[str, IPAddress]] = None) -> Packet:
        """Materialize the packet. ``addr_cache`` (dotted-quad → address)
        amortizes parsing across a replay: telescope traces revisit the
        same sources and destinations constantly, and ``IPAddress`` is
        immutable so sharing instances is safe."""
        if self.protocol == PROTO_TCP and self.tcp_flags:
            flags = TcpFlags(self.tcp_flags)
        elif self.protocol == PROTO_TCP and self.payload:
            flags = TcpFlags.PSH | TcpFlags.ACK
        elif self.protocol == PROTO_TCP:
            flags = TcpFlags.SYN
        else:
            flags = TcpFlags.NONE
        if addr_cache is None:
            src, dst = IPAddress.parse(self.src), IPAddress.parse(self.dst)
        else:
            src = addr_cache.get(self.src)
            if src is None:
                src = addr_cache[self.src] = IPAddress.parse(self.src)
            dst = addr_cache.get(self.dst)
            if dst is None:
                dst = addr_cache[self.dst] = IPAddress.parse(self.dst)
        return Packet(
            src=src,
            dst=dst,
            protocol=self.protocol,
            src_port=self.src_port,
            dst_port=self.dst_port,
            flags=flags,
            payload=self.payload,
            size=self.size,
        )

    @classmethod
    def from_packet(cls, time: float, packet: Packet) -> "TraceRecord":
        return cls(
            time=time,
            src=str(packet.src),
            dst=str(packet.dst),
            protocol=packet.protocol,
            src_port=packet.src_port,
            dst_port=packet.dst_port,
            payload=packet.payload,
            size=packet.size,
            tcp_flags=int(packet.flags) if packet.is_tcp else 0,
        )


class TraceWriter:
    """Streams records to a JSONL file (one record per line)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh: Optional[IO[str]] = None
        self.records_written = 0

    def __enter__(self) -> "TraceWriter":
        self._fh = self.path.open("w")
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def write(self, record: TraceRecord) -> None:
        if self._fh is None:
            raise ValueError("TraceWriter must be used as a context manager")
        self._fh.write(json.dumps(asdict(record), separators=(",", ":")) + "\n")
        self.records_written += 1

    def write_all(self, records: Iterable[TraceRecord]) -> int:
        for record in records:
            self.write(record)
        return self.records_written

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TraceReader:
    """Iterates records from a JSONL trace file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def __iter__(self) -> Iterator[TraceRecord]:
        with self.path.open() as fh:
            for line_no, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                    yield TraceRecord(**data)
                except (json.JSONDecodeError, TypeError) as exc:
                    raise ValueError(
                        f"{self.path}:{line_no}: malformed trace record"
                    ) from exc

    def read_all(self) -> List[TraceRecord]:
        return list(self)


def replay_into_farm(
    farm: Honeyfarm,
    records: Iterable[TraceRecord],
    time_offset: float = 0.0,
    batched: bool = False,
) -> int:
    """Feed every record's packet into the farm at its timestamp (plus
    ``time_offset``); returns the number of packets.

    ``batched=False`` schedules one injection event per record.
    ``batched=True`` attaches the records as a lazy
    :class:`~repro.sim.batch.PacketColumns` arrival stream instead —
    bit-identical firing order and observable results (see
    ``docs/PERFORMANCE.md``) without one heap entry per packet, and
    without materializing a :class:`~repro.net.packet.Packet` for any
    arrival the gateway's span lane fully absorbs.

    Records must not be earlier than the farm's current simulated time
    after the offset is applied.
    """
    if batched:
        columns = PacketColumns(records, time_offset)
        farm.attach_arrival_columns(columns)
        return columns.n
    count = 0
    for record in records:
        farm.sim.schedule_at(record.time + time_offset, farm.inject, record.to_packet())
        count += 1
    return count
