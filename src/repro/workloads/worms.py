"""Worm specifications and the Internet-scale outbreak model.

Two distinct roles:

* :class:`WormSpec` describes a worm's mechanics (service targeted,
  exploit tag, scan rate) and converts to the
  :class:`~repro.services.guest.ScanBehavior` an infected *honeypot*
  executes — how the worm behaves inside the farm.
* :class:`InternetOutbreak` models the worm spreading across the
  *outside* Internet and computes the stream of scans that happens to
  fall into the telescope's dark space — how the worm arrives at the
  farm. The epidemic follows the classic logistic (SI random-scanning)
  dynamics used throughout the worm literature: with ``N`` vulnerable
  hosts, per-host scan rate ``s``, and address-space hit probability
  ``N / 2^32``, prevalence grows as ``I(t) = N / (1 + ((N-I0)/I0)
  e^{-βt})`` with ``β = s·N/2^32``. The telescope sees a Poisson stream
  with instantaneous rate ``I(t) · s · (telescope_size / 2^32)``.

``KNOWN_WORMS`` carries era-accurate parameters for the population the
default vulnerability catalog models (Slammer's published 4,000 scans/s
per host is kept, but outbreak experiments usually scale it down — the
knob is explicit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional

from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress
from repro.net.packet import PROTO_TCP, PROTO_UDP
from repro.services.guest import ScanBehavior
from repro.sim.metrics import TimeSeries
from repro.sim.process import Sleep, spawn
from repro.sim.rand import RandomStream
from repro.workloads.trace import TraceRecord

__all__ = ["WormSpec", "KNOWN_WORMS", "OutbreakConfig", "InternetOutbreak"]


@dataclass(frozen=True)
class WormSpec:
    """A worm's propagation mechanics."""

    name: str
    protocol: int
    port: int
    exploit_tag: str
    scan_rate: float  # scans/second per infected host
    payload_size: int = 376
    dns_lookup_first: bool = False
    targeting: str = "uniform"

    def __post_init__(self) -> None:
        if self.scan_rate <= 0:
            raise ValueError(f"scan_rate must be positive: {self.scan_rate!r}")
        if self.targeting not in ("uniform", "local"):
            raise ValueError(f"unknown targeting strategy: {self.targeting!r}")

    def behavior(self, dns_server: Optional[IPAddress] = None) -> ScanBehavior:
        """The in-farm behaviour an infected honeypot executes."""
        return ScanBehavior(
            worm_name=self.name,
            protocol=self.protocol,
            dst_port=self.port,
            exploit_tag=self.exploit_tag,
            scan_rate=self.scan_rate,
            payload_size=self.payload_size,
            dns_lookup_first=self.dns_lookup_first and dns_server is not None,
            dns_server=dns_server if self.dns_lookup_first else None,
            targeting=self.targeting,
        )

    def with_scan_rate(self, scan_rate: float) -> "WormSpec":
        """A copy scaled to a different per-host scan rate (simulation
        budget knob; dynamics shape is preserved)."""
        return replace(self, scan_rate=scan_rate)


KNOWN_WORMS: Dict[str, WormSpec] = {
    "slammer": WormSpec(
        name="slammer",
        protocol=PROTO_UDP,
        port=1434,
        exploit_tag="exploit:slammer",
        scan_rate=4000.0,  # single-UDP-packet worm; bandwidth-limited
        payload_size=404,
    ),
    "codered": WormSpec(
        name="codered",
        protocol=PROTO_TCP,
        port=80,
        exploit_tag="exploit:codered",
        scan_rate=10.0,
        payload_size=4039,
    ),
    "blaster": WormSpec(
        name="blaster",
        protocol=PROTO_TCP,
        port=135,
        exploit_tag="exploit:blaster",
        scan_rate=11.0,
        payload_size=1800,
        dns_lookup_first=True,  # Blaster resolved windowsupdate.com for its DDoS
    ),
    "sasser": WormSpec(
        name="sasser",
        protocol=PROTO_TCP,
        port=445,
        exploit_tag="exploit:sasser",
        scan_rate=120.0,
        payload_size=2100,
    ),
    "nimda": WormSpec(
        name="nimda",
        protocol=PROTO_TCP,
        port=80,
        exploit_tag="exploit:nimda",
        scan_rate=25.0,
        payload_size=3200,
        targeting="local",  # Nimda strongly preferred nearby addresses
    ),
    "witty": WormSpec(
        name="witty",
        protocol=PROTO_UDP,
        port=4000,
        exploit_tag="exploit:witty",
        scan_rate=357.0,  # bandwidth-limited single-UDP-packet worm
        payload_size=1100,
    ),
}


@dataclass(frozen=True)
class OutbreakConfig:
    """Parameters of an Internet-scale outbreak.

    ``telescope_fraction`` defaults to the farm's true share of IPv4
    (total dark addresses / 2^32); experiments may raise it to compress
    wall-clock (equivalent to observing a proportionally larger
    telescope — the arrival *process* shape is unchanged).

    ``in_farm_scan_rate`` optionally rescales the worm's scan rate *as
    executed by compromised honeypots* without touching the external
    epidemic dynamics. A Slammer-class worm scans at 4,000/s; simulating
    every reflected scan of every captured instance at that rate buys no
    additional insight (the containment interaction is rate-independent)
    and dominates simulation cost, so observation-side rates are a
    budget knob. ``None`` keeps the worm's native rate.
    """

    vulnerable_population: int = 350_000  # Code-Red-scale
    initially_infected: int = 10
    telescope_fraction: Optional[float] = None
    in_farm_scan_rate: Optional[float] = None
    tick_seconds: float = 1.0
    seed: int = 31

    def __post_init__(self) -> None:
        if self.vulnerable_population <= 0:
            raise ValueError("vulnerable_population must be positive")
        if not (0 < self.initially_infected <= self.vulnerable_population):
            raise ValueError(
                "initially_infected must be in [1, vulnerable_population]"
            )
        if self.telescope_fraction is not None and not (
            0.0 < self.telescope_fraction <= 1.0
        ):
            raise ValueError("telescope_fraction must be in (0, 1]")
        if self.in_farm_scan_rate is not None and self.in_farm_scan_rate <= 0:
            raise ValueError("in_farm_scan_rate must be positive or None")
        if self.tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")


class InternetOutbreak:
    """Drives one worm's external epidemic into a farm.

    Usage::

        outbreak = InternetOutbreak(farm, KNOWN_WORMS["codered"], OutbreakConfig())
        outbreak.start()
        farm.run(until=600)
        outbreak.prevalence_series  # external I(t) for the figure

    ``start()`` also registers the worm's in-farm behaviour, so honeypots
    compromised by arriving scans propagate (subject to containment).
    """

    def __init__(
        self,
        farm: Honeyfarm,
        worm: WormSpec,
        config: Optional[OutbreakConfig] = None,
    ) -> None:
        self.farm = farm
        self.worm = worm
        self.config = config or OutbreakConfig()
        self.rng = RandomStream(self.config.seed, name=f"outbreak-{worm.name}")
        self.prevalence_series = TimeSeries(f"{worm.name}.external_prevalence")
        self.scans_delivered = 0
        self._started = False

    # ------------------------------------------------------------------ #
    # Epidemic mathematics
    # ------------------------------------------------------------------ #

    @property
    def beta(self) -> float:
        """Logistic growth rate: scan_rate × N / 2^32."""
        return self.worm.scan_rate * self.config.vulnerable_population / 2**32

    def prevalence(self, t: float) -> float:
        """Infected population at time ``t`` (continuous logistic)."""
        n = float(self.config.vulnerable_population)
        i0 = float(self.config.initially_infected)
        if i0 >= n:
            return n
        ratio = (n - i0) / i0
        return n / (1.0 + ratio * math.exp(-self.beta * t))

    def telescope_fraction(self) -> float:
        if self.config.telescope_fraction is not None:
            return self.config.telescope_fraction
        return self.farm.inventory.total_addresses / 2**32

    def arrival_rate(self, t: float) -> float:
        """Scans/second falling into the telescope at time ``t``."""
        return self.prevalence(t) * self.worm.scan_rate * self.telescope_fraction()

    def time_to_prevalence(self, fraction: float) -> float:
        """When the epidemic reaches ``fraction`` of the vulnerable
        population (analytic inverse of the logistic)."""
        if not (0.0 < fraction < 1.0):
            raise ValueError("fraction must be in (0, 1)")
        n = float(self.config.vulnerable_population)
        i0 = float(self.config.initially_infected)
        target = fraction * n
        ratio = (n - i0) / i0
        return math.log(ratio * target / (n - target)) / self.beta

    # ------------------------------------------------------------------ #
    # Driving the farm
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Register in-farm behaviour and begin delivering scans."""
        if self._started:
            raise ValueError("outbreak already started")
        self._started = True
        in_farm = self.worm
        if self.config.in_farm_scan_rate is not None:
            in_farm = self.worm.with_scan_rate(self.config.in_farm_scan_rate)
        self.farm.register_worm(in_farm.behavior(self.farm.dns_server.address))
        spawn(self.farm.sim, self._drive(), name=f"outbreak-{self.worm.name}")

    def _drive(self):
        start_time = self.farm.sim.now
        while True:
            t = self.farm.sim.now - start_time
            self.prevalence_series.record(self.farm.sim.now, self.prevalence(t))
            expected = self.arrival_rate(t) * self.config.tick_seconds
            count = self.rng.poisson(expected)
            for __ in range(count):
                offset = self.rng.uniform(0.0, self.config.tick_seconds)
                packet = self._scan_packet()
                self.farm.sim.schedule(offset, self.farm.inject, packet)
                self.scans_delivered += 1
            yield Sleep(self.config.tick_seconds)

    def _scan_packet(self):
        total = self.farm.inventory.total_addresses
        dst = self.farm.inventory.address_at_flat_index(self.rng.randint(0, total - 1))
        src = IPAddress(self.rng.randint(0x01000000, 0xDFFFFFFF))
        record = TraceRecord(
            time=0.0,
            src=str(src),
            dst=str(dst),
            protocol=self.worm.protocol,
            src_port=1024 + self.rng.randint(0, 60000),
            dst_port=self.worm.port,
            payload=self.worm.exploit_tag,
            size=self.worm.payload_size,
        )
        return record.to_packet()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<InternetOutbreak {self.worm.name} N={self.config.vulnerable_population}"
            f" beta={self.beta:.4g}/s delivered={self.scans_delivered}>"
        )
