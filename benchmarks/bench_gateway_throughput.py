"""Experiment T-GATEWAY — gateway dispatch performance.

The gateway makes a policy decision on every packet, so its per-packet
cost bounds farm throughput. The paper's Click gateway handled full
telescope line rate; the property that must reproduce is *shape*: the
flow-table hit path is cheap and constant, and vastly cheaper than the
path that triggers a flash clone.

These are genuine wall-clock microbenchmarks of the reproduction's
gateway (pytest-benchmark does the timing); the summary table reports
packets/second through each path.
"""

from __future__ import annotations

from conftest import register_report

from repro.analysis.report import format_table
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress
from repro.net.packet import tcp_packet

ATTACKER = IPAddress.parse("203.0.113.123")
TARGET = IPAddress.parse("10.16.0.77")

_RESULTS = {}


def make_farm() -> Honeyfarm:
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/16",),
        num_hosts=4,
        idle_timeout_seconds=1e6,  # nothing recycles during the measurement
        sweep_interval_seconds=1e5,
        clone_jitter=0.0,
        seed=3,
    ))
    return farm


def test_hot_path_existing_vm(benchmark):
    """Packets to an address whose VM is live: the common case."""
    farm = make_farm()
    farm.inject(tcp_packet(ATTACKER, TARGET, 1, 445))
    farm.run(until=2.0)  # clone completes; VM is hot
    packet = tcp_packet(ATTACKER, TARGET, 2, 445)

    def hot_path():
        farm.gateway.process_inbound(packet)

    benchmark(hot_path)
    _RESULTS["hot path (live VM)"] = benchmark.stats.stats.mean


def test_stray_path(benchmark):
    """Packets outside the inventory: pure lookup cost."""
    farm = make_farm()
    packet = tcp_packet(ATTACKER, IPAddress.parse("172.16.0.1"), 2, 445)

    def stray():
        farm.gateway.process_inbound(packet)

    benchmark(stray)
    _RESULTS["stray (not our prefix)"] = benchmark.stats.stats.mean


def test_clone_trigger_path(benchmark):
    """First packet to a cold address: includes VM creation bookkeeping."""
    farm = make_farm()
    base = IPAddress.parse("10.16.1.0").value
    counter = [0]

    def cold_path():
        farm.gateway.process_inbound(
            tcp_packet(ATTACKER, IPAddress(base + counter[0]), 1, 445)
        )
        counter[0] += 1

    benchmark.pedantic(cold_path, rounds=2000, iterations=1)
    _RESULTS["cold (triggers clone)"] = benchmark.stats.stats.mean


def test_report_gateway_throughput(benchmark):
    """Assemble the summary table once the paths above have run."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_RESULTS) < 3:
        return
    rows = [
        [name, f"{mean * 1e6:.2f}", f"{1.0 / mean:,.0f}"]
        for name, mean in _RESULTS.items()
    ]
    report = format_table(
        ["gateway path", "cost/packet (µs)", "packets/s"],
        rows, title="T-GATEWAY: per-packet dispatch cost by path",
    )
    register_report("T-GATEWAY_dispatch_cost", report)

    hot = _RESULTS["hot path (live VM)"]
    cold = _RESULTS["cold (triggers clone)"]
    assert cold > 2 * hot  # clone path is much more expensive
    assert 1.0 / hot > 10_000  # hot path sustains >10k pps even in Python
