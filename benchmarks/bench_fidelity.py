"""Fidelity-ladder economics: a /16 storm, ladder vs clone-always.

The paper's scalability argument is that almost no dark-space traffic
deserves a VM. This bench quantifies what the fidelity ladder
(docs/FIDELITY.md) buys under a 120-simulated-second telescope storm
across an entire /16: both arms replay the *same* trace, one with the
ladder's emulator tier answering the scan tail
(``LadderConfig(enabled=True)``), one cloning a VM for every touched
address (the ``enabled=False`` ablation).

Reported per arm: peak resident frames across all hosts, VMs spawned,
infections captured, and the fraction of flows served without ever
binding a VM. From peak frames the bench extrapolates *coverable
addresses* — how many dark addresses one frame budget could monitor at
each fidelity — which is the honeyfarm-sizing number the paper's
Potemkin prototype motivates.

Three acceptance criteria are asserted (exit 1 on failure):

* the ladder serves >= 90% of the storm's flows without a clone;
* both arms capture the **same infections** (the ladder is only
  admissible if it is guest-visibly free);
* the ladder's peak frames are strictly below clone-always.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fidelity.py [--smoke]

Results land in ``benchmarks/reports/BENCH_fidelity.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.recovery import packet_ledger
from repro.core.honeyfarm import Honeyfarm
from repro.obs import FlightRecorder, install, uninstall
from repro.testing.scenario import Scenario
from repro.testing.worlds import COOLDOWN_SECONDS, IN_FARM_SCAN_RATE
from repro.workloads.trace import replay_into_farm
from repro.workloads.worms import KNOWN_WORMS

REPORT_DIR = Path(__file__).resolve().parent / "reports"

BENCH_SEED = 160591

#: One frame budget to express both arms in the same sizing currency:
#: how many addresses could a 16 GiB host cover at this fidelity?
BUDGET_FRAMES = (16 << 30) // 4096


def storm_scenario(smoke: bool) -> Scenario:
    """The seeded /16 telescope storm both arms replay.

    Telescope radiation is overwhelmingly single-probe scans; 5% of
    sources carry live exploits, which is what makes "capture the same
    infections with far fewer VMs" a non-vacuous claim.
    """
    if smoke:
        return Scenario(
            seed=BENCH_SEED, prefix_bits=16, duration=30.0,
            telescope_rate=6.0, exploit_fraction=0.05,
            max_packets=800, containment="drop-all", vm_image_mb=4,
        )
    return Scenario(
        seed=BENCH_SEED, prefix_bits=16, duration=120.0,
        telescope_rate=8.0, exploit_fraction=0.05,
        max_packets=4000, containment="drop-all", vm_image_mb=4,
    )


def trace_flows(trace) -> Set[Tuple[str, str, int, int, int]]:
    """Distinct flows in the storm, keyed like the gateway's flow table."""
    return {
        (r.src, r.dst, r.protocol, r.src_port, r.dst_port) for r in trace
    }


def run_arm(scenario: Scenario, trace, ladder: bool) -> Dict[str, Any]:
    config = scenario.farm_config(ladder=ladder)
    farm = Honeyfarm(config)
    dns = farm.config.dns_address()
    for worm in KNOWN_WORMS.values():
        throttled = worm.with_scan_rate(min(worm.scan_rate, IN_FARM_SCAN_RATE))
        farm.register_worm(throttled.behavior(dns))

    recorder = FlightRecorder(capacity=2_000_000)
    install(recorder)
    t0 = time.perf_counter()
    try:
        replay_into_farm(farm, trace)
        farm.run(until=scenario.duration + COOLDOWN_SECONDS)
    finally:
        uninstall()
    wall = time.perf_counter() - t0

    # Exact flow accounting: a flow was served without a clone iff its
    # destination address never had a VM bound at any point in the run.
    vm_addresses = {
        fields["ip"]
        for __, __, sub, ev, fields in recorder.events
        if sub == "farm" and ev == "vm_spawned"
    }
    flows = trace_flows(trace)
    flows_without_clone = sum(1 for f in flows if f[1] not in vm_addresses)

    counters = farm.metrics.counters()
    ledger = packet_ledger(farm)
    peak_frames = sum(h.memory.peak_allocated_frames for h in farm.hosts)
    return {
        "arm": "ladder" if ladder else "clone-always",
        "peak_frames": peak_frames,
        "peak_bytes": peak_frames * 4096,
        "vms_spawned": counters.get("farm.vms_spawned", 0),
        "addresses_cloned": len(vm_addresses),
        "infections": sorted(
            (str(r.victim), r.worm_name, r.generation) for r in farm.infections
        ),
        "flows_total": len(flows),
        "flows_without_clone": flows_without_clone,
        "flows_without_clone_fraction": round(
            flows_without_clone / len(flows), 4
        ) if flows else None,
        "packets_emulated": counters.get("gateway.emulated", 0),
        "promotions": counters.get("ladder.promotions", 0),
        "promotions_by_trigger": {
            key.rsplit(".", 1)[1]: value
            for key, value in counters.items()
            if key.startswith("ladder.promotions.")
        },
        "handoff_packets_replayed": counters.get(
            "ladder.handoff_packets_replayed", 0
        ),
        "packets_in": ledger.packets_in,
        "packets_leaked": ledger.leaked,
        # Sizing extrapolation: addresses one BUDGET_FRAMES host covers
        # at this arm's measured frames-per-address rate.
        "coverable_addresses": (
            int(BUDGET_FRAMES * scenario.address_count / peak_frames)
            if peak_frames else None
        ),
        "wall_seconds": round(wall, 3),
    }


def check_criteria(ladder: Dict[str, Any], clone: Dict[str, Any]) -> List[str]:
    failures: List[str] = []
    fraction = ladder["flows_without_clone_fraction"] or 0.0
    if fraction < 0.90:
        failures.append(
            f"ladder served only {fraction:.1%} of flows without a clone"
            " (needs >= 90%)"
        )
    if ladder["infections"] != clone["infections"]:
        failures.append(
            f"captured infections diverged: ladder={len(ladder['infections'])}"
            f" clone-always={len(clone['infections'])}"
        )
    if ladder["peak_frames"] >= clone["peak_frames"]:
        failures.append(
            f"ladder peak frames {ladder['peak_frames']} not below"
            f" clone-always {clone['peak_frames']}"
        )
    for arm in (ladder, clone):
        if arm["packets_leaked"]:
            failures.append(f"{arm['arm']} arm leaked {arm['packets_leaked']} packets")
    return failures


def run_bench(smoke: bool = False) -> Dict[str, Any]:
    scenario = storm_scenario(smoke)
    trace = scenario.build_trace()
    ladder = run_arm(scenario, trace, ladder=True)
    clone = run_arm(scenario, trace, ladder=False)
    failures = check_criteria(ladder, clone)
    return {
        "config": {
            "smoke": smoke,
            "seed": BENCH_SEED,
            "prefix": scenario.prefix,
            "duration_seconds": scenario.duration,
            "trace_packets": len(trace),
            "trace_flows": len(trace_flows(trace)),
            "exploit_fraction": scenario.exploit_fraction,
            "budget_frames": BUDGET_FRAMES,
        },
        "arms": {"ladder": ladder, "clone_always": clone},
        "frame_reduction": (
            round(1.0 - ladder["peak_frames"] / clone["peak_frames"], 4)
            if clone["peak_frames"] else None
        ),
        "coverage_gain": (
            round(
                ladder["coverable_addresses"] / clone["coverable_addresses"], 2
            )
            if clone["coverable_addresses"] else None
        ),
        "infections_captured": len(ladder["infections"]),
        "failures": failures,
        "passed": not failures,
    }


def write_bench(smoke: bool = False) -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    doc = run_bench(smoke=smoke)
    # The infection lists prove equality; the report only needs counts.
    for arm in doc["arms"].values():
        arm["infections"] = len(arm["infections"])
    out = REPORT_DIR / "BENCH_fidelity.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short storm for CI (seconds, not minutes)")
    args = parser.parse_args(argv)
    out = write_bench(smoke=args.smoke)
    doc = json.loads(out.read_text())
    ladder, clone = doc["arms"]["ladder"], doc["arms"]["clone_always"]
    print(f"wrote {out}")
    print(f"  storm: {doc['config']['trace_packets']} packets,"
          f" {doc['config']['trace_flows']} flows over"
          f" {doc['config']['prefix']}")
    for arm in (ladder, clone):
        print(f"  {arm['arm']:>12}: peak_frames={arm['peak_frames']}"
              f" vms={arm['vms_spawned']}"
              f" infections={arm['infections']}"
              f" coverable={arm['coverable_addresses']}")
    print(f"  flows without clone: "
          f"{ladder['flows_without_clone_fraction']:.1%}"
          f"  frame reduction: {doc['frame_reduction']:.1%}"
          f"  coverage gain: {doc['coverage_gain']}x")
    if doc["failures"]:
        for failure in doc["failures"]:
            print(f"ERROR: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
