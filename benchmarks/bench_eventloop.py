"""Event-loop throughput: batched arrival streams vs per-event dispatch.

The simulator used to schedule one heap event per replayed packet; for a
/16 telescope storm the per-event Python overhead (heap churn, ``Event``
allocation, one full dispatch-loop pass per packet) dominated end-to-end
wall time. The batched core (docs/PERFORMANCE.md) replaces that with
:class:`~repro.sim.batch.PacketArrivalStream` merged into the run loop
plus the gateway's vectorized ``dispatch_batch`` lane.

Both arms replay the **same** 120-simulated-second /16 storm trace —
ladder enabled, no exploits, so the emulator tier answers everything and
the measurement isolates the event loop and gateway dispatch path rather
than guest execution:

* ``per_event`` — ``replay_into_farm(batched=False)``: one scheduled
  event per packet, the pre-batching baseline.
* ``batched`` — ``replay_into_farm(batched=True)``: arrivals stream
  through ``Gateway.dispatch_batch``.

Timed end-to-end: packet materialization + replay scheduling + the full
run. Acceptance (exit 1 on failure):

* batched events/s >= 10x the recorded seed baseline for this storm
  (``SEED_BASELINE_EVENTS_PER_SEC``, ROADMAP item 2). The in-process
  ``per_event`` arm is *not* that baseline: the batched-core change also
  rewrote shared paths it exercises (batched expiry sweeps, batched
  metric emission, heap compaction), so it understates the end-to-end
  win — it is kept as the equivalence oracle and as a regression guard
  (batched must beat it by ``ARM_SPEEDUP_FLOOR``);
* smoke mode asserts an absolute events/s floor suited to CI noise;
* both arms process identical event counts and finish with identical
  metric counters — batching must never buy speed with drift.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_eventloop.py [--smoke]

Results land in ``benchmarks/reports/BENCH_eventloop.json``.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.honeyfarm import Honeyfarm
from repro.testing.scenario import Scenario
from repro.workloads.trace import replay_into_farm

REPORT_DIR = Path(__file__).resolve().parent / "reports"

BENCH_SEED = 424742

#: End-to-end throughput of the pre-batching event core on this storm:
#: one heap event per packet, per-event expiry checks, per-event metric
#: emission (~3.8k events/s; ROADMAP item 2, measured when
#: BENCH_gateway.json put bare gateway dispatch at 8.4 us/packet). The
#: roadmap's ">=10x events/s" target is gated against this recorded
#: number because the pre-batching loop no longer exists to re-measure:
#: the shared paths the in-process per_event arm runs through were
#: themselves rewritten by the batched-core change.
SEED_BASELINE_EVENTS_PER_SEC = 3_800.0

#: Full-mode acceptance: batched events/s vs the seed baseline above.
SPEEDUP_FLOOR = 10.0

#: Full-mode regression guard: batched must also beat the in-process
#: per-event arm — if the span lane silently stops engaging, the arms
#: converge and this floor trips long before the seed-baseline gate.
ARM_SPEEDUP_FLOOR = 3.0

#: Smoke-mode acceptance: absolute batched throughput floor (events/s),
#: deliberately far below a healthy run so only order-of-magnitude
#: regressions (or a silent fall-off the fast lane) trip it in CI.
SMOKE_EVENTS_PER_SEC_FLOOR = 20_000.0


def storm_scenario(smoke: bool) -> Scenario:
    """The seeded /16 storm both arms replay.

    ``exploit_fraction=0``: every flow stays on the ladder's emulator
    tier, no VM is ever cloned, and the bench measures the event loop
    and gateway fast path instead of guest page-dirtying.
    """
    if smoke:
        return Scenario(
            seed=BENCH_SEED, prefix_bits=16, duration=30.0,
            telescope_rate=400.0, exploit_fraction=0.0,
            max_packets=20_000, containment="drop-all", vm_image_mb=4,
        )
    return Scenario(
        seed=BENCH_SEED, prefix_bits=16, duration=120.0,
        telescope_rate=1200.0, exploit_fraction=0.0,
        max_packets=150_000, containment="drop-all", vm_image_mb=4,
    )


def run_arm(scenario: Scenario, trace, batched: bool) -> Dict[str, Any]:
    """Replay + run, timed end-to-end (no flight recorder: the per-event
    arm must not pay tracing overhead the batched arm skips)."""
    farm = Honeyfarm(scenario.farm_config(ladder=True))
    gc.collect()  # isolate arms: drop the previous arm's lingering cycles
    t0 = time.perf_counter()
    replay_into_farm(farm, trace, batched=batched)
    farm.run(until=scenario.duration + 5.0)
    wall = time.perf_counter() - t0

    events = farm.sim.events_processed
    counters = dict(farm.metrics.counters())
    return {
        "arm": "batched" if batched else "per_event",
        "wall_seconds": round(wall, 3),
        "events_processed": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else None,
        "packets_replayed": len(trace),
        "packets_emulated": counters.get("gateway.emulated", 0),
        "vms_spawned": counters.get("farm.vms_spawned", 0),
        "flows_expired": farm.gateway.flows.expired_total,
        "sim_now": farm.sim.now,
        "_counters": counters,
    }


def check_criteria(
    per_event: Dict[str, Any], batched: Dict[str, Any], smoke: bool
) -> List[str]:
    failures: List[str] = []
    if batched["events_processed"] != per_event["events_processed"]:
        failures.append(
            f"event counts diverged: batched={batched['events_processed']}"
            f" per_event={per_event['events_processed']}"
        )
    if batched["_counters"] != per_event["_counters"]:
        diff = {
            key: (per_event["_counters"].get(key), batched["_counters"].get(key))
            for key in set(per_event["_counters"]) | set(batched["_counters"])
            if per_event["_counters"].get(key) != batched["_counters"].get(key)
        }
        failures.append(f"metric counters diverged: {diff}")
    arm_speedup = (
        batched["events_per_sec"] / per_event["events_per_sec"]
        if per_event["events_per_sec"]
        else 0.0
    )
    if smoke:
        if batched["events_per_sec"] < SMOKE_EVENTS_PER_SEC_FLOOR:
            failures.append(
                f"batched throughput {batched['events_per_sec']:.0f} events/s"
                f" below smoke floor {SMOKE_EVENTS_PER_SEC_FLOOR:.0f}"
            )
        return failures
    seed_speedup = batched["events_per_sec"] / SEED_BASELINE_EVENTS_PER_SEC
    if seed_speedup < SPEEDUP_FLOOR:
        failures.append(
            f"batched throughput {batched['events_per_sec']:.0f} events/s is"
            f" only {seed_speedup:.1f}x the seed per-event baseline"
            f" ({SEED_BASELINE_EVENTS_PER_SEC:.0f} events/s);"
            f" {SPEEDUP_FLOOR:.0f}x required"
        )
    if arm_speedup < ARM_SPEEDUP_FLOOR:
        failures.append(
            f"batched arm only {arm_speedup:.1f}x the in-process per-event"
            f" arm; regression floor is {ARM_SPEEDUP_FLOOR:.0f}x"
        )
    return failures


def run_bench(smoke: bool = False) -> Dict[str, Any]:
    scenario = storm_scenario(smoke)
    trace = scenario.build_trace()
    per_event = run_arm(scenario, trace, batched=False)
    batched = run_arm(scenario, trace, batched=True)
    failures = check_criteria(per_event, batched, smoke)
    arm_speedup = (
        round(batched["events_per_sec"] / per_event["events_per_sec"], 2)
        if per_event["events_per_sec"]
        else None
    )
    seed_speedup = round(
        batched["events_per_sec"] / SEED_BASELINE_EVENTS_PER_SEC, 2
    )
    for arm in (per_event, batched):
        arm.pop("_counters")
    return {
        "config": {
            "smoke": smoke,
            "seed": BENCH_SEED,
            "prefix": scenario.prefix,
            "duration_seconds": scenario.duration,
            "trace_packets": len(trace),
            "seed_baseline_events_per_sec": SEED_BASELINE_EVENTS_PER_SEC,
            "speedup_floor": None if smoke else SPEEDUP_FLOOR,
            "arm_speedup_floor": None if smoke else ARM_SPEEDUP_FLOOR,
            "smoke_events_per_sec_floor": (
                SMOKE_EVENTS_PER_SEC_FLOOR if smoke else None
            ),
        },
        "arms": {"per_event": per_event, "batched": batched},
        "speedup": seed_speedup,
        "speedup_vs_seed_baseline": seed_speedup,
        "speedup_vs_per_event_arm": arm_speedup,
        "failures": failures,
        "passed": not failures,
    }


def write_bench(smoke: bool = False) -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    doc = run_bench(smoke=smoke)
    out = REPORT_DIR / "BENCH_eventloop.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short storm for CI (seconds, not minutes)")
    args = parser.parse_args(argv)
    out = write_bench(smoke=args.smoke)
    doc = json.loads(out.read_text())
    print(f"wrote {out}")
    print(f"  storm: {doc['config']['trace_packets']} packets over"
          f" {doc['config']['prefix']},"
          f" {doc['config']['duration_seconds']:.0f}s simulated")
    for arm in doc["arms"].values():
        print(f"  {arm['arm']:>10}: {arm['wall_seconds']:.2f}s wall,"
              f" {arm['events_processed']} events,"
              f" {arm['events_per_sec']:.0f} events/s")
    print(f"  speedup vs seed per-event baseline"
          f" ({doc['config']['seed_baseline_events_per_sec']:.0f} ev/s):"
          f" {doc['speedup_vs_seed_baseline']}x")
    print(f"  speedup vs in-process per-event arm:"
          f" {doc['speedup_vs_per_event_arm']}x")
    if doc["failures"]:
        for failure in doc["failures"]:
            print(f"ERROR: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
