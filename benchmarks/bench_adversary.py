"""Adversary-vs-deception benchmark: does the farm stay believable?

The containment/fidelity stack only earns captures from attackers who
don't realize they're attacking a honeyfarm. This bench runs the
:mod:`repro.adversary` experiment matrix — fingerprinting scanners at
sophistication tiers 0-3 plus a staged botnet campaign, each against a
fresh farm with the deception defense off and then on — and gates on the
paper-style headline:

* **capture-rate gate** — captures from *fingerprinting* scanners
  (tiers >= 2) are strictly higher with deception on than off at equal
  seeds: without deception they read the farm's monoculture and
  machine-identical reply timing and abort before committing malware;
  with personality/jitter randomization the passive tells vanish.
* **abort expectations** — with deception off, every tier >= 2 scanner
  aborts during recon; with deception on, tier 2 proceeds to exploit.
* **containment holds both arms** — the tier-3 containment-echo test
  still works with deception on under reflect (deception must not open
  containment to win believability).
* **determinism gate** — the whole experiment, run twice at the bench
  seed, produces byte-identical reports.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_adversary.py [--smoke]

Results land in ``benchmarks/reports/BENCH_adversary.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.adversary import (
    FINGERPRINT_TIERS,
    experiment_digest,
    run_adversary_experiment,
)

REPORT_DIR = Path(__file__).resolve().parent / "reports"

BENCH_SEED = 20260809
TIERS = (0, 1, 2, 3)


def check_criteria(result: Dict[str, Any]) -> List[str]:
    failures: List[str] = []
    off, on = result["arms"]["off"], result["arms"]["on"]

    fp_off = off["fingerprint_captures"]
    fp_on = on["fingerprint_captures"]
    if not fp_on > fp_off:
        failures.append(
            f"deception did not raise fingerprint-tier captures:"
            f" on={fp_on} vs off={fp_off} (must be strictly higher)"
        )

    for tier in FINGERPRINT_TIERS:
        scanner = off["scanners"][str(tier)]
        if scanner["verdict"] != "aborted" or scanner["abort_stage"] != "recon":
            failures.append(
                f"deception-off tier-{tier} scanner should abort at recon,"
                f" got {scanner['verdict']}/{scanner['abort_stage']}"
            )
    tier2_on = on["scanners"]["2"]
    if tier2_on["verdict"] != "completed":
        failures.append(
            f"deception-on tier-2 scanner should complete, got"
            f" {tier2_on['verdict']} at {tier2_on['abort_stage']}"
        )
    tier3_on = on["scanners"]["3"]
    if tier3_on["abort_stage"] != "echo":
        failures.append(
            "deception-on tier-3 scanner should still catch the"
            f" containment echo under reflect, got {tier3_on['verdict']}/"
            f"{tier3_on['abort_stage']}"
        )

    for arm_key, arm in result["arms"].items():
        for tier, scanner in arm["scanners"].items():
            if scanner["verdict"] is None:
                failures.append(
                    f"{arm_key} tier-{tier} scanner has no terminal verdict"
                )
        if "botnet" in arm and arm["botnet"]["verdict"] is None:
            failures.append(f"{arm_key} botnet has no terminal verdict")
    return failures


def run_bench(smoke: bool = False) -> Dict[str, Any]:
    duration = 12.0 if smoke else 20.0
    num_targets = 6 if smoke else 8

    first = run_adversary_experiment(
        seed=BENCH_SEED, tiers=TIERS, duration=duration,
        num_targets=num_targets,
    )
    second = run_adversary_experiment(
        seed=BENCH_SEED, tiers=TIERS, duration=duration,
        num_targets=num_targets,
    )
    digest = experiment_digest(first)
    failures = check_criteria(first)
    if digest != experiment_digest(second):
        failures.append("experiment is not deterministic at equal seeds")

    return {
        "config": {
            "smoke": smoke,
            "seed": BENCH_SEED,
            "duration_seconds": duration,
            "num_targets": num_targets,
            "tiers": list(TIERS),
            "fingerprint_tiers": list(FINGERPRINT_TIERS),
            "containment": first["containment"],
        },
        "arms": first["arms"],
        "headline": first["headline"],
        "digest": digest,
        "failures": failures,
        "passed": not failures,
    }


def write_bench(smoke: bool = False) -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    started = time.perf_counter()
    doc = run_bench(smoke=smoke)
    doc["wall_seconds"] = round(time.perf_counter() - started, 3)
    out = REPORT_DIR / "BENCH_adversary.json"
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="shorter agent windows for CI")
    args = parser.parse_args(argv)
    out = write_bench(smoke=args.smoke)
    doc = json.loads(out.read_text())
    print(f"wrote {out}")
    for arm_key in ("off", "on"):
        arm = doc["arms"][arm_key]
        verdicts = {
            tier: f"{s['verdict']}({len(s['captures'])})"
            for tier, s in sorted(arm["scanners"].items())
        }
        print(f"  deception {arm_key}: {verdicts}"
              f" fingerprint_captures={arm['fingerprint_captures']}")
    print(f"  digest: {doc['digest'][:16]}  wall: {doc['wall_seconds']}s")
    if doc["failures"]:
        for failure in doc["failures"]:
            print(f"ERROR: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
