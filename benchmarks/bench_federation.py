"""Parallel sharded federation: scaling and bit-equality gates.

The paper scales the honeyfarm past one gateway by partitioning the dark
space across several gateway/farm pairs. This bench drives that split
end-to-end through both lanes of the implementation:

* ``reference`` — the in-process interlinked
  :class:`~repro.core.federation.FederatedHoneyfarm` (golden semantics);
* ``workers=N`` — :class:`~repro.core.parallel.ParallelFederation`, the
  same shards spread over N OS processes synchronized by lockstep
  epochs.

Every arm replays the identical federated scenario (per-shard telescope
partitions plus a worm mix under ``reflect`` containment, so reflected
scans and their replies stream across shard boundaries the whole run).
Acceptance (exit 1 on failure):

* **Bit-equality** — every arm's per-shard reports are *identical*,
  field for field: the process layout must never leak into results.
* **Scaling** — parallel efficiency at the widest arm is at least
  ``SPEEDUP_EFFICIENCY_FLOOR`` of ideal, where ideal speedup over the
  one-worker arm is ``min(workers, cpu_count)`` (a single-core CI box
  cannot scale, so there the gate degenerates to "multiprocess overhead
  stays bounded", which is exactly what it can still catch).
* **Liveness** — the scenario actually exercised the message layer:
  cross-shard messages were sent and received, and global packet
  conservation holds.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_federation.py [--smoke]

Results land in ``benchmarks/reports/BENCH_federation.json``.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.testing.fedscenario import FederationScenario
from repro.workloads.worms import KNOWN_WORMS

REPORT_DIR = Path(__file__).resolve().parent / "reports"

BENCH_SEED = 190525

#: Widest parallel arm (full mode); smoke stops at 2 workers.
FULL_WORKERS = (1, 8)
SMOKE_WORKERS = (1, 2)

#: Full-mode acceptance: measured speedup of the widest arm over the
#: one-worker arm, as a fraction of the ideal speedup
#: ``min(workers, cpu_count)``.
SPEEDUP_EFFICIENCY_FLOOR = 0.7

#: Smoke-mode floor: looser, sized for CI-runner noise.
SMOKE_EFFICIENCY_FLOOR = 0.5


def federated_scenario(smoke: bool) -> FederationScenario:
    """The seeded cross-shard storm every arm replays: all known worms
    registered, reflect containment, one telescope partition per shard."""
    worms = tuple((name, 2.0) for name in sorted(KNOWN_WORMS))
    if smoke:
        return FederationScenario(
            seed=BENCH_SEED, shards=2, shard_bits=26, duration=10.0,
            latency=0.25, telescope_rate=2048.0, exploit_fraction=0.4,
            probes_max=100, max_packets_per_shard=400,
            containment="reflect", worms=worms, name="bench-smoke",
        )
    return FederationScenario(
        seed=BENCH_SEED, shards=8, shard_bits=26, duration=25.0,
        latency=0.25, telescope_rate=2048.0, exploit_fraction=0.4,
        probes_max=100, max_packets_per_shard=1200,
        containment="reflect", worms=worms, name="bench-full",
    )


def run_reference(scenario: FederationScenario) -> Dict[str, Any]:
    gc.collect()
    t0 = time.perf_counter()
    federation = scenario.build_reference()
    federation.run(until=scenario.duration)
    wall = time.perf_counter() - t0
    federation.assert_packet_conservation()
    reports = federation.shard_reports()
    return {
        "arm": "reference",
        "workers": 0,
        "wall_seconds": round(wall, 3),
        "events_processed": sum(r["events_processed"] for r in reports),
        "infections": sum(len(r["infections"]) for r in reports),
        "intershard_sent": sum(r["intershard"]["sent"] for r in reports),
        "_reports": reports,
    }


def run_parallel_arm(
    scenario: FederationScenario, workers: int
) -> Dict[str, Any]:
    gc.collect()
    t0 = time.perf_counter()
    result = scenario.build_parallel(workers).run(until=scenario.duration)
    wall = time.perf_counter() - t0
    result.assert_packet_conservation()
    return {
        "arm": f"workers={workers}",
        "workers": workers,
        "assignment": list(result.assignment),
        "wall_seconds": round(wall, 3),
        "events_processed": sum(
            r["events_processed"] for r in result.reports
        ),
        "infections": result.infection_count(),
        "intershard_sent": result.intershard_totals()["sent"],
        "_reports": result.reports,
    }


def check_criteria(
    arms: List[Dict[str, Any]], smoke: bool
) -> List[str]:
    failures: List[str] = []
    reference = arms[0]
    for arm in arms[1:]:
        if arm["_reports"] != reference["_reports"]:
            diverged = [
                shard["shard"]
                for shard, golden in zip(arm["_reports"], reference["_reports"])
                if shard != golden
            ]
            failures.append(
                f"{arm['arm']} reports diverged from the reference"
                f" (shards {diverged}): process layout leaked into results"
            )
    if reference["intershard_sent"] <= 0:
        failures.append(
            "scenario sent no cross-shard messages; the bench is not"
            " exercising the message layer"
        )
    if reference["infections"] <= 0:
        failures.append("scenario produced no infections; storm too weak")

    one = next(a for a in arms if a["workers"] == 1)
    wide = max(arms[1:], key=lambda a: a["workers"])
    ideal = min(wide["workers"], os.cpu_count() or 1)
    speedup = (
        one["wall_seconds"] / wide["wall_seconds"]
        if wide["wall_seconds"] > 0 else 0.0
    )
    floor = SMOKE_EFFICIENCY_FLOOR if smoke else SPEEDUP_EFFICIENCY_FLOOR
    if speedup < floor * ideal:
        failures.append(
            f"{wide['arm']} speedup {speedup:.2f}x over workers=1 is below"
            f" {floor:.0%} of ideal ({ideal}x on this"
            f" {os.cpu_count() or 1}-cpu machine)"
        )
    return failures


def run_bench(smoke: bool = False) -> Dict[str, Any]:
    scenario = federated_scenario(smoke)
    arms = [run_reference(scenario)]
    for workers in (SMOKE_WORKERS if smoke else FULL_WORKERS):
        arms.append(run_parallel_arm(scenario, workers))
    failures = check_criteria(arms, smoke)

    one = next(a for a in arms if a["workers"] == 1)
    wide = max(arms[1:], key=lambda a: a["workers"])
    ideal = min(wide["workers"], os.cpu_count() or 1)
    speedup = (
        round(one["wall_seconds"] / wide["wall_seconds"], 2)
        if wide["wall_seconds"] > 0 else None
    )
    bit_identical = all(
        arm["_reports"] == arms[0]["_reports"] for arm in arms[1:]
    )
    for arm in arms:
        arm.pop("_reports")
    return {
        "config": {
            "smoke": smoke,
            "seed": BENCH_SEED,
            "shards": scenario.shards,
            "duration_seconds": scenario.duration,
            "latency_seconds": scenario.latency,
            "cpu_count": os.cpu_count(),
            "efficiency_floor": (
                SMOKE_EFFICIENCY_FLOOR if smoke else SPEEDUP_EFFICIENCY_FLOOR
            ),
            "ideal_speedup": ideal,
        },
        "arms": {arm["arm"]: arm for arm in arms},
        "bit_identical": bit_identical,
        "speedup": speedup,
        "speedup_vs_ideal": (
            round(speedup / ideal, 2) if speedup is not None else None
        ),
        "failures": failures,
        "passed": not failures,
    }


def write_bench(smoke: bool = False) -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    doc = run_bench(smoke=smoke)
    out = REPORT_DIR / "BENCH_federation.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="2 shards x 2 workers for CI")
    args = parser.parse_args(argv)
    out = write_bench(smoke=args.smoke)
    doc = json.loads(out.read_text())
    print(f"wrote {out}")
    config = doc["config"]
    print(f"  scenario: {config['shards']} shards,"
          f" {config['duration_seconds']:.0f}s simulated,"
          f" {config['cpu_count']} cpus")
    for arm in doc["arms"].values():
        print(f"  {arm['arm']:>12}: {arm['wall_seconds']:.2f}s wall,"
              f" {arm['events_processed']} events,"
              f" {arm['infections']} infections,"
              f" {arm['intershard_sent']} cross-shard msgs")
    print(f"  bit-identical across arms: {doc['bit_identical']}")
    print(f"  speedup (widest vs workers=1): {doc['speedup']}x"
          f" = {doc['speedup_vs_ideal']}x ideal"
          f" (floor {config['efficiency_floor']:.0%})")
    if doc["failures"]:
        for failure in doc["failures"]:
            print(f"ERROR: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
