"""Experiment F-MEM — delta-virtualization memory economics.

The paper's memory result: a flash-cloned honeypot's *marginal* physical
footprint is the handful of MB it dirties, not its 128 MiB image — so a
2 GiB server holds on the order of a hundred concurrent VMs (116
demonstrated), where full-copy clones would cap out around fifteen.

This bench drives a live farm with scan traffic until a large VM
population exists, then reports the private-footprint distribution, the
farm-wide breakdown, VMs-per-host capacity estimates, and the full-copy
ablation (A-ABL1) side by side.
"""

from __future__ import annotations

from conftest import register_report

from repro.analysis.memory_stats import footprint_summary, vms_per_host_estimate
from repro.analysis.report import format_table
from repro.baselines.dedicated import dedicated_vms_per_host
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress
from repro.net.packet import TcpFlags, tcp_packet, udp_packet

HOST_BYTES = 2 << 30
IMAGE_BYTES = 128 << 20
VM_TARGET = 150

CONFIG = HoneyfarmConfig(
    prefixes=("10.16.0.0/24",),
    num_hosts=1,
    host_memory_bytes=HOST_BYTES,
    idle_timeout_seconds=3600.0,  # hold the population for measurement
    memory_pressure_threshold=0.98,
    clone_jitter=0.0,
    seed=33,
)

ATTACKER = IPAddress.parse("203.0.113.70")
BASE = IPAddress.parse("10.16.0.1").value


def populate(farm: Honeyfarm, count: int) -> None:
    """Touch `count` addresses with realistic probe mixes so guests build
    working sets (some get exploited and dirty a worm body too)."""
    for i in range(count):
        dst = IPAddress(BASE + i)
        t = 0.05 * i
        farm.sim.schedule_at(t, farm.inject, tcp_packet(ATTACKER, dst, 1024 + i, 445))
        if i % 3 == 0:
            farm.sim.schedule_at(
                t + 0.7, farm.inject,
                tcp_packet(ATTACKER, dst, 1024 + i, 445,
                           flags=TcpFlags.PSH | TcpFlags.ACK, payload="smb-probe"),
            )
        if i % 7 == 0:
            farm.sim.schedule_at(
                t + 0.9, farm.inject,
                udp_packet(ATTACKER, dst, 1024 + i, 1434, payload="exploit:slammer"),
            )
    farm.run(until=0.05 * count + 10.0)


def run_delta_farm():
    farm = Honeyfarm(CONFIG)
    populate(farm, VM_TARGET)
    return farm


def test_delta_virtualization_memory_economics(benchmark):
    farm = benchmark.pedantic(run_delta_farm, rounds=1, iterations=1)

    host = farm.hosts[0]
    vms = list(host.vms())
    summary = footprint_summary(vms)
    breakdown = farm.memory_breakdown()

    estimated_delta = vms_per_host_estimate(HOST_BYTES, IMAGE_BYTES, summary.mean)
    estimated_full = vms_per_host_estimate(HOST_BYTES, IMAGE_BYTES, summary.mean,
                                           full_copy=True)
    dedicated = dedicated_vms_per_host(HOST_BYTES, IMAGE_BYTES)

    rows = [
        ["concurrent VMs (measured)", breakdown.live_vms],
        ["reference image resident (MiB)", f"{breakdown.image_resident / 2**20:.0f}"],
        ["total private resident (MiB)", f"{breakdown.private_resident / 2**20:.1f}"],
        ["mean private/VM (MiB)", f"{summary.mean_mib:.2f}"],
        ["median private/VM (MiB)", f"{summary.median_mib:.2f}"],
        ["p99 private/VM (MiB)", f"{summary.p99 / 2**20:.2f}"],
        ["consolidation factor", f"{breakdown.consolidation_factor:.1f}x"],
        ["est. VMs/host (delta virt)", estimated_delta],
        ["est. VMs/host (full copy)", estimated_full],
        ["dedicated VMs/host (baseline)", dedicated],
    ]
    report = format_table(
        ["metric", "value"], rows,
        title="F-MEM: delta virtualization on a 2 GiB host (128 MiB guests)",
    )
    register_report("F-MEM_memory_economics", report)

    # Paper-shape assertions.
    assert breakdown.live_vms >= 116          # at least the demonstrated count
    assert summary.mean_mib < 8.0             # few-MB marginal footprint
    assert breakdown.consolidation_factor > 10.0
    assert estimated_delta > 100
    assert estimated_full < 20
    assert estimated_delta > 10 * estimated_full


def run_fullcopy_farm():
    farm = Honeyfarm(CONFIG.with_overrides(clone_mode="full-copy",
                                           memory_pressure_threshold=None))
    populate(farm, VM_TARGET)
    return farm


def test_full_copy_ablation_collapses_capacity(benchmark):
    """A-ABL1: the same workload without CoW sharing hits the memory wall
    after ~14 VMs and sheds the rest."""
    farm = benchmark.pedantic(run_fullcopy_farm, rounds=1, iterations=1)
    breakdown = farm.memory_breakdown()
    counters = farm.metrics.counters()

    rows = [
        ["concurrent VMs (measured)", breakdown.live_vms],
        ["admission failures (no memory)", counters.get("gateway.no_capacity_drop", 0)],
        ["consolidation factor", f"{breakdown.consolidation_factor:.2f}x"],
    ]
    report = format_table(
        ["metric", "value"], rows,
        title="A-ABL1: full-copy cloning on the same host and workload",
    )
    register_report("A-ABL1_full_copy_ablation", report)

    assert breakdown.live_vms <= 16
    assert counters.get("gateway.no_capacity_drop", 0) > 0
    assert breakdown.consolidation_factor < 1.5
