"""Experiment D-TARGET (extension) — worm targeting vs farm capture rate.

Honeyfarms are not neutral observers of every worm equally: a worm with
*local* scanning preference (Code Red II's 1/2-same-/8, 3/8-same-/16
mix) that lands inside a monitored /16 hammers that same /16, so the
farm keeps capturing it even with **no reflection at all** — while a
uniform scanner that compromises one honeypot essentially never returns
(2^-16 per scan). Reflection equalises the two: it manufactures the
locality that uniform worms lack.

Table: captures after one index case under {uniform, local} × {open,
reflect}.
"""

from __future__ import annotations

from conftest import register_report

from repro.analysis.report import format_table
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress
from repro.net.packet import PROTO_UDP, udp_packet
from repro.services.guest import ScanBehavior

ATTACKER = IPAddress.parse("203.0.113.31")
INDEX_CASE = IPAddress.parse("10.16.7.7")
DURATION = 15.0


def run_case(targeting: str, containment: str) -> int:
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/16",), num_hosts=2, max_vms_per_host=64,
        containment=containment, clone_jitter=0.0, seed=19,
        idle_timeout_seconds=600.0,
    ))
    farm.register_worm(ScanBehavior(
        "slammer", PROTO_UDP, 1434, "exploit:slammer", scan_rate=60.0,
        targeting=targeting,
    ))
    farm.inject(udp_packet(ATTACKER, INDEX_CASE, 1, 1434,
                           payload="exploit:slammer"))
    farm.run(until=DURATION)
    return farm.infection_count()


def test_targeting_vs_capture_rate(benchmark):
    cases = [("uniform", "open"), ("local", "open"),
             ("uniform", "reflect"), ("local", "reflect")]
    results = benchmark.pedantic(
        lambda: {case: run_case(*case) for case in cases},
        rounds=1, iterations=1,
    )

    rows = [
        [targeting, containment, captures]
        for (targeting, containment), captures in results.items()
    ]
    report = format_table(
        ["worm targeting", "containment", "captures in 15s"],
        rows,
        title="D-TARGET: one index case in a /16 farm (128-VM budget)",
    )
    register_report("D-TARGET_worm_targeting", report)

    # Without reflection, only the local worm snowballs.
    assert results[("uniform", "open")] <= 2
    assert results[("local", "open")] > 10 * max(results[("uniform", "open")], 1)
    # Reflection manufactures locality: both worms snowball.
    assert results[("uniform", "reflect")] > 50
    assert results[("local", "reflect")] > 50
