"""Experiment F-SCALE — physical servers needed per covered /16.

The headline scalability comparison. For the reproduction's /16
background-radiation trace, compute how many physical servers each
architecture needs, combining both constraints the paper identifies:

* memory — peak concurrent VMs ÷ VMs-per-host;
* clone throughput — clone demand ÷ clones-per-second-per-host.

The dedicated baseline must keep a booted VM per *address* (recycling is
meaningless when instantiation costs 43 s), so its server count depends
only on address count — which is what produces the orders-of-magnitude
gap the paper's design closes.
"""

from __future__ import annotations

import math

from conftest import register_report

from repro.analysis.concurrency import sweep_timeouts
from repro.analysis.memory_stats import vms_per_host_estimate
from repro.analysis.report import format_table
from repro.baselines.dedicated import dedicated_vms_per_host
from repro.net.addr import Prefix
from repro.workloads.telescope import TelescopeConfig, TelescopeWorkload

HOST_BYTES = 2 << 30
IMAGE_BYTES = 128 << 20
PRIVATE_BYTES_PER_VM = int(1.0 * (1 << 20))  # measured ~0.8-1 MiB in F-MEM
# The 0.521 s pipeline is control-plane latency, not occupancy: stages for
# different clones overlap (the paper's toolstack serialises ~4 in flight).
CLONES_PER_SECOND_PER_HOST = 4 / 0.521
DURATION = 600.0
TIMEOUTS = [5.0, 60.0, 300.0]
PREFIX = Prefix.parse("10.16.0.0/16")


def analyze():
    workload = TelescopeWorkload([PREFIX], TelescopeConfig(seed=303))
    records = workload.generate(DURATION)
    return records, sweep_timeouts(records, TIMEOUTS)


def test_servers_per_slash16(benchmark):
    records, results = benchmark.pedantic(analyze, rounds=1, iterations=1)

    vms_per_host = vms_per_host_estimate(HOST_BYTES, IMAGE_BYTES, PRIVATE_BYTES_PER_VM)
    rows = []
    potemkin_hosts = {}
    for result in results:
        clone_rate = result.vm_instantiations / DURATION
        hosts_memory = math.ceil(result.peak_vms / vms_per_host)
        hosts_clone = math.ceil(clone_rate / CLONES_PER_SECOND_PER_HOST)
        hosts = max(hosts_memory, hosts_clone, 1)
        potemkin_hosts[result.timeout] = hosts
        bottleneck = "clone rate" if hosts_clone >= hosts_memory else "memory"
        rows.append([
            f"Potemkin, timeout {result.timeout:g}s",
            result.peak_vms,
            f"{clone_rate:.1f}",
            hosts,
            bottleneck,
        ])

    dedicated_per_host = dedicated_vms_per_host(HOST_BYTES, IMAGE_BYTES)
    dedicated_hosts = math.ceil(PREFIX.size / dedicated_per_host)
    rows.append(["dedicated VM per address", PREFIX.size, "-", dedicated_hosts,
                 "memory"])
    rows.append([
        "advantage (vs 60s Potemkin)", "-", "-",
        f"{dedicated_hosts / potemkin_hosts[60.0]:.0f}x", "",
    ])

    report = format_table(
        ["architecture", "peak VMs", "clones/s", "servers per /16", "bottleneck"],
        rows,
        title=f"F-SCALE: servers to cover a /16 ({len(records)}-packet trace)",
    )
    register_report("F-SCALE_servers_per_slash16", report)

    assert potemkin_hosts[5.0] <= 10         # aggressive recycling: a few hosts
    assert potemkin_hosts[60.0] <= 40
    assert dedicated_hosts > 1000
    assert dedicated_hosts / potemkin_hosts[60.0] > 100
