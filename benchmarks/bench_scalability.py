"""Experiment F-SCALE — physical servers needed per covered /16.

The headline scalability comparison. For the reproduction's /16
background-radiation trace, compute how many physical servers each
architecture needs, combining both constraints the paper identifies:

* memory — peak concurrent VMs ÷ VMs-per-host;
* clone throughput — clone demand ÷ clones-per-second-per-host.

The dedicated baseline must keep a booted VM per *address* (recycling is
meaningless when instantiation costs 43 s), so its server count depends
only on address count — which is what produces the orders-of-magnitude
gap the paper's design closes.

A second sweep drives the *implementation's* scale-out path: the same
per-shard storm at 1, 2, and 4 shards through the multiprocess
:class:`~repro.core.parallel.ParallelFederation` (one worker per shard),
recording per-shard throughput as coverage grows —
``reports/BENCH_shard_sweep.json``.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from conftest import register_report

from repro.analysis.concurrency import sweep_timeouts
from repro.analysis.memory_stats import vms_per_host_estimate
from repro.analysis.report import format_table
from repro.baselines.dedicated import dedicated_vms_per_host
from repro.net.addr import Prefix
from repro.testing.fedscenario import FederationScenario
from repro.workloads.telescope import TelescopeConfig, TelescopeWorkload
from repro.workloads.worms import KNOWN_WORMS

HOST_BYTES = 2 << 30
IMAGE_BYTES = 128 << 20
PRIVATE_BYTES_PER_VM = int(1.0 * (1 << 20))  # measured ~0.8-1 MiB in F-MEM
# The 0.521 s pipeline is control-plane latency, not occupancy: stages for
# different clones overlap (the paper's toolstack serialises ~4 in flight).
CLONES_PER_SECOND_PER_HOST = 4 / 0.521
DURATION = 600.0
TIMEOUTS = [5.0, 60.0, 300.0]
PREFIX = Prefix.parse("10.16.0.0/16")


def analyze():
    workload = TelescopeWorkload([PREFIX], TelescopeConfig(seed=303))
    records = workload.generate(DURATION)
    return records, sweep_timeouts(records, TIMEOUTS)


def test_servers_per_slash16(benchmark):
    records, results = benchmark.pedantic(analyze, rounds=1, iterations=1)

    vms_per_host = vms_per_host_estimate(HOST_BYTES, IMAGE_BYTES, PRIVATE_BYTES_PER_VM)
    rows = []
    potemkin_hosts = {}
    for result in results:
        clone_rate = result.vm_instantiations / DURATION
        hosts_memory = math.ceil(result.peak_vms / vms_per_host)
        hosts_clone = math.ceil(clone_rate / CLONES_PER_SECOND_PER_HOST)
        hosts = max(hosts_memory, hosts_clone, 1)
        potemkin_hosts[result.timeout] = hosts
        bottleneck = "clone rate" if hosts_clone >= hosts_memory else "memory"
        rows.append([
            f"Potemkin, timeout {result.timeout:g}s",
            result.peak_vms,
            f"{clone_rate:.1f}",
            hosts,
            bottleneck,
        ])

    dedicated_per_host = dedicated_vms_per_host(HOST_BYTES, IMAGE_BYTES)
    dedicated_hosts = math.ceil(PREFIX.size / dedicated_per_host)
    rows.append(["dedicated VM per address", PREFIX.size, "-", dedicated_hosts,
                 "memory"])
    rows.append([
        "advantage (vs 60s Potemkin)", "-", "-",
        f"{dedicated_hosts / potemkin_hosts[60.0]:.0f}x", "",
    ])

    report = format_table(
        ["architecture", "peak VMs", "clones/s", "servers per /16", "bottleneck"],
        rows,
        title=f"F-SCALE: servers to cover a /16 ({len(records)}-packet trace)",
    )
    register_report("F-SCALE_servers_per_slash16", report)

    assert potemkin_hosts[5.0] <= 10         # aggressive recycling: a few hosts
    assert potemkin_hosts[60.0] <= 40
    assert dedicated_hosts > 1000
    assert dedicated_hosts / potemkin_hosts[60.0] > 100


# --------------------------------------------------------------------- #
# Federated scale-out sweep
# --------------------------------------------------------------------- #

SHARD_SWEEP = (1, 2, 4)
SWEEP_REPORT = Path(__file__).parent / "reports" / "BENCH_shard_sweep.json"


def run_shard_count(shards: int) -> dict:
    """One federated run: ``shards`` /26 shards, one worker per shard,
    each shard fed its own telescope partition plus the worm mix, so
    total offered load grows linearly with coverage."""
    scenario = FederationScenario(
        seed=190525, shards=shards, shard_bits=26, duration=10.0,
        latency=0.25, telescope_rate=2048.0, exploit_fraction=0.4,
        probes_max=100, max_packets_per_shard=400, containment="reflect",
        worms=tuple((name, 2.0) for name in sorted(KNOWN_WORMS)),
        name=f"shard-sweep-{shards}",
    )
    t0 = time.perf_counter()
    result = scenario.build_parallel(workers=shards).run(
        until=scenario.duration
    )
    wall = time.perf_counter() - t0
    result.assert_packet_conservation()
    events = sum(r["events_processed"] for r in result.reports)
    return {
        "shards": shards,
        "workers": shards,
        "addresses": shards * scenario.addresses_per_shard,
        "wall_seconds": round(wall, 3),
        "events_processed": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else None,
        "infections": result.infection_count(),
        "intershard_sent": result.intershard_totals()["sent"],
    }


def test_federated_shard_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: [run_shard_count(n) for n in SHARD_SWEEP],
        rounds=1, iterations=1,
    )

    SWEEP_REPORT.parent.mkdir(exist_ok=True)
    SWEEP_REPORT.write_text(json.dumps({"sweep": rows}, indent=2) + "\n")
    register_report(
        "F-SCALE_shard_sweep",
        format_table(
            ["shards", "addresses", "wall s", "events/s", "infections",
             "cross-shard msgs"],
            [[r["shards"], r["addresses"], f"{r['wall_seconds']:.2f}",
              f"{r['events_per_sec']:.0f}", r["infections"],
              r["intershard_sent"]] for r in rows],
            title="F-SCALE: federated shard sweep (one worker per shard)",
        ),
    )

    by_shards = {r["shards"]: r for r in rows}
    # Offered load grows with coverage, so processed events must too.
    assert by_shards[2]["events_processed"] > by_shards[1]["events_processed"]
    assert by_shards[4]["events_processed"] > by_shards[2]["events_processed"]
    # One shard has no siblings; any wider federation must cross-talk.
    assert by_shards[1]["intershard_sent"] == 0
    assert all(by_shards[n]["intershard_sent"] > 0 for n in (2, 4))
