"""Experiment F-CONC — concurrent VMs required vs idle timeout.

The paper's central scalability analysis: how many simultaneously-live
VMs must the farm hold, as a function of the reclamation idle timeout,
for the traffic a /16 telescope sees? Computed exactly from the arrival
trace (the same methodology the paper uses to extrapolate beyond its
testbed).

Expected shape: required VMs grow steeply (roughly linearly over the
interesting range) with the timeout — sub-minute timeouts need hundreds
of VMs for a /16, minutes-scale timeouts need thousands — which is what
makes aggressive recycling plus hundreds-of-VMs-per-host consolidation
the enabling combination for /16-scale farms on a handful of servers.
"""

from __future__ import annotations

from conftest import register_report, report_csv

from repro.analysis.concurrency import sweep_timeouts
from repro.analysis.report import format_table
from repro.net.addr import Prefix
from repro.workloads.telescope import TelescopeConfig, TelescopeWorkload

DURATION = 600.0
TIMEOUTS = [1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0]
PREFIX = Prefix.parse("10.16.0.0/16")


def run_sweep():
    workload = TelescopeWorkload([PREFIX], TelescopeConfig(seed=202))
    records = workload.generate(DURATION)
    return records, sweep_timeouts(records, TIMEOUTS)


def test_concurrency_vs_idle_timeout(benchmark):
    records, results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [
        [f"{r.timeout:g}", r.peak_vms, f"{r.mean_vms:.1f}", r.vm_instantiations]
        for r in results
    ]
    report = format_table(
        ["idle timeout (s)", "peak VMs", "mean VMs", "instantiations"],
        rows,
        title=(
            f"F-CONC: concurrent VMs vs idle timeout"
            f" (/16 trace, {len(records)} packets over {DURATION:.0f}s)"
        ),
    )
    register_report("F-CONC_concurrency_vs_timeout", report)
    for result in results:
        report_csv(
            f"F-CONC_series_timeout_{result.timeout:g}s",
            result.series, value_label="concurrent_vms",
        )

    peaks = [r.peak_vms for r in results]
    means = [r.mean_vms for r in results]
    # Monotone growth with timeout.
    assert peaks == sorted(peaks)
    assert means == sorted(means)
    # Shape: short timeouts keep the farm small; long ones inflate it by
    # orders of magnitude.
    by_timeout = {r.timeout: r for r in results}
    assert by_timeout[600.0].mean_vms > 20 * by_timeout[5.0].mean_vms
    # Instantiations fall as timeouts lengthen (fewer re-activations).
    instantiations = [r.vm_instantiations for r in results]
    assert instantiations == sorted(instantiations, reverse=True)
