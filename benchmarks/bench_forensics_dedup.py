"""Experiments D-FORENSICS and D-DEDUP (extensions).

**D-FORENSICS** — delta virtualization as a forensic instrument: after a
multi-worm incident, cluster captured VMs by their dirty-page sets with
no ground-truth labels and check that (a) the clustering recovers the
worm families with perfect purity and (b) each family's signature-body
size matches the worm's actual resident size (the catalog value —
unknown to the pipeline).

**D-DEDUP** — content-based page sharing, the paper's future-work item,
quantified: after the same incident, scan private pages for identical
contents and report what an ESX-style sharing scanner would reclaim
(every victim of the same worm carries an identical worm body).
"""

from __future__ import annotations

from conftest import register_report

from repro.analysis.dedup import dedup_opportunity
from repro.analysis.report import format_table
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.forensics import ForensicTriage
from repro.net.addr import IPAddress
from repro.net.packet import TcpFlags, tcp_packet, udp_packet
from repro.services.personality import default_registry

ATTACKER = IPAddress.parse("203.0.113.80")
CLEAN_VMS = 24
SLAMMER_VICTIMS = 12
CODERED_VICTIMS = 8
SASSER_VICTIMS = 6


def run_incident() -> Honeyfarm:
    """A farm that has weathered clean probes plus three distinct worms
    (containment drop-all so the populations stay controlled)."""
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/25",), num_hosts=2,
        containment="drop-all", idle_timeout_seconds=600.0,
        clone_jitter=0.0, seed=55,
    ))
    addr = iter(range(1, 126))
    for __ in range(CLEAN_VMS):
        dst = IPAddress.parse(f"10.16.0.{next(addr)}")
        farm.inject(tcp_packet(ATTACKER, dst, 1000, 445))
        farm.inject(tcp_packet(ATTACKER, dst, 1000, 445,
                               flags=TcpFlags.PSH | TcpFlags.ACK, payload="probe"))
    for __ in range(SLAMMER_VICTIMS):
        dst = IPAddress.parse(f"10.16.0.{next(addr)}")
        farm.inject(udp_packet(ATTACKER, dst, 2000, 1434, payload="exploit:slammer"))
    for __ in range(CODERED_VICTIMS):
        dst = IPAddress.parse(f"10.16.0.{next(addr)}")
        farm.inject(tcp_packet(ATTACKER, dst, 3000, 80))
        farm.inject(tcp_packet(ATTACKER, dst, 3000, 80,
                               flags=TcpFlags.PSH | TcpFlags.ACK,
                               payload="exploit:codered"))
    for __ in range(SASSER_VICTIMS):
        dst = IPAddress.parse(f"10.16.0.{next(addr)}")
        farm.inject(tcp_packet(ATTACKER, dst, 4000, 445))
        farm.inject(tcp_packet(ATTACKER, dst, 4000, 445,
                               flags=TcpFlags.PSH | TcpFlags.ACK,
                               payload="exploit:sasser"))
    farm.run(until=15.0)
    return farm


def test_forensic_triage_recovers_worm_families(benchmark):
    farm = benchmark.pedantic(run_incident, rounds=1, iterations=1)
    catalog = default_registry().catalog

    triage = ForensicTriage(farm)
    triage.collect()
    report = triage.report()

    rows = []
    for sig in report.signatures:
        true_pages = (
            catalog.get(sig.dominant_worm).infection_pages
            if sig.dominant_worm else 0
        )
        rows.append([
            sig.dominant_worm or "(unlabelled)",
            sig.cluster_size,
            sig.body_pages,
            true_pages,
            f"{sig.purity * 100:.0f}%",
        ])
    report_text = format_table(
        ["family", "captures", "estimated body pages", "true body pages",
         "purity"],
        rows,
        title=(
            f"D-FORENSICS: {report.infected_vms} captures,"
            f" {report.clean_vms} clean VMs, label-free clustering"
        ),
    )
    register_report("D-FORENSICS_triage", report_text)

    assert report.clean_vms == CLEAN_VMS
    assert report.infected_vms == SLAMMER_VICTIMS + CODERED_VICTIMS + SASSER_VICTIMS
    by_worm = {s.dominant_worm: s for s in report.signatures}
    assert set(by_worm) == {"slammer", "codered", "sasser"}
    for name, sig in by_worm.items():
        assert sig.purity == 1.0
        true_pages = catalog.get(name).infection_pages
        assert abs(sig.body_pages - true_pages) <= 8


def test_dedup_opportunity_after_incident(benchmark):
    farm = benchmark.pedantic(run_incident, rounds=1, iterations=1)
    catalog = default_registry().catalog

    stats = dedup_opportunity(farm.hosts)
    register_report("D-DEDUP_content_sharing", stats.render())

    # Total duplicate frames in the incident: each victim of a worm
    # beyond the first carries an identical body.
    total_duplicates = (
        (SLAMMER_VICTIMS - 1) * catalog.get("slammer").infection_pages
        + (CODERED_VICTIMS - 1) * catalog.get("codered").infection_pages
        + (SASSER_VICTIMS - 1) * catalog.get("sasser").infection_pages
    )
    # The per-host shared-frame stores (on by default) have already
    # collapsed every within-host duplicate; what remains for a scanner
    # is only the cross-host redundancy: one extra body copy per worm
    # per additional host it landed on. Derive both from the actual
    # victim placement so the assertion is exact under any placement.
    victims_by_host_worm = {}
    for host in farm.hosts:
        for vm in host.vms():
            infection = getattr(vm.guest, "infection", None)
            if infection is None:
                continue
            key = (host.host_id, infection.worm_name)
            victims_by_host_worm[key] = victims_by_host_worm.get(key, 0) + 1
    expected_already_shared = sum(
        (count - 1) * catalog.get(worm).infection_pages
        for (_, worm), count in victims_by_host_worm.items()
    )
    hosts_per_worm = {}
    for (_, worm) in victims_by_host_worm:
        hosts_per_worm[worm] = hosts_per_worm.get(worm, 0) + 1
    expected_cross_host = sum(
        (n_hosts - 1) * catalog.get(worm).infection_pages
        for worm, n_hosts in hosts_per_worm.items()
    )
    assert stats.already_shared_frames == expected_already_shared
    assert stats.shareable_frames == expected_cross_host
    assert stats.already_shared_frames + stats.shareable_frames == total_duplicates
    assert stats.largest_duplicate_group == SLAMMER_VICTIMS
    assert stats.already_shared_frames > stats.shareable_frames
