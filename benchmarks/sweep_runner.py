"""Parallel sweep runner for the grid-shaped experiments.

Two of the repo's experiments are *sweeps* — independent simulation or
analysis points over a parameter grid:

* **F-CONC** — exact concurrency-vs-idle-timeout curves computed from one
  telescope trace (``repro.analysis.concurrency.sweep_timeouts``).
* **A-ABL2** — reclamation-policy ablation: one full farm run per
  memory-pressure threshold on a deliberately small host.

Every point is a pure function of its inputs (fixed workload seed, fixed
farm seed, each worker builds its own deterministic ``Simulator``), so the
grid fans out over a ``multiprocessing`` pool with **bit-identical**
results to a sequential run: ``Pool.map`` returns in submission order, and
no state is shared between points. ``--workers 1`` (or a single-core box)
degrades to the sequential path with the same output.

Run standalone::

    PYTHONPATH=src python benchmarks/sweep_runner.py [--smoke] [--workers N]

or let ``perf_harness.py`` drive it. Results land in
``benchmarks/reports/BENCH_sweeps.json``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.concurrency import sweep_timeouts
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress, Prefix
from repro.net.packet import TcpFlags, tcp_packet
from repro.workloads.telescope import TelescopeConfig, TelescopeWorkload

REPORT_DIR = Path(__file__).resolve().parent / "reports"

# F-CONC grid (matches bench_concurrency_vs_timeout.py).
CONC_PREFIX = "10.16.0.0/16"
CONC_SEED = 202
CONC_TIMEOUTS = [1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0]
CONC_DURATION = 600.0
CONC_DURATION_SMOKE = 60.0

# A-ABL2 grid (policy axis extends bench_reclamation_policies.py).
ABL_SEED = 27
ABL_THRESHOLDS: List[Optional[float]] = [None, 0.7, 0.85, 0.95]
ABL_DURATION = 30.0
ABL_DURATION_SMOKE = 10.0
ABL_ADDRESSES = 256
ABL_ADDRESSES_SMOKE = 96

_ATTACKER = "203.0.113.200"
_ABL_BASE = "10.16.0.0"
_PSH_ACK = TcpFlags.PSH | TcpFlags.ACK


# ---------------------------------------------------------------------- #
# F-CONC: timeout sweep over one shared trace
# ---------------------------------------------------------------------- #

def run_concurrency_sweep(
    duration: float, workers: int
) -> List[Dict[str, Any]]:
    """Concurrency curve points for the /16 telescope trace."""
    workload = TelescopeWorkload(
        [Prefix.parse(CONC_PREFIX)], TelescopeConfig(seed=CONC_SEED)
    )
    records = workload.generate(duration)
    results = sweep_timeouts(records, CONC_TIMEOUTS, workers=workers)
    return [
        {
            "idle_timeout_seconds": r.timeout,
            "peak_vms": r.peak_vms,
            "mean_vms": round(r.mean_vms, 4),
            "vm_instantiations": r.vm_instantiations,
            "trace_packets": len(records),
        }
        for r in results
    ]


# ---------------------------------------------------------------------- #
# A-ABL2: one deterministic farm run per reclamation policy point
# ---------------------------------------------------------------------- #

def _run_reclamation_point(args: Tuple[Optional[float], float, int]) -> Dict[str, Any]:
    """Worker: build a fresh seeded farm, replay the burst, summarize.

    Module-level (picklable) and self-contained: each pool worker
    constructs its own Simulator and farm from the fixed seed, so the
    outcome is independent of which process runs which point.
    """
    threshold, duration, addresses = args
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/24",),
        num_hosts=1,
        host_memory_bytes=264 << 20,
        max_vms_per_host=4096,
        idle_timeout_seconds=3600.0,   # fidelity-first idle policy
        memory_pressure_threshold=threshold,
        sweep_interval_seconds=0.5,
        clone_jitter=0.0,
        seed=ABL_SEED,
    ))
    attacker = IPAddress.parse(_ATTACKER)
    base = IPAddress.parse(_ABL_BASE).value
    for i in range(addresses):
        dst = IPAddress(base + i)
        t = 0.02 * i
        farm.sim.schedule_at(t, farm.inject, tcp_packet(attacker, dst, 1024 + i, 445))
        for j in range(4):
            farm.sim.schedule_at(
                t + 0.6 + 0.1 * j, farm.inject,
                tcp_packet(attacker, dst, 1024 + i, 445,
                           flags=_PSH_ACK, payload=f"req-{j}"),
            )
    farm.run(until=duration)
    counters = farm.metrics.counters()
    host = farm.hosts[0]
    return {
        "policy": "idle-only" if threshold is None else f"idle+pressure@{threshold:g}",
        "pressure_threshold": threshold,
        "reactive_oom_evictions": counters.get("farm.pressure_evictions", 0),
        "proactive_sweep_reclaims": counters.get("farm.sweep_reclaims", 0),
        "capacity_drops": counters.get("gateway.no_capacity_drop", 0),
        "peak_memory_utilization": round(
            host.memory.peak_allocated_frames / host.memory.capacity_frames, 4
        ),
        "live_vms": farm.live_vms,
        "events_processed": farm.sim.events_processed,
    }


def run_reclamation_sweep(
    duration: float, addresses: int, workers: int
) -> List[Dict[str, Any]]:
    """Policy ablation points, in the fixed ABL_THRESHOLDS order."""
    points = [(t, duration, addresses) for t in ABL_THRESHOLDS]
    if workers > 1 and len(points) > 1:
        with multiprocessing.Pool(processes=min(workers, len(points))) as pool:
            return pool.map(_run_reclamation_point, points, chunksize=1)
    return [_run_reclamation_point(p) for p in points]


# ---------------------------------------------------------------------- #
# Entry point
# ---------------------------------------------------------------------- #

def run_sweeps(smoke: bool = False, workers: Optional[int] = None) -> Dict[str, Any]:
    """Run both sweeps; returns the JSON-ready result document."""
    if workers is None:
        workers = os.cpu_count() or 1
    conc_duration = CONC_DURATION_SMOKE if smoke else CONC_DURATION
    abl_duration = ABL_DURATION_SMOKE if smoke else ABL_DURATION
    abl_addresses = ABL_ADDRESSES_SMOKE if smoke else ABL_ADDRESSES

    t0 = time.perf_counter()
    concurrency = run_concurrency_sweep(conc_duration, workers)
    conc_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    reclamation = run_reclamation_sweep(abl_duration, abl_addresses, workers)
    abl_wall = time.perf_counter() - t0

    return {
        "config": {
            "smoke": smoke,
            "workers": workers,
            "concurrency": {
                "prefix": CONC_PREFIX,
                "seed": CONC_SEED,
                "duration_seconds": conc_duration,
                "timeouts": CONC_TIMEOUTS,
            },
            "reclamation": {
                "seed": ABL_SEED,
                "duration_seconds": abl_duration,
                "addresses": abl_addresses,
                "thresholds": ABL_THRESHOLDS,
            },
        },
        "concurrency_vs_timeout": concurrency,
        "reclamation_policies": reclamation,
        "wall_seconds": {
            "concurrency_sweep": round(conc_wall, 3),
            "reclamation_sweep": round(abl_wall, 3),
        },
    }


def write_sweeps(smoke: bool = False, workers: Optional[int] = None) -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    doc = run_sweeps(smoke=smoke, workers=workers)
    out = REPORT_DIR / "BENCH_sweeps.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="short grids for CI (seconds, not minutes)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size (default: all cores)")
    args = parser.parse_args(argv)
    out = write_sweeps(smoke=args.smoke, workers=args.workers)
    doc = json.loads(out.read_text())
    print(f"wrote {out}")
    print(f"  concurrency sweep: {len(doc['concurrency_vs_timeout'])} points"
          f" in {doc['wall_seconds']['concurrency_sweep']}s")
    print(f"  reclamation sweep: {len(doc['reclamation_policies'])} points"
          f" in {doc['wall_seconds']['reclamation_sweep']}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
