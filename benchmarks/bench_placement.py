"""Experiment A-PLACE (extension) — VM placement policy ablation.

The gateway steers each clone at a server; how it chooses affects burst
headroom.

Setup: 3 hosts under a flood across a /24 that fits the cluster with
room to spare. Every policy serves the whole flood; what differs is
*balance* — how evenly VMs and bytes land — which is exactly the burst
headroom left on the busiest host. Round-robin equalises counts,
least-loaded equalises bytes, packing concentrates everything until a
per-host limit forces a spill.
"""

from __future__ import annotations

from conftest import register_report

from repro.analysis.report import format_table
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress
from repro.net.packet import TcpFlags, tcp_packet

POLICIES = ("least-loaded", "round-robin", "pack")
ATTACKER = IPAddress.parse("203.0.113.90")
BASE = IPAddress.parse("10.16.0.0").value
FLOOD = 240


def run_policy(policy: str) -> Honeyfarm:
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/24",), num_hosts=3,
        host_memory_bytes=300 << 20,   # 128 MiB image + ~172 MiB headroom
        max_vms_per_host=128,
        placement_policy=policy,
        idle_timeout_seconds=600.0,
        memory_pressure_threshold=None,  # expose raw placement behaviour
        clone_jitter=0.0, seed=21,
    ))
    for i in range(FLOOD):
        dst = IPAddress(BASE + i)
        t = 0.01 * i
        farm.sim.schedule_at(t, farm.inject, tcp_packet(ATTACKER, dst, 1000 + i, 445))
        farm.sim.schedule_at(t + 0.6, farm.inject, tcp_packet(
            ATTACKER, dst, 1000 + i, 445,
            flags=TcpFlags.PSH | TcpFlags.ACK, payload="probe",
        ))
    farm.run(until=15.0)
    return farm


def test_placement_policy_ablation(benchmark):
    farms = benchmark.pedantic(
        lambda: {p: run_policy(p) for p in POLICIES}, rounds=1, iterations=1
    )

    rows = []
    outcomes = {}
    for policy, farm in farms.items():
        counts = [host.live_vms for host in farm.hosts]
        utils = [host.memory_utilization for host in farm.hosts]
        drops = farm.metrics.counters().get("gateway.no_capacity_drop", 0)
        outcomes[policy] = {
            "counts": counts,
            "count_spread": max(counts) - min(counts),
            "util_spread": max(utils) - min(utils),
            "peak_util": max(utils),
            "drops": drops,
            "served": sum(counts),
        }
        rows.append([
            policy, "/".join(str(c) for c in counts),
            outcomes[policy]["count_spread"],
            f"{outcomes[policy]['util_spread'] * 100:.1f}%",
            f"{outcomes[policy]['peak_util'] * 100:.0f}%",
            sum(counts), drops,
        ])
    report = format_table(
        ["policy", "VMs per host", "VM spread", "mem spread", "peak mem",
         "served", "drops"],
        rows,
        title=f"A-PLACE: {FLOOD}-address flood on 3 x 300 MiB hosts",
    )
    register_report("A-PLACE_placement", report)

    # Everyone serves the flood — capacity is sufficient cluster-wide.
    for policy in POLICIES:
        assert outcomes[policy]["served"] == FLOOD
        assert outcomes[policy]["drops"] == 0
    # Balancing policies keep the busiest host far below packing's.
    assert outcomes["round-robin"]["count_spread"] == 0
    assert outcomes["pack"]["count_spread"] >= 100
    for policy in ("least-loaded", "round-robin"):
        assert outcomes[policy]["peak_util"] < outcomes["pack"]["peak_util"]
    # Least-loaded optimises bytes: its memory spread beats packing's.
    assert outcomes["least-loaded"]["util_spread"] < outcomes["pack"]["util_spread"]
