"""Experiment D-DETECT (extension) — how fast does the farm notice a worm?

The honeyfarm is a sensor: the gateway sees every inbound payload
(content sifting) and the honeypots confirm every compromise (infection
rate). This bench races both detectors against in-farm outbreaks of
increasing speed and reports detection latency from the index case's
arrival — the figure of merit for containment-time response.

Expected shape: both detectors fire within seconds; latency falls as the
worm's scan rate rises (more evidence per unit time); the infection
monitor needs a handful of *confirmed* compromises so it trails clone
latency, while the sifter only needs to see packets.
"""

from __future__ import annotations

from conftest import register_report

from repro.analysis.report import format_table
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.detection.monitor import InfectionRateMonitor
from repro.detection.sifting import ContentSifter, SifterConfig
from repro.net.addr import IPAddress
from repro.net.packet import PROTO_UDP, udp_packet
from repro.services.guest import ScanBehavior

SCAN_RATES = [5.0, 20.0, 80.0]
DURATION = 30.0
ATTACKER = IPAddress.parse("203.0.113.55")
INDEX_CASE = IPAddress.parse("10.16.0.33")


def run_outbreak(scan_rate: float):
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/25",), num_hosts=1,
        containment="reflect", idle_timeout_seconds=60.0,
        clone_jitter=0.0, seed=44,
    ))
    sifter = ContentSifter(
        SifterConfig(prevalence_threshold=20, source_threshold=3,
                     destination_threshold=10),
        clock=lambda: farm.sim.now,
    )
    farm.attach_packet_tap(sifter.observe)
    monitor = InfectionRateMonitor(threshold=5, window_seconds=15.0)
    farm.add_infection_listener(monitor.record)
    farm.register_worm(ScanBehavior(
        "slammer", PROTO_UDP, 1434, "exploit:slammer", scan_rate=scan_rate,
    ))
    farm.inject(udp_packet(ATTACKER, INDEX_CASE, 4000, 1434,
                           payload="exploit:slammer"))
    farm.run(until=DURATION)
    sift = sifter.alert_for("exploit:slammer")
    rate = monitor.alert_for("slammer")
    return {
        "scan_rate": scan_rate,
        "sift_latency": sift.time if sift else None,
        "rate_latency": rate.time if rate else None,
        "infections": farm.infection_count(),
    }


def test_detection_latency_vs_worm_speed(benchmark):
    results = benchmark.pedantic(
        lambda: [run_outbreak(rate) for rate in SCAN_RATES],
        rounds=1, iterations=1,
    )

    rows = []
    for r in results:
        rows.append([
            f"{r['scan_rate']:g}",
            f"{r['sift_latency']:.2f}" if r["sift_latency"] is not None else "miss",
            f"{r['rate_latency']:.2f}" if r["rate_latency"] is not None else "miss",
            r["infections"],
        ])
    report = format_table(
        ["worm scan rate (/s)", "content-sift alert (s)",
         "infection-rate alert (s)", "captures in 30s"],
        rows,
        title="D-DETECT: detection latency from index-case arrival",
    )
    register_report("D-DETECT_detection_latency", report)

    # Every outbreak is detected by both detectors...
    for r in results:
        assert r["sift_latency"] is not None
        assert r["rate_latency"] is not None
        assert r["sift_latency"] < DURATION / 2
        assert r["rate_latency"] < DURATION / 2
    # ...and faster worms are detected sooner by the sifter.
    sift = [r["sift_latency"] for r in results]
    assert sift == sorted(sift, reverse=True)
