"""Experiment F-VMDEMAND — VM-creation demand from telescope traffic.

The paper's feasibility argument for on-demand cloning: the packet rate
at a /16 telescope is large, but the rate of *new-address activations*
(each requiring a flash clone) is far smaller — comfortably within one
server's cloning throughput (~2 clones/s/host at 0.5 s each, times the
cluster) — and most packets hit already-live VMs.

This bench generates a 10-minute /16 background-radiation trace and
reports the packet rate, the clone-demand rate, and the ratio, plus the
clone-demand time series (the figure's y-axis).
"""

from __future__ import annotations

from conftest import register_report, report_csv

from repro.analysis.concurrency import concurrency_for_timeout
from repro.analysis.report import format_series, format_table
from repro.net.addr import Prefix
from repro.sim.metrics import TimeSeries
from repro.workloads.telescope import TelescopeConfig, TelescopeWorkload

DURATION = 600.0
IDLE_TIMEOUT = 60.0
PREFIX = Prefix.parse("10.16.0.0/16")


def generate_trace():
    workload = TelescopeWorkload([PREFIX], TelescopeConfig(seed=101))
    return workload.generate(DURATION), workload


def test_vm_demand_from_telescope_trace(benchmark):
    records, workload = benchmark.pedantic(generate_trace, rounds=1, iterations=1)

    result = concurrency_for_timeout(records, timeout=IDLE_TIMEOUT)
    packets_per_second = len(records) / DURATION
    clones_per_second = result.vm_instantiations / DURATION

    # Clone demand per 10 s bucket — the figure's series.
    demand = TimeSeries("clone demand (clones per 10s bucket)")
    bucket = 0
    count = 0
    seen_active = {}
    for record in records:
        while record.time >= (bucket + 1) * 10.0:
            demand.record(bucket * 10.0, count)
            bucket += 1
            count = 0
        last = seen_active.get(record.dst)
        if last is None or record.time - last > IDLE_TIMEOUT:
            count += 1
        seen_active[record.dst] = record.time
    demand.record(bucket * 10.0, count)

    rows = [
        ["trace duration (s)", f"{DURATION:.0f}"],
        ["total packets", len(records)],
        ["packets/s", f"{packets_per_second:.1f}"],
        ["VM instantiations", result.vm_instantiations],
        ["clone demand (clones/s)", f"{clones_per_second:.2f}"],
        ["packets per clone", f"{len(records) / result.vm_instantiations:.1f}"],
        ["peak concurrent VMs", result.peak_vms],
        [f"(idle timeout {IDLE_TIMEOUT:.0f}s)", ""],
    ]
    report = (
        format_table(["metric", "value"], rows,
                     title="F-VMDEMAND: /16 telescope, 10-minute trace")
        + "\n\n"
        + format_series(demand, max_points=15, value_label="clones/10s")
    )
    register_report("F-VMDEMAND_vm_demand", report)
    report_csv("F-VMDEMAND_clone_demand", demand, value_label="clones_per_10s")

    # Shape assertions: demand well below packet rate (per-address packet
    # multiplicity), and within the cloning throughput of a small cluster.
    assert clones_per_second < packets_per_second / 2
    assert clones_per_second < 50
