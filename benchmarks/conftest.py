"""Benchmark harness support.

Each bench regenerates one of the paper's tables or figures (see the
experiment index in DESIGN.md) and registers a plain-text report via
:func:`register_report`. Reports are printed in the terminal summary —
so ``pytest benchmarks/ --benchmark-only`` shows the reproduced rows and
series alongside pytest-benchmark's wall-clock numbers — and also written
to ``benchmarks/reports/<name>.txt`` for diffing across runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple

_REPORTS: List[Tuple[str, str]] = []
_REPORT_DIR = Path(__file__).parent / "reports"


def register_report(name: str, text: str) -> None:
    """Register one experiment's rendered table/series for output."""
    _REPORTS.append((name, text))
    _REPORT_DIR.mkdir(exist_ok=True)
    (_REPORT_DIR / f"{name}.txt").write_text(text + "\n")


def report_csv(name: str, series, value_label: str = "value") -> None:
    """Write one figure series as a plot-ready CSV next to the reports."""
    _REPORT_DIR.mkdir(exist_ok=True)
    series.to_csv(_REPORT_DIR / f"{name}.csv", value_label=value_label)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"--- {name} ---")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
