"""Chaos sweep: recovery behaviour across crash rate x repair delay.

Each grid point runs the chaos drill scenario (a two-host farm under a
codered outbreak) with recurring host crashes at one ``crash_every``
period and one ``repair_delay``, then summarizes what the recovery
report measures: MTTR, live-VM dip, packets lost by cause, respawn
churn, and — the invariant — a balanced packet ledger.

Every point is a pure function of its inputs (fixed seeds, each worker
builds its own Simulator), so the grid fans out over a
``multiprocessing`` pool with bit-identical results to a sequential
run, exactly like ``sweep_runner.py``.

Run standalone::

    PYTHONPATH=src python benchmarks/chaos_sweep.py [--smoke] [--workers N]

Results land in ``benchmarks/reports/BENCH_chaos.json``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.recovery import recovery_report
from repro.faults import FaultPlan, host_crash
from repro.workloads.scenarios import chaos_drill_scenario

REPORT_DIR = Path(__file__).resolve().parent / "reports"

CRASH_PERIODS = [30.0, 60.0, 120.0]
REPAIR_DELAYS = [5.0, 15.0, 30.0]
DURATION = 240.0
DURATION_SMOKE = 60.0
CRASH_PERIODS_SMOKE = [20.0]
REPAIR_DELAYS_SMOKE = [5.0, 10.0]
FIRST_CRASH_AT = 20.0  # past the epidemic's arrival at the farm
PLAN_SEED = 7
FARM_SEED = 42


def _run_chaos_point(args: Tuple[float, float, float]) -> Dict[str, Any]:
    """Worker: one drill run at (crash_every, repair_delay, duration).

    Module-level (picklable) and self-contained; the recurring crash
    plan targets a random up host each period so both hosts take hits.
    """
    crash_every, repair_delay, duration = args
    plan = FaultPlan(
        events=(
            host_crash(at=FIRST_CRASH_AT, host="0", repair_after=repair_delay),
            host_crash(
                every=crash_every, host="random", repair_after=repair_delay,
            ),
        ),
        seed=PLAN_SEED,
    )
    farm, outbreak, controller = chaos_drill_scenario(plan=plan, seed=FARM_SEED)
    outbreak.start()
    controller.start()
    farm.run(until=duration)
    report = recovery_report(farm, controller)
    mttrs = [o.mttr for o in report.outcomes if o.mttr is not None]
    counters = farm.metrics.counters()
    return {
        "crash_every_seconds": crash_every,
        "repair_delay_seconds": repair_delay,
        "faults_fired": controller.faults_fired,
        "crashes": counters.get("farm.host_crashes", 0),
        "repairs": counters.get("farm.host_repairs", 0),
        "vms_lost": sum(
            r.detail.get("vms_lost", 0) for r in controller.records if not r.skipped
        ),
        "respawns": counters.get("farm.respawns", 0),
        "respawn_retries": counters.get("farm.respawn_retries", 0),
        "respawns_abandoned": counters.get("farm.respawns_abandoned", 0),
        "mean_mttr_seconds": round(sum(mttrs) / len(mttrs), 4) if mttrs else None,
        "unrecovered_crashes": sum(1 for o in report.outcomes if o.mttr is None),
        "min_live_vms": min((o.min_live for o in report.outcomes), default=0),
        "packets_in": report.ledger.packets_in,
        "packets_dropped_by_cause": report.ledger.dropped_by_cause,
        "packets_leaked": report.ledger.leaked,
        "infections": counters.get("farm.infections", 0),
        "events_processed": farm.sim.events_processed,
    }


def run_chaos_sweep(
    crash_periods: List[float],
    repair_delays: List[float],
    duration: float,
    workers: int,
) -> List[Dict[str, Any]]:
    """Grid points in fixed (crash_every, repair_delay) order."""
    points = [
        (crash_every, repair_delay, duration)
        for crash_every in crash_periods
        for repair_delay in repair_delays
    ]
    if workers > 1 and len(points) > 1:
        with multiprocessing.Pool(processes=min(workers, len(points))) as pool:
            return pool.map(_run_chaos_point, points, chunksize=1)
    return [_run_chaos_point(p) for p in points]


def run_sweep(smoke: bool = False, workers: Optional[int] = None) -> Dict[str, Any]:
    if workers is None:
        workers = os.cpu_count() or 1
    crash_periods = CRASH_PERIODS_SMOKE if smoke else CRASH_PERIODS
    repair_delays = REPAIR_DELAYS_SMOKE if smoke else REPAIR_DELAYS
    duration = DURATION_SMOKE if smoke else DURATION

    t0 = time.perf_counter()
    points = run_chaos_sweep(crash_periods, repair_delays, duration, workers)
    wall = time.perf_counter() - t0
    return {
        "config": {
            "smoke": smoke,
            "workers": workers,
            "crash_periods": crash_periods,
            "repair_delays": repair_delays,
            "duration_seconds": duration,
            "plan_seed": PLAN_SEED,
            "farm_seed": FARM_SEED,
        },
        "points": points,
        "total_leaked": sum(p["packets_leaked"] for p in points),
        "wall_seconds": round(wall, 3),
    }


def write_sweep(smoke: bool = False, workers: Optional[int] = None) -> Path:
    REPORT_DIR.mkdir(exist_ok=True)
    doc = run_sweep(smoke=smoke, workers=workers)
    out = REPORT_DIR / "BENCH_chaos.json"
    out.write_text(json.dumps(doc, indent=2) + "\n")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small grid for CI (seconds, not minutes)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size (default: all cores)")
    args = parser.parse_args(argv)
    out = write_sweep(smoke=args.smoke, workers=args.workers)
    doc = json.loads(out.read_text())
    print(f"wrote {out}")
    print(f"  {len(doc['points'])} points in {doc['wall_seconds']}s"
          f" (leaked total: {doc['total_leaked']})")
    if doc["total_leaked"]:
        print("ERROR: packet ledger leaked packets", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
