"""Experiment F-TRAFFIC — telescope traffic characterisation.

The setup figure every telescope evaluation starts with: what the dark
space receives. Characterises the reproduction's 10-minute /16 trace —
source arrival rate, per-source heavy tail, hot-port concentration,
exploit and backscatter shares — and asserts the published structural
properties the generator was calibrated to:

* tens-to-hundreds of packets/second per /16;
* per-source activity is heavy-tailed (p99 ≫ mean ≫ median);
* a few services absorb most probes;
* a visible minority of traffic is backscatter, not scanning.
"""

from __future__ import annotations

from conftest import register_report, report_csv

from repro.analysis.telescope_stats import characterize_trace
from repro.net.addr import Prefix
from repro.workloads.telescope import TelescopeConfig, TelescopeWorkload

DURATION = 600.0
PREFIX = Prefix.parse("10.16.0.0/16")


def test_telescope_traffic_characterisation(benchmark):
    workload = TelescopeWorkload([PREFIX], TelescopeConfig(seed=404))
    records = benchmark.pedantic(
        lambda: workload.generate(DURATION), rounds=1, iterations=1
    )
    profile = characterize_trace(records, DURATION)

    register_report("F-TRAFFIC_characterisation", profile.render())
    report_csv("F-TRAFFIC_source_arrivals", profile.source_arrival_series,
               value_label="cumulative_sources")

    # Published telescope shape, as calibrated.
    assert 20 < profile.packets_per_second < 500
    assert profile.unique_sources > 1000
    sessions = profile.session_sizes
    assert sessions.percentile(99) > 5 * sessions.mean  # heavy tail
    assert sessions.median <= 4
    assert profile.hot_port_concentration(10) > 0.5
    assert 0.02 < profile.backscatter_packets / profile.total_packets < 0.5
    assert profile.exploit_packets > 0
