"""Fast-path performance harness.

Measures the costs this repo's perf work targets, end to end, and writes
machine-readable results for regression tracking:

* ``BENCH_gateway.json`` — per-packet dispatch microbenchmarks:
  - **hot path**: an established flow to a RUNNING VM, including the
    guest's synchronous reply and the egress containment decision;
  - **stray path**: a packet outside every registered prefix (the
    binary-search rejection path);
  - **packet storm**: a full fixed-seed telescope scenario through a
    4-host farm (clone pipeline, flow table, reclamation sweeps, heap
    compaction), reported as wall seconds and events/second.
* ``BENCH_memory.json`` — the content-sharing A/B: the same fixed-seed
  worm packet storm on a memory-constrained host, once with the
  shared-frame store on and once off, recording peak resident frames,
  pressure events/evictions, clone churn, and the frames sharing saved.
* ``BENCH_sweeps.json`` — the parallel grid sweeps (see
  ``sweep_runner.py``).

Run::

    PYTHONPATH=src python benchmarks/perf_harness.py [--smoke] [--skip-sweeps]

``--smoke`` shrinks iteration counts so CI finishes in seconds; the JSON
shape is identical.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress
from repro.net.packet import tcp_packet, udp_packet
from repro.vmm.memory import PAGE_SIZE
from repro.workloads.telescope import TelescopeConfig, TelescopeWorkload
from repro.workloads.trace import replay_into_farm

REPORT_DIR = Path(__file__).resolve().parent / "reports"

HOT_ITERATIONS = 200_000
HOT_ITERATIONS_SMOKE = 20_000
STORM_DURATION = 120.0
STORM_DURATION_SMOKE = 20.0
MEMORY_VICTIMS = 120
MEMORY_VICTIMS_SMOKE = 40
MEMORY_DURATION = 30.0
MEMORY_DURATION_SMOKE = 10.0


def _quiet_farm() -> Honeyfarm:
    """A farm with timers pushed out of the measurement window, so the
    loop below times the dispatch path and nothing else."""
    return Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/16",),
        num_hosts=4,
        idle_timeout_seconds=1e6,
        flow_idle_timeout_seconds=1e6,
        sweep_interval_seconds=1e5,
        clone_jitter=0.0,
        seed=3,
    ))


def bench_dispatch(iterations: int) -> Dict[str, Any]:
    """Microbenchmark the two per-packet decision paths."""
    farm = _quiet_farm()
    attacker = IPAddress.parse("203.0.113.123")
    target = IPAddress.parse("10.16.0.77")
    farm.inject(tcp_packet(attacker, target, 1, 445))
    farm.run(until=2.0)  # let the clone finish so the VM is RUNNING

    process_inbound = farm.gateway.process_inbound
    hot_packet = tcp_packet(attacker, target, 2, 445)
    t0 = time.perf_counter()
    for _ in range(iterations):
        process_inbound(hot_packet)
    hot_wall = time.perf_counter() - t0

    stray_packet = tcp_packet(attacker, IPAddress.parse("172.16.0.1"), 2, 445)
    t0 = time.perf_counter()
    for _ in range(iterations):
        process_inbound(stray_packet)
    stray_wall = time.perf_counter() - t0

    return {
        "iterations": iterations,
        "hot_path": {
            "us_per_packet": round(hot_wall / iterations * 1e6, 4),
            "packets_per_second": round(iterations / hot_wall),
        },
        "stray_path": {
            "us_per_packet": round(stray_wall / iterations * 1e6, 4),
            "packets_per_second": round(iterations / stray_wall),
        },
    }


def bench_packet_storm(duration: float) -> Dict[str, Any]:
    """Wall-time a full fixed-seed telescope scenario through a farm."""
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/16",),
        num_hosts=4,
        idle_timeout_seconds=60.0,
        flow_idle_timeout_seconds=60.0,
        sweep_interval_seconds=5.0,
        clone_jitter=0.01,
        containment="reflect",
        seed=11,
    ))
    workload = TelescopeWorkload(
        list(farm.inventory.prefixes), TelescopeConfig(seed=202)
    )
    records = workload.generate(duration)
    t0 = time.perf_counter()
    replay_into_farm(farm, records)
    farm.run(until=duration)
    wall = time.perf_counter() - t0
    return {
        "sim_duration_seconds": duration,
        "trace_packets": len(records),
        "wall_seconds": round(wall, 4),
        "events_processed": farm.sim.events_processed,
        "events_per_second": round(farm.sim.events_processed / wall),
        "heap_compactions": farm.sim.compactions,
        "live_vms_final": farm.live_vms,
        "flows_expired": farm.gateway.flows.expired_total,
    }


def _memory_storm(
    victims: int, duration: float, content_sharing: bool
) -> Dict[str, Any]:
    """One fixed-seed slammer storm on a memory-constrained host.

    The host is sized *between* the two modes' demand (~198 frames per
    victim with sharing on, ~262 with it off, plus the 4096-frame image)
    so that only the sharing-off run crosses the pressure threshold.
    """
    host_frames = 4096 + 240 * victims
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/24",),
        num_hosts=1,
        host_memory_bytes=host_frames * PAGE_SIZE,
        vm_image_bytes=16 * (1 << 20),
        containment="drop-all",
        clone_jitter=0.0,
        seed=17,
        memory_pressure_threshold=0.9,
        idle_timeout_seconds=600.0,
        sweep_interval_seconds=1.0,
        content_sharing=content_sharing,
    ))
    attacker = IPAddress.parse("203.0.113.99")
    for i in range(victims):
        farm.sim.schedule(
            0.02 * i,
            farm.inject,
            udp_packet(
                attacker,
                IPAddress.parse(f"10.16.0.{(i % 254) + 1}"),
                1, 1434, payload="exploit:slammer",
            ),
        )
    t0 = time.perf_counter()
    farm.run(until=duration)
    wall = time.perf_counter() - t0
    memory = farm.hosts[0].memory
    memory.check_frame_invariant()
    counters = farm.metrics.counters()
    pressure_events = sum(
        getattr(policy, "pressure_events", 0)
        for policy in farm.reclamation.policies
    )
    clones = len(farm.clone_engine.results)
    return {
        "content_sharing": content_sharing,
        "victims": victims,
        "host_frames": host_frames,
        "sim_duration_seconds": duration,
        "wall_seconds": round(wall, 4),
        "events_processed": farm.sim.events_processed,
        "clones_completed": clones,
        "clones_per_sim_second": round(clones / duration, 2),
        "mean_clone_latency_seconds": round(
            farm.clone_engine.mean_latency_seconds(), 4
        ),
        "infections": farm.infection_count(),
        "peak_allocated_frames": memory.peak_allocated_frames,
        "final_allocated_frames": memory.allocated_frames,
        "shared_frames": memory.shared_frames,
        "sharing_savings_frames": memory.sharing_savings_frames,
        "pressure_events": pressure_events,
        "pressure_evictions": counters.get("farm.pressure_evictions", 0),
        "sweep_reclaims": counters.get("farm.sweep_reclaims", 0),
        "allocation_failures": memory.allocation_failures,
    }


def bench_memory(victims: int, duration: float) -> Dict[str, Any]:
    """The content-sharing A/B on one fixed-seed worm packet storm."""
    on = _memory_storm(victims, duration, content_sharing=True)
    off = _memory_storm(victims, duration, content_sharing=False)
    return {
        "sharing_on": on,
        "sharing_off": off,
        "comparison": {
            "peak_frames_saved": (
                off["peak_allocated_frames"] - on["peak_allocated_frames"]
            ),
            "pressure_events_avoided": (
                off["pressure_events"] - on["pressure_events"]
            ),
            "evictions_avoided": (
                (off["pressure_evictions"] + off["sweep_reclaims"])
                - (on["pressure_evictions"] + on["sweep_reclaims"])
            ),
            "sharing_wins": (
                on["pressure_events"] < off["pressure_events"]
                and on["peak_allocated_frames"] < off["peak_allocated_frames"]
            ),
        },
    }


def run_gateway_bench(smoke: bool = False) -> Dict[str, Any]:
    iterations = HOT_ITERATIONS_SMOKE if smoke else HOT_ITERATIONS
    duration = STORM_DURATION_SMOKE if smoke else STORM_DURATION
    return {
        "config": {"smoke": smoke},
        "dispatch": bench_dispatch(iterations),
        "packet_storm": bench_packet_storm(duration),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small iteration counts for CI")
    parser.add_argument("--skip-sweeps", action="store_true",
                        help="only write BENCH_gateway.json")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the sweeps (default: all cores)")
    args = parser.parse_args(argv)

    REPORT_DIR.mkdir(exist_ok=True)
    doc = run_gateway_bench(smoke=args.smoke)
    gateway_out = REPORT_DIR / "BENCH_gateway.json"
    gateway_out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {gateway_out}")

    memory_doc = {
        "config": {"smoke": args.smoke},
        "worm_storm": bench_memory(
            MEMORY_VICTIMS_SMOKE if args.smoke else MEMORY_VICTIMS,
            MEMORY_DURATION_SMOKE if args.smoke else MEMORY_DURATION,
        ),
    }
    memory_out = REPORT_DIR / "BENCH_memory.json"
    memory_out.write_text(json.dumps(memory_doc, indent=2) + "\n")
    print(f"wrote {memory_out}")
    storm_ab = memory_doc["worm_storm"]
    for label in ("sharing_on", "sharing_off"):
        row = storm_ab[label]
        print(f"  {label}: peak {row['peak_allocated_frames']} frames,"
              f" {row['pressure_events']} pressure events,"
              f" {row['pressure_evictions']} pressure evictions,"
              f" saved {row['sharing_savings_frames']} frames")
    comparison = storm_ab["comparison"]
    print(f"  sharing saved {comparison['peak_frames_saved']} peak frames,"
          f" avoided {comparison['pressure_events_avoided']} pressure events"
          f" (wins: {comparison['sharing_wins']})")
    dispatch = doc["dispatch"]
    print(f"  hot path:   {dispatch['hot_path']['us_per_packet']} us/pkt"
          f" ({dispatch['hot_path']['packets_per_second']:,} pps)")
    print(f"  stray path: {dispatch['stray_path']['us_per_packet']} us/pkt"
          f" ({dispatch['stray_path']['packets_per_second']:,} pps)")
    storm = doc["packet_storm"]
    print(f"  storm:      {storm['trace_packets']} pkts /"
          f" {storm['events_processed']} events in {storm['wall_seconds']}s"
          f" ({storm['events_per_second']:,} events/s,"
          f" {storm['heap_compactions']} compactions)")

    if not args.skip_sweeps:
        import sweep_runner

        sweeps_out = sweep_runner.write_sweeps(
            smoke=args.smoke, workers=args.workers
        )
        print(f"wrote {sweeps_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
