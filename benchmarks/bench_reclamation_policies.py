"""Experiment A-ABL2 — reclamation policy ablation under memory pressure.

DESIGN.md calls out the reclamation design choice: with a fidelity-first
idle timeout (an hour), a burst of traffic fills a small host's memory.
The farm survives either way — OOM page faults trigger *reactive* LRU
eviction as a backstop — but the **proactive memory-pressure policy**
reclaims ahead of exhaustion, so guests never hit the OOM path at all.

Setup: a 264 MiB host (128 MiB reference image + ~136 MiB headroom,
which ~170 one-MiB working sets overflow) receives a burst across a /24.
Compared: idle-only versus idle + pressure (threshold 0.85). Metrics:
reactive OOM evictions, proactive sweep reclamations, peak memory.
"""

from __future__ import annotations

from conftest import register_report

from repro.analysis.report import format_table
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress
from repro.net.packet import TcpFlags, tcp_packet

ATTACKER = IPAddress.parse("203.0.113.200")
BASE = IPAddress.parse("10.16.0.0").value
ADDRESSES = 256


def run_farm(pressure_threshold):
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/24",),
        num_hosts=1,
        host_memory_bytes=264 << 20,
        max_vms_per_host=4096,
        idle_timeout_seconds=3600.0,   # fidelity-first idle policy
        memory_pressure_threshold=pressure_threshold,
        sweep_interval_seconds=0.5,
        clone_jitter=0.0,
        seed=27,
    ))
    # A burst touching every address, each then served data requests so
    # guests dirty full working sets (~0.8 MiB each plus connections).
    for i in range(ADDRESSES):
        dst = IPAddress(BASE + i)
        t = 0.02 * i
        farm.sim.schedule_at(t, farm.inject, tcp_packet(ATTACKER, dst, 1024 + i, 445))
        for j in range(4):
            farm.sim.schedule_at(
                t + 0.6 + 0.1 * j, farm.inject,
                tcp_packet(ATTACKER, dst, 1024 + i, 445,
                           flags=TcpFlags.PSH | TcpFlags.ACK, payload=f"req-{j}"),
            )
    farm.run(until=30.0)
    return farm


def test_reclamation_policy_ablation(benchmark):
    farms = benchmark.pedantic(
        lambda: {
            "idle-only (1h)": run_farm(None),
            "idle + pressure LRU": run_farm(0.85),
        },
        rounds=1, iterations=1,
    )

    rows = []
    outcomes = {}
    for name, farm in farms.items():
        counters = farm.metrics.counters()
        host = farm.hosts[0]
        outcome = {
            "reactive": counters.get("farm.pressure_evictions", 0),
            "proactive": counters.get("farm.sweep_reclaims", 0),
            "drops": counters.get("gateway.no_capacity_drop", 0),
            "peak_util": host.memory.peak_allocated_frames
            / host.memory.capacity_frames,
            "live": farm.live_vms,
        }
        outcomes[name] = outcome
        rows.append([
            name, outcome["reactive"], outcome["proactive"], outcome["drops"],
            f"{outcome['peak_util'] * 100:.0f}%", outcome["live"],
        ])

    report = format_table(
        ["policy", "reactive OOM evictions", "proactive reclaims",
         "capacity drops", "peak mem", "live VMs"],
        rows,
        title="A-ABL2: /24 burst on a 264 MiB host, 1h idle timeout",
    )
    register_report("A-ABL2_reclamation_ablation", report)

    idle_only = outcomes["idle-only (1h)"]
    with_pressure = outcomes["idle + pressure LRU"]
    # Without the pressure policy the host runs to the OOM backstop.
    assert idle_only["reactive"] > 0
    assert idle_only["proactive"] == 0
    # With it, reclamation happens proactively and OOM events shrink.
    assert with_pressure["proactive"] > 0
    assert with_pressure["reactive"] < idle_only["reactive"]
    # Both stay within physical memory (the farm never overcommits).
    for outcome in outcomes.values():
        assert outcome["peak_util"] <= 1.0
