"""Experiment F-CONTAIN — worm outbreaks under each containment policy.

The paper's containment argument, quantified: run the same worm outbreak
against the same farm under each policy and compare

* **safety** — honeypot-initiated packets that reached the Internet
  (must be zero for every policy but ``open``), and
* **fidelity** — whether the worm's onward propagation stayed observable
  (generation ≥ 1 infections; only reflection preserves this safely).

Also regenerates the in-farm infection curve under reflection — the
"self-infection epidemic" figure — and the generation histogram showing
multi-stage spread.
"""

from __future__ import annotations

from conftest import register_report, report_csv

from repro.analysis.epidemics import (
    generation_histogram,
    infection_curve,
    summarize_containment,
)
from repro.analysis.report import format_series, format_table
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress
from repro.net.packet import PROTO_UDP, udp_packet
from repro.services.guest import ScanBehavior

POLICIES = ("open", "drop-all", "allow-dns", "reflect")
DURATION = 20.0

ATTACKER = IPAddress.parse("203.0.113.99")
INDEX_CASE = IPAddress.parse("10.16.0.40")


def run_policy(policy: str) -> Honeyfarm:
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/25",),
        num_hosts=1,
        containment=policy,
        idle_timeout_seconds=60.0,
        clone_jitter=0.0,
        seed=17,
    ))
    farm.register_worm(ScanBehavior(
        "slammer", PROTO_UDP, 1434, "exploit:slammer",
        scan_rate=40.0, dns_lookup_first=True, dns_server=farm.dns_server.address,
    ))
    farm.inject(udp_packet(ATTACKER, INDEX_CASE, 4000, 1434,
                           payload="exploit:slammer"))
    farm.run(until=DURATION)
    return farm


def test_containment_policy_comparison(benchmark):
    farms = benchmark.pedantic(
        lambda: {p: run_policy(p) for p in POLICIES}, rounds=1, iterations=1
    )
    summaries = {p: summarize_containment(farm) for p, farm in farms.items()}

    rows = []
    for policy in POLICIES:
        s = summaries[policy]
        rows.append([
            policy, s.infections_total, s.max_generation,
            s.escaped_packets, s.reflected_packets, s.dropped_packets,
            s.dns_transactions, s.contained, s.fidelity_preserved,
        ])
    report = format_table(
        ["policy", "infections", "max gen", "escaped", "reflected",
         "dropped", "dns ok", "contained", "fidelity"],
        rows,
        title=f"F-CONTAIN: slammer outbreak under each policy ({DURATION:.0f}s)",
    )
    register_report("F-CONTAIN_policy_comparison", report)

    # Safety: only `open` leaks.
    assert not summaries["open"].contained
    for policy in ("drop-all", "allow-dns", "reflect"):
        assert summaries[policy].contained, f"{policy} leaked packets"
    # Fidelity: only reflection keeps propagation observable.
    assert summaries["reflect"].fidelity_preserved
    assert not summaries["drop-all"].fidelity_preserved
    assert not summaries["allow-dns"].fidelity_preserved
    # DNS-permitting policies complete the worm's lookup.
    assert summaries["allow-dns"].dns_transactions > 0
    assert summaries["reflect"].dns_transactions > 0

    # The reflection epidemic figure: cumulative infections + generations.
    reflect_farm = farms["reflect"]
    curve = infection_curve(reflect_farm.infections)
    generations = generation_histogram(reflect_farm.infections)
    gen_rows = [[g, count] for g, count in generations.items()]
    epidemic_report = (
        format_series(curve, max_points=15, value_label="cumulative infections")
        + "\n\n"
        + format_table(["generation", "infections"], gen_rows,
                       title="Reflection epidemic: infections per generation")
    )
    register_report("F-CONTAIN_reflection_epidemic", epidemic_report)
    report_csv("F-CONTAIN_reflection_curve", curve,
               value_label="cumulative_infections")

    assert max(generations) >= 2  # genuinely multi-stage inside the farm
