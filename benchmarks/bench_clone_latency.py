"""Experiment T1 — flash-clone latency breakdown (the paper's Table 1).

Regenerates the per-stage latency table for flash cloning and compares
against the two instantiation baselines:

* full-copy cloning (A-ABL1): same pipeline, memory copied eagerly;
* boot-from-scratch (dedicated baseline): cold guest boot.

Expected shape (paper): flash clone completes in ~0.5 s, dominated by
management-toolstack overhead rather than memory work; full copy adds a
memcpy of the whole image; cold boot is two orders of magnitude slower.

The pytest-benchmark timing measures the *simulator's* wall-clock cost of
executing the clone pipeline; the reproduced table reports the simulated
latencies that correspond to the paper's measurements.
"""

from __future__ import annotations

import statistics

from conftest import register_report

from repro.analysis.report import format_table
from repro.core.flash_clone import FlashCloneEngine
from repro.net.addr import IPAddress
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStream
from repro.vmm.host import PhysicalHost
from repro.vmm.latency import CloneCostModel
from repro.vmm.snapshot import ReferenceSnapshot

CLONES = 200
BASE_IP = IPAddress.parse("10.16.0.1").value


def run_mode(mode: str, clones: int = CLONES):
    """Clone `clones` VMs under `mode`, returning (engine, sim)."""
    sim = Simulator()
    host = PhysicalHost(memory_bytes=64 << 30, max_vms=100_000)
    snapshot = ReferenceSnapshot(host.memory, image_bytes=128 << 20)
    host.install_snapshot(snapshot)
    engine = FlashCloneEngine(
        sim,
        CloneCostModel(jitter=0.05, rng=RandomStream(7)),
        mode=mode,
    )
    for i in range(clones):
        vm = engine.clone(host, snapshot, IPAddress(BASE_IP + i))
        sim.run()  # complete each clone before reusing the address space pool
        host.evict(vm, sim.now)
    return engine


def test_clone_latency_breakdown(benchmark):
    engine = benchmark.pedantic(lambda: run_mode("flash"), rounds=1, iterations=1)

    breakdown = engine.stage_breakdown_ms()
    rows = [[stage, f"{ms:.1f}"] for stage, ms in breakdown.items()]
    rows.append(["TOTAL (mean)", f"{engine.mean_latency_seconds() * 1000:.1f}"])
    hist = engine.metrics.histogram("clone.latency_seconds")
    rows.append(["p50 total", f"{hist.percentile(50) * 1000:.1f}"])
    rows.append(["p99 total", f"{hist.percentile(99) * 1000:.1f}"])
    report = format_table(
        ["stage", "latency (ms)"], rows,
        title=f"T1: flash-clone latency breakdown ({CLONES} clones)",
    )
    register_report("T1_clone_latency_breakdown", report)

    total_ms = engine.mean_latency_seconds() * 1000
    assert 450 < total_ms < 600, "flash clone should land near the paper's ~521 ms"
    assert max(breakdown, key=breakdown.get) == "toolstack"


def test_clone_latency_vs_baselines(benchmark):
    def run_all():
        return {mode: run_mode(mode, clones=30) for mode in ("flash", "full-copy", "boot")}

    engines = benchmark.pedantic(run_all, rounds=1, iterations=1)
    means = {mode: engine.mean_latency_seconds() for mode, engine in engines.items()}
    rows = [
        ["flash clone (Potemkin)", f"{means['flash'] * 1000:.0f}", "1.0x"],
        ["full-copy clone (A-ABL1)", f"{means['full-copy'] * 1000:.0f}",
         f"{means['full-copy'] / means['flash']:.1f}x"],
        ["boot from scratch (dedicated)", f"{means['boot'] * 1000:.0f}",
         f"{means['boot'] / means['flash']:.1f}x"],
    ]
    report = format_table(
        ["instantiation mode", "mean latency (ms)", "vs flash"],
        rows, title="T1b: instantiation latency across modes",
    )
    register_report("T1b_instantiation_modes", report)

    assert means["flash"] < means["full-copy"] < means["boot"]
    assert means["boot"] / means["flash"] > 50  # orders-of-magnitude claim
