"""Experiment A-POOL (extension) — warm-pool VM binding latency.

The paper proposes hiding clone latency behind a pool of pre-created
VMs: a packet for a cold address then pays only the network identity
swap, not the whole toolstack pipeline. This bench measures
first-packet-to-VM-running latency under a bursty arrival pattern with
and without the pool, and checks the refill daemon keeps up.

Expected shape: pool binding is ~an order of magnitude faster than the
full pipeline (~60 ms vs ~520 ms); burst arrivals beyond pool depth
degrade gracefully to full clones (misses), and the pool recovers
between bursts.
"""

from __future__ import annotations

from conftest import register_report

from repro.analysis.report import format_table
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import IPAddress
from repro.net.packet import tcp_packet

ATTACKER = IPAddress.parse("203.0.113.5")
BASE = IPAddress.parse("10.16.0.1").value
POOL_SIZE = 24
BURSTS = 6
BURST_VMS = 16
BURST_GAP = 10.0


def run_farm(pool_size: int):
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/24",), num_hosts=2,
        warm_pool_size=pool_size, clone_jitter=0.05,
        idle_timeout_seconds=5.0, seed=66,
    ))
    farm.run(until=3.0)  # pool warm-up (no-op when disabled)
    index = 0
    for burst in range(BURSTS):
        start = farm.sim.now + burst * BURST_GAP
        for i in range(BURST_VMS):
            ip = IPAddress(BASE + index)
            index += 1
            farm.sim.schedule_at(start, farm.inject, tcp_packet(ATTACKER, ip, 1, 445))
    farm.run(until=3.0 + BURSTS * BURST_GAP + 5.0)
    return farm, farm.metrics.histogram("farm.address_ready_seconds")


def test_warm_pool_binding_latency(benchmark):
    results = benchmark.pedantic(
        lambda: {"no pool": run_farm(0), f"pool={POOL_SIZE}": run_farm(POOL_SIZE)},
        rounds=1, iterations=1,
    )

    rows = []
    for name, (farm, latencies) in results.items():
        counters = farm.metrics.counters()
        rows.append([
            name,
            f"{latencies.mean * 1000:.0f}",
            f"{latencies.percentile(50) * 1000:.0f}",
            f"{latencies.percentile(99) * 1000:.0f}",
            counters.get("farm.pool_hits", 0),
            counters.get("farm.pool_misses", 0),
        ])
    report = format_table(
        ["configuration", "mean ready (ms)", "p50 (ms)", "p99 (ms)",
         "pool hits", "pool misses"],
        rows,
        title=(
            f"A-POOL: first-packet-to-VM-running latency"
            f" ({BURSTS} bursts x {BURST_VMS} addresses)"
        ),
    )
    register_report("A-POOL_warm_pool", report)

    no_pool = results["no pool"][1]
    pooled = results[f"pool={POOL_SIZE}"][1]
    assert pooled.mean < no_pool.mean / 4     # order-of-magnitude-class win
    assert pooled.percentile(50) < 0.15        # identity swap, not pipeline
    pool_counters = results[f"pool={POOL_SIZE}"][0].metrics.counters()
    assert pool_counters["farm.pool_hits"] > pool_counters.get("farm.pool_misses", 0)
