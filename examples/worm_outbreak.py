#!/usr/bin/env python3
"""Scenario: a Slammer-class Internet outbreak hits the honeyfarm.

Models the worm's epidemic across the outside Internet — Slammer's
published parameters: ~75k vulnerable hosts, ~4,000 scans/s per
infection, which saturated the Internet in about ten minutes — and
delivers into the farm exactly the scans that statistically fall into
its dark /26, i.e. the farm's **true share of IPv4** (no compression).

Watch three things happen:

* the external prevalence curve I(t) climbs its logistic S-curve,
* the farm starts capturing infections as soon as the epidemic is big
  enough for random scans to find 64 dark addresses,
* reflection keeps every captured instance propagating *inside* the
  farm, generation after generation, with zero escapes.

(The in-farm copy of the worm is throttled to 8 scans/s — simulating
4,000 reflected scans/s per captured instance costs much and teaches
nothing; the external dynamics are untouched.)

Run:  python examples/worm_outbreak.py
"""

from repro.analysis.epidemics import (
    generation_histogram,
    infection_curve,
    summarize_containment,
)
from repro.analysis.report import format_series, format_table
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.workloads.worms import KNOWN_WORMS, InternetOutbreak, OutbreakConfig

DURATION = 240.0


def main() -> None:
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/26",),   # 64 dark addresses
        num_hosts=2,
        containment="reflect",
        idle_timeout_seconds=60.0,
        detain_infected=True,         # keep compromised VMs for forensics
        max_detained=16,
        seed=5,
    ))

    worm = KNOWN_WORMS["slammer"]     # native 4,000 scans/s externally
    outbreak = InternetOutbreak(farm, worm, OutbreakConfig(
        vulnerable_population=75_000,
        initially_infected=50,
        telescope_fraction=None,      # the /26's real share of IPv4
        in_farm_scan_rate=8.0,        # observation-side budget knob
        seed=19,
    ))

    half_time = outbreak.time_to_prevalence(0.5)
    print(f"External epidemic: beta={outbreak.beta:.4f}/s,"
          f" 50% prevalence at t={half_time:.0f}s,"
          f" farm sees {outbreak.telescope_fraction():.2e} of all scans\n")

    outbreak.start()
    farm.run(until=DURATION)

    summary = summarize_containment(farm)
    generations = generation_histogram(farm.infections)
    breakdown = farm.memory_breakdown()

    print(format_series(
        outbreak.prevalence_series.resample(DURATION / 12),
        max_points=12, value_label="infected hosts (Internet)",
    ))
    print()
    if farm.infections:
        print(format_series(
            infection_curve(farm.infections), max_points=12,
            value_label="cumulative captures (farm)",
        ))
        print()
    print(format_table(["metric", "value"], [
        ["scans delivered to farm", outbreak.scans_delivered],
        ["honeypots compromised", summary.infections_total],
        ["index-case infections (gen 0)", generations.get(0, 0)],
        ["onward infections (gen >= 1)", summary.onward_infections],
        ["deepest generation", summary.max_generation],
        ["VMs detained for forensics", len(farm.detained)],
        ["live VMs at end", farm.live_vms],
        ["mean private memory/VM (MiB)",
         f"{breakdown.mean_private_per_vm / 2**20:.2f}"],
        ["escaped packets", summary.escaped_packets],
    ], title=f"Farm outcome after {DURATION:.0f}s of outbreak"))

    assert summary.contained
    print("\nThe farm rode out the outbreak: every capture is a real,"
          "\nexecuting infection, and none of its traffic left the farm.")


if __name__ == "__main__":
    main()
