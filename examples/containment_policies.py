#!/usr/bin/env python3
"""Scenario: the containment dial, policy by policy.

Runs the identical worm incursion — one Blaster-style index case whose
first post-infection act is a DNS lookup — against four farms that
differ only in containment policy, and prints the safety/fidelity
outcome of each. This is the trade-off at the heart of the paper:

* ``open``       maximal fidelity, zero safety (scans escape);
* ``drop-all``   maximal safety, zero fidelity (the worm appears dead);
* ``allow-dns``  safe and lets the rendezvous lookup complete, but
                 propagation stays invisible;
* ``reflect``    safe *and* faithful: the worm spreads honeypot-to-
                 honeypot, generation after generation, while nothing
                 leaves the farm.

Also shows the low-fidelity end of the design space: a stateless
responder sees the same exploit and captures nothing.

Run:  python examples/containment_policies.py
"""

from repro.analysis.epidemics import summarize_containment
from repro.analysis.report import format_table
from repro.baselines.responder import StatelessResponder
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.net.addr import AddressSpaceInventory, IPAddress
from repro.net.packet import PROTO_TCP, TcpFlags, tcp_packet
from repro.services.guest import ScanBehavior
from repro.services.personality import default_registry

POLICIES = ("open", "drop-all", "allow-dns", "reflect")
DURATION = 30.0
ATTACKER = IPAddress.parse("203.0.113.66")
INDEX_CASE = IPAddress.parse("10.16.0.77")


def exploit_packets():
    """Blaster's two-packet incursion: connect, then exploit."""
    syn = tcp_packet(ATTACKER, INDEX_CASE, 4444, 135)
    payload = tcp_packet(ATTACKER, INDEX_CASE, 4444, 135,
                         flags=TcpFlags.PSH | TcpFlags.ACK,
                         payload="exploit:blaster")
    return syn, payload


def run_policy(policy: str):
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/25",), num_hosts=1,
        containment=policy, idle_timeout_seconds=60.0, seed=9,
    ))
    farm.register_worm(ScanBehavior(
        worm_name="blaster", protocol=PROTO_TCP, dst_port=135,
        exploit_tag="exploit:blaster", scan_rate=30.0,
        dns_lookup_first=True, dns_server=farm.dns_server.address,
    ))
    syn, payload = exploit_packets()
    farm.inject(syn)
    farm.sim.schedule(1.0, farm.inject, payload)
    farm.run(until=DURATION)
    return summarize_containment(farm)


def main() -> None:
    rows = []
    for policy in POLICIES:
        s = run_policy(policy)
        rows.append([
            policy, s.infections_total, s.max_generation, s.dns_transactions,
            s.escaped_packets, s.contained, s.fidelity_preserved,
        ])
    print(format_table(
        ["policy", "infections", "max gen", "dns ok", "escaped",
         "safe", "fidelity"],
        rows, title=f"Blaster index case under each policy ({DURATION:.0f}s)",
    ))

    # The other end of the spectrum: honeyd/iSink-class responder.
    registry = default_registry()
    responder = StatelessResponder(
        AddressSpaceInventory([p for p in
                               HoneyfarmConfig(prefixes=("10.16.0.0/25",))
                               .parsed_prefixes()]),
        registry,
    )
    for packet in exploit_packets():
        responder.handle_packet(packet)
    print()
    print(format_table(["metric", "value"], [
        ["probes answered", responder.replies_sent],
        ["exploit attempts seen", responder.would_have_infected],
        ["actual malware captured", responder.capture_count],
    ], title="Stateless responder on the same incursion"))
    print("\nThe responder scales to any address space but captures nothing —"
          "\nonly an executing system can be compromised, and only reflection"
          "\nlets that compromise keep running safely.")


if __name__ == "__main__":
    main()
