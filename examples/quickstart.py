#!/usr/bin/env python3
"""Quickstart: a tiny honeyfarm, end to end, in under a minute of sim time.

Builds a single-host farm impersonating a /24 of dark space, sends it the
kinds of traffic a network telescope sees — a ping, a port scan, and a
real exploit — and shows what the paper's three mechanisms did about it:

* on-demand **flash cloning** gave every probed address a live VM in
  ~0.5 s,
* **delta virtualization** kept each VM's marginal memory footprint to
  ~1 MiB against a 128 MiB image,
* **containment** (reflection) bottled the captured worm inside the farm
  while letting it keep propagating for observation.

Run:  python examples/quickstart.py
"""

from repro import Honeyfarm, HoneyfarmConfig
from repro.analysis.epidemics import summarize_containment
from repro.analysis.report import format_table
from repro.net.addr import IPAddress
from repro.net.packet import PROTO_UDP, icmp_packet, tcp_packet, udp_packet
from repro.services.guest import ScanBehavior


def main() -> None:
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/24",),   # 256 dark addresses
        num_hosts=1,                  # one 2 GiB server
        containment="reflect",        # the paper's signature policy
        idle_timeout_seconds=30.0,
        seed=1,
    ))
    # Teach the farm how Slammer behaves once it compromises a honeypot.
    farm.register_worm(ScanBehavior(
        worm_name="slammer", protocol=PROTO_UDP, dst_port=1434,
        exploit_tag="exploit:slammer", scan_rate=25.0,
    ))

    attacker = IPAddress.parse("203.0.113.7")

    # 1. A ping to a dark address: a VM is flash-cloned and answers.
    farm.inject(icmp_packet(attacker, IPAddress.parse("10.16.0.10")))

    # 2. A SYN scan across a few addresses: each gets its own honeypot.
    for i in range(20, 25):
        farm.inject(tcp_packet(attacker, IPAddress.parse(f"10.16.0.{i}"), 4000 + i, 445))

    # 3. A real exploit: the honeypot is compromised, and the worm's
    #    outbound scans are reflected back into the farm.
    farm.inject(udp_packet(attacker, IPAddress.parse("10.16.0.30"), 4999, 1434,
                           payload="exploit:slammer"))

    farm.run(until=30.0)

    breakdown = farm.memory_breakdown()
    summary = summarize_containment(farm)
    clone_ms = farm.clone_engine.mean_latency_seconds() * 1000

    print(format_table(["metric", "value"], [
        ["addresses impersonated", farm.inventory.total_addresses],
        ["VMs flash-cloned", farm.metrics.counters()["farm.vms_spawned"]],
        ["mean clone latency (ms)", f"{clone_ms:.0f}"],
        ["live VMs now", farm.live_vms],
        ["memory: image resident (MiB)", f"{breakdown.image_resident / 2**20:.0f}"],
        ["memory: private per VM (MiB)", f"{breakdown.mean_private_per_vm / 2**20:.2f}"],
        ["memory saved vs full copies", f"{breakdown.consolidation_factor:.0f}x"],
        ["worm infections captured", summary.infections_total],
        ["epidemic generations observed", summary.max_generation],
        ["packets escaped to Internet", summary.escaped_packets],
    ], title="Potemkin quickstart (30 simulated seconds)"))

    assert summary.escaped_packets == 0, "containment must hold"
    print("\nNothing escaped; the worm kept spreading *inside* the farm —"
          "\nscalability, fidelity, and containment at once.")


if __name__ == "__main__":
    main()
