#!/usr/bin/env python3
"""Scenario: capturing a bot and its command-and-control rendezvous.

The paper motivates honeyfarms with exactly this workflow: a bot breaks
in, and because the honeypot is a *real executing system*, the farm
observes the whole kill chain — the exploit, the DNS lookup for the
rendezvous domain, the connect to the C&C server, the periodic check-ins
— while the containment policy decides how much of it touches the real
Internet. Afterwards, forensics diffs the captured VMs against the
pristine snapshot and distils the bot's memory signature.

This example runs the same Blaster-style bot under three policies and
prints what each one *learned* versus what each one *risked*:

* ``open``       learns everything, and lets the bot reach its C&C;
* ``allow-dns``  captures the rendezvous domain, blocks the check-in;
* ``reflect``    additionally keeps the bot's scanning observable
                 (in-farm epidemic) with nothing escaping.

Run:  python examples/botnet_capture.py
"""

from repro.analysis.epidemics import summarize_containment
from repro.analysis.report import format_table
from repro.core.config import HoneyfarmConfig
from repro.core.honeyfarm import Honeyfarm
from repro.forensics import ForensicTriage
from repro.net.addr import IPAddress
from repro.net.packet import PROTO_TCP, TcpFlags, tcp_packet
from repro.services.guest import ScanBehavior

ATTACKER = IPAddress.parse("203.0.113.66")
TARGET = IPAddress.parse("10.16.0.20")
CNC_SERVER = IPAddress.parse("198.51.100.99")
RENDEZVOUS = "irc.botland.example"
DURATION = 30.0


def run_policy(policy: str):
    farm = Honeyfarm(HoneyfarmConfig(
        prefixes=("10.16.0.0/26",), num_hosts=1,
        containment=policy, idle_timeout_seconds=120.0,
        clone_jitter=0.0, seed=14,
    ))
    escaped_to_cnc = []
    farm.gateway.external_sink = (
        lambda p: escaped_to_cnc.append(p) if p.dst == CNC_SERVER else None
    )
    farm.register_worm(ScanBehavior(
        worm_name="blaster",
        protocol=PROTO_TCP,
        dst_port=135,
        exploit_tag="exploit:blaster",
        scan_rate=12.0,
        dns_lookup_first=True,
        dns_server=farm.dns_server.address,
        rendezvous_domain=RENDEZVOUS,
        cnc_server=CNC_SERVER,
        cnc_port=6667,
        beacon_interval=3.0,
    ))
    # The bot's two-packet incursion: connect, then exploit.
    farm.inject(tcp_packet(ATTACKER, TARGET, 4444, 135))
    farm.inject(tcp_packet(ATTACKER, TARGET, 4444, 135,
                           flags=TcpFlags.PSH | TcpFlags.ACK,
                           payload="exploit:blaster"))
    farm.run(until=DURATION)
    return farm, escaped_to_cnc


def main() -> None:
    rows = []
    reflect_farm = None
    for policy in ("open", "allow-dns", "reflect"):
        farm, escaped_to_cnc = run_policy(policy)
        summary = summarize_containment(farm)
        domains = set(farm.dns_server.rendezvous_domains())
        index_vm = farm.gateway.vm_map.get(TARGET)
        beacons = index_vm.guest.beacons_sent if index_vm and index_vm.guest else 0
        rows.append([
            policy,
            summary.infections_total,
            "yes" if RENDEZVOUS in domains else "no",
            beacons,
            len(escaped_to_cnc),
            summary.escaped_packets,
        ])
        if policy == "reflect":
            reflect_farm = farm

    print(format_table(
        ["policy", "captures", "rendezvous learned", "check-ins attempted",
         "check-ins reached C&C", "total escaped"],
        rows,
        title=f"Blaster-bot incursion, {DURATION:.0f}s per policy",
    ))

    # Forensics on the reflection farm: what did the bot change?
    assert reflect_farm is not None
    triage = ForensicTriage(reflect_farm)
    triage.collect()
    print()
    print(triage.report().render())
    print("\nIntelligence haul under reflection: the rendezvous domain, the"
          "\nC&C address and port, the beacon cadence, the full in-farm"
          "\nepidemic — and not one bot packet reached the Internet.")


if __name__ == "__main__":
    main()
